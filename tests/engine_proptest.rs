//! Property tests for the sans-I/O engine's two load-bearing contracts
//! under *arbitrary* input traces:
//!
//! - **determinism**: the same `Input` sequence fed to two freshly
//!   constructed engines produces the byte-identical output sequence and
//!   end state — whatever interleaving of duplicate transactions,
//!   out-of-order blocks, stale timers, and wire batches the trace throws
//!   at it;
//! - **mempool bounds and integrity**: at every step, pool occupancy stays
//!   within the configured capacity, and at the end no accepted
//!   transaction was lost (conservation) or committed twice.
//!
//! Traces are generated from a per-case seed with a local splitmix64, so a
//! failing case is reproducible from its printed inputs alone.

use mahi_mahi::core::{
    AdmissionConfig, AdmissionPipeline, Committer, CommitterOptions, EngineConfig, IngressConfig,
    Input, MempoolConfig, Output, ValidatorEngine,
};
use mahi_mahi::dag::DagBuilder;
use mahi_mahi::telemetry::{Stage, StageStats};
use mahi_mahi::types::{
    AuthorityIndex, Block, Decode, Encode, Envelope, TestCommittee, Transaction, TxReceipt,
    TxVerdict,
};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

const MEMPOOL_CAPACITY: usize = 16;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fresh_engine(setup: &TestCommittee) -> ValidatorEngine {
    engine_with_ingress(setup, IngressConfig::default())
}

fn engine_with_ingress(setup: &TestCommittee, ingress: IngressConfig) -> ValidatorEngine {
    let committer = Committer::new(setup.committee().clone(), CommitterOptions::mahi_mahi_5(2));
    let mut config = EngineConfig::new(AuthorityIndex(0), setup.clone());
    config.mempool = MempoolConfig {
        capacity_txs: MEMPOOL_CAPACITY,
        capacity_bytes: 1024,
        max_block_txs: 4,
        max_block_bytes: 256,
    };
    config.ingress = ingress;
    ValidatorEngine::honest(config, Box::new(committer))
}

/// Builds a random trace: duplicate-prone transaction submissions (local
/// and wire-batch), non-monotone timers, and peer blocks delivered in
/// random order with repeats.
fn random_trace(script_seed: u64, steps: usize, pool: &[Arc<Block>]) -> Vec<Input> {
    let mut rng = script_seed;
    let mut trace = Vec::with_capacity(steps);
    for _ in 0..steps {
        let input = match splitmix(&mut rng) % 4 {
            0 => Input::TxSubmitted {
                // Ids drawn from a tiny range: duplicates are common.
                transaction: Transaction::new((splitmix(&mut rng) % 24).to_le_bytes().to_vec()),
                tag: splitmix(&mut rng) % 1_000,
            },
            1 => Input::TxBatchReceived {
                from: (splitmix(&mut rng) % 4) as usize,
                transactions: (0..1 + splitmix(&mut rng) % 3)
                    .map(|_| Transaction::new((splitmix(&mut rng) % 24).to_le_bytes().to_vec()))
                    .collect(),
            },
            // Deliberately non-monotone: the engine clamps internally.
            2 => Input::TimerFired {
                now: splitmix(&mut rng) % 5_000,
            },
            _ => {
                let block = pool[(splitmix(&mut rng) as usize) % pool.len()].clone();
                Input::BlockReceived {
                    from: (splitmix(&mut rng) % 4) as usize,
                    block,
                }
            }
        };
        trace.push(input);
    }
    trace
}

/// Builds a client-ingress trace: wire batches from `clients` external ids
/// (all past the committee range, so the rate limiter applies), forwarded
/// batches from committee peers, ignored receipt frames, local
/// submissions, peer blocks, and non-monotone timers. The tiny transaction
/// id range makes duplicates common, so all four admission verdicts fire.
fn random_ingress_trace(
    script_seed: u64,
    steps: usize,
    clients: usize,
    pool: &[Arc<Block>],
) -> Vec<Input> {
    let mut rng = script_seed;
    let mut trace = Vec::with_capacity(steps);
    let tiny_tx = |rng: &mut u64| Transaction::new((splitmix(rng) % 24).to_le_bytes().to_vec());
    for _ in 0..steps {
        let input = match splitmix(&mut rng) % 8 {
            // Wire batches dominate: the receipt ledger must see traffic.
            0..=2 => Input::TxBatchReceived {
                from: 4 + (splitmix(&mut rng) as usize) % clients,
                transactions: (0..1 + splitmix(&mut rng) % 3)
                    .map(|_| tiny_tx(&mut rng))
                    .collect(),
            },
            3 => Input::TxForwardReceived {
                from: (splitmix(&mut rng) % 4) as usize,
                transactions: (0..1 + splitmix(&mut rng) % 3)
                    .map(|_| tiny_tx(&mut rng))
                    .collect(),
            },
            // A stray receipt frame on a validator's wire: ignored, but
            // the trace must stay deterministic through it.
            4 => Input::TxReceiptReceived {
                from: 4 + (splitmix(&mut rng) as usize) % clients,
                receipt: TxReceipt::Admission {
                    tag: splitmix(&mut rng) % 1_000,
                    verdicts: vec![TxVerdict::Accepted],
                },
            },
            5 => Input::TxSubmitted {
                transaction: tiny_tx(&mut rng),
                tag: splitmix(&mut rng) % 1_000,
            },
            6 => Input::TimerFired {
                now: splitmix(&mut rng) % 5_000_000,
            },
            _ => {
                let block = pool[(splitmix(&mut rng) as usize) % pool.len()].clone();
                Input::BlockReceived {
                    from: (splitmix(&mut rng) % 4) as usize,
                    block,
                }
            }
        };
        trace.push(input);
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_traces_are_deterministic_and_respect_mempool_bounds(
        committee_seed in 0u64..500,
        script_seed in 0u64..u64::MAX,
        steps in 20usize..80,
    ) {
        let setup = TestCommittee::new(4, committee_seed);
        // A pool of valid peer blocks (4 full rounds) delivered out of
        // order and with duplicates by the trace.
        let mut dag = DagBuilder::new(setup.clone());
        dag.add_full_rounds(4);
        let pool: Vec<Arc<Block>> = dag
            .store()
            .iter()
            .filter(|block| block.round() > 0 && block.author() != AuthorityIndex(0))
            .cloned()
            .collect();
        let trace = random_trace(script_seed, steps, &pool);

        let mut first = fresh_engine(&setup);
        let mut rendered = Vec::with_capacity(trace.len());
        for input in &trace {
            let outputs = first.handle(input.clone());
            rendered.push(format!("{outputs:?}"));
            // Bounds hold after *every* step, not just at the end.
            prop_assert!(
                first.mempool().len() <= MEMPOOL_CAPACITY,
                "occupancy {} exceeded capacity",
                first.mempool().len()
            );
            prop_assert!(first.mempool().pending_bytes() <= 1024);
        }
        let integrity = first.tx_integrity();
        prop_assert!(integrity.occupancy_bounded(), "{integrity:?}");
        prop_assert!(integrity.conserves_transactions(), "{integrity:?}");
        prop_assert_eq!(integrity.duplicate_committed, 0, "{:?}", integrity);

        // Replay into a second fresh engine: identical outputs, identical
        // end state — the determinism contract.
        let mut second = fresh_engine(&setup);
        for (step, input) in trace.iter().enumerate() {
            let outputs = second.handle(input.clone());
            prop_assert_eq!(
                &format!("{outputs:?}"),
                &rendered[step],
                "diverged at step {} ({:?})",
                step,
                input
            );
        }
        prop_assert_eq!(first.round(), second.round());
        prop_assert_eq!(first.commit_log(), second.commit_log());
        prop_assert_eq!(
            first.store().highest_round(),
            second.store().highest_round()
        );
        prop_assert_eq!(first.tx_integrity(), second.tx_integrity());
    }

    /// Client-ingress traces — wire batches from a handful of external
    /// client ids racing a strict rate limit, forwarded batches from
    /// committee peers, stray receipt frames, and non-monotone timers —
    /// replay byte-identically on a fresh engine, and at every end state
    /// the receipt ledger balances (one admission receipt per wire batch,
    /// no phantom commit notices) while the transaction ledger conserves.
    #[test]
    fn ingress_traces_replay_identically_and_balance_the_receipt_ledger(
        committee_seed in 0u64..500,
        script_seed in 0u64..u64::MAX,
        steps in 20usize..80,
        clients in 2usize..5,
    ) {
        let setup = TestCommittee::new(4, committee_seed);
        let mut dag = DagBuilder::new(setup.clone());
        dag.add_full_rounds(4);
        let pool: Vec<Arc<Block>> = dag
            .store()
            .iter()
            .filter(|block| block.round() > 0 && block.author() != AuthorityIndex(0))
            .cloned()
            .collect();
        // A tight policy so every verdict arm fires: 2 tx/s with a burst
        // of 2 makes `RateLimited` common, the 16-slot pool makes `Full`
        // reachable, the tiny id range makes `Duplicate` common, and a
        // 500 µs forward age (far below the timer range) arms forwarding.
        let ingress = IngressConfig {
            rate_limit_per_client: 2,
            burst_per_client: 2,
            forward_age: Some(500),
            forward_max: 8,
        };
        let trace = random_ingress_trace(script_seed, steps, clients, &pool);

        let mut first = engine_with_ingress(&setup, ingress);
        let mut rendered = Vec::with_capacity(trace.len());
        for input in &trace {
            let outputs = first.handle(input.clone());
            rendered.push(format!("{outputs:?}"));
            prop_assert!(first.mempool().len() <= MEMPOOL_CAPACITY);
        }
        let integrity = first.tx_integrity();
        prop_assert!(integrity.conserves_transactions(), "{integrity:?}");
        let ledger = first.ingress_report();
        prop_assert!(ledger.violations().is_empty(), "{:?}", ledger.violations());
        // The trace is wire-batch heavy; the ledger must show traffic.
        prop_assert!(ledger.batches_received > 0, "{ledger:?}");

        let mut second = engine_with_ingress(&setup, ingress);
        for (step, input) in trace.iter().enumerate() {
            let outputs = second.handle(input.clone());
            prop_assert_eq!(
                &format!("{outputs:?}"),
                &rendered[step],
                "diverged at step {} ({:?})",
                step,
                input
            );
        }
        prop_assert_eq!(first.tx_integrity(), second.tx_integrity());
        prop_assert_eq!(first.ingress_report(), second.ingress_report());
        prop_assert_eq!(first.commit_log(), second.commit_log());
    }

    /// The verify/apply split preserves the determinism contract: a trace
    /// pushed through a parallel [`AdmissionPipeline`] (workers reorder
    /// internally, the resequencer restores submission order) and applied
    /// with `handle_verified` admits exactly the inputs that pass
    /// verification, in submission order, and produces byte-identical
    /// outputs and end state to replaying that same verified sequence
    /// through the serial `handle` path — the exact artifact drivers
    /// record and the replay tests compare.
    #[test]
    fn pipeline_resequenced_traces_replay_byte_identically(
        committee_seed in 0u64..500,
        script_seed in 0u64..u64::MAX,
        steps in 20usize..80,
        workers in 1usize..4,
    ) {
        let setup = TestCommittee::new(4, committee_seed);
        let mut dag = DagBuilder::new(setup.clone());
        dag.add_full_rounds(4);
        let valid: Vec<Arc<Block>> = dag
            .store()
            .iter()
            .filter(|block| block.round() > 0 && block.author() != AuthorityIndex(0))
            .cloned()
            .collect();
        // Salt the block pool with tampered copies (a flipped parent-digest
        // byte: still decodes, signature now stale) so traces exercise the
        // verify stage's reject path.
        let mut pool = valid.clone();
        for block in valid.iter().step_by(5) {
            let mut bytes = block.to_bytes_vec();
            bytes[30] ^= 0xff;
            pool.push(Block::from_bytes_exact(&bytes).unwrap().into_arc());
        }
        let trace = random_trace(script_seed, steps, &pool);

        // The reference path is the replay contract itself: the trace a
        // driver records contains exactly the inputs that survive the
        // verify stage, in submission order, and replaying it through
        // plain `handle` on a fresh engine is byte-identical. Filter the
        // trace the way the verify stage does, then run it serially.
        let committee = setup.committee();
        let filtered: Vec<&Input> = trace
            .iter()
            .filter(|input| !matches!(
                input,
                Input::BlockReceived { block, .. } if block.verify(committee).is_err()
            ))
            .collect();
        let mut serial = fresh_engine(&setup);
        let mut kept = Vec::with_capacity(filtered.len());
        for input in &filtered {
            let outputs = serial.handle((*input).clone());
            kept.push(format!("{outputs:?}"));
        }

        // Pipelined path: parallel verify, resequenced apply.
        let mut pipeline = AdmissionPipeline::new(
            AdmissionConfig {
                verify_workers: workers,
                queue_bound: 4096,
            },
            committee.clone(),
        );
        for input in &trace {
            pipeline.submit(input.clone());
        }
        let admitted = pipeline.flush();
        prop_assert_eq!(admitted.len(), kept.len());
        let mut piped = fresh_engine(&setup);
        for (step, input) in admitted.into_iter().enumerate() {
            let outputs = piped.handle_verified(input);
            prop_assert_eq!(
                &format!("{outputs:?}"),
                &kept[step],
                "diverged at admitted step {}",
                step
            );
        }
        prop_assert_eq!(serial.round(), piped.round());
        prop_assert_eq!(serial.commit_log(), piped.commit_log());
        prop_assert_eq!(
            serial.store().highest_round(),
            piped.store().highest_round()
        );
        prop_assert_eq!(serial.tx_integrity(), piped.tx_integrity());
    }

    /// Sink equivalence — the telemetry half of the determinism contract:
    /// an engine with a recording [`StageStats`] sink attached renders
    /// byte-identical outputs and end state to one running the default
    /// no-op sink on the same trace, while the recording sink actually
    /// observes the commit path (one engine-applied sample per non-timer
    /// input). Recording is observation, never influence.
    #[test]
    fn recording_telemetry_sinks_never_perturb_outputs(
        committee_seed in 0u64..500,
        script_seed in 0u64..u64::MAX,
        steps in 20usize..80,
    ) {
        let setup = TestCommittee::new(4, committee_seed);
        let mut dag = DagBuilder::new(setup.clone());
        dag.add_full_rounds(4);
        let pool: Vec<Arc<Block>> = dag
            .store()
            .iter()
            .filter(|block| block.round() > 0 && block.author() != AuthorityIndex(0))
            .cloned()
            .collect();
        let trace = random_trace(script_seed, steps, &pool);

        // Reference: the default no-op sink.
        let mut plain = fresh_engine(&setup);
        let mut rendered = Vec::with_capacity(trace.len());
        for input in &trace {
            rendered.push(format!("{:?}", plain.handle(input.clone())));
        }

        // Candidate: a recording sink over detached stage histograms.
        let stats = StageStats::detached();
        let mut observed = fresh_engine(&setup);
        observed.set_telemetry(Arc::new(stats.clone()));
        for (step, input) in trace.iter().enumerate() {
            let outputs = observed.handle(input.clone());
            prop_assert_eq!(
                &format!("{outputs:?}"),
                &rendered[step],
                "the sink perturbed outputs at step {} ({:?})",
                step,
                input
            );
        }
        prop_assert_eq!(plain.round(), observed.round());
        prop_assert_eq!(plain.commit_log(), observed.commit_log());
        prop_assert_eq!(
            plain.store().highest_round(),
            observed.store().highest_round()
        );
        prop_assert_eq!(plain.tx_integrity(), observed.tx_integrity());

        // The sink is not vacuous: every non-timer input left a sample at
        // the engine-applied stage.
        let applied = trace
            .iter()
            .filter(|input| !matches!(input, Input::TimerFired { .. }))
            .count() as u64;
        prop_assert_eq!(
            stats.snapshot().stage(Stage::EngineApplied).count(),
            applied
        );
    }
}

proptest! {
    // Few cases: each one floods a 4-validator cluster through 160 rounds.
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// The committed-digest ledger (the `track_tx_integrity` duplicate
    /// detector) is GC'd against the commit frontier: a validator that
    /// commits its own transactions for thousands of rounds must not hold
    /// every digest it ever committed. Before the GC fix the ledger grew
    /// with `own_committed` forever.
    #[test]
    fn committed_digest_ledger_is_bounded_by_the_gc_window(
        committee_seed in 0u64..500,
        tx_seed in 0u64..u64::MAX,
    ) {
        let setup = TestCommittee::new(4, committee_seed);
        let mut engines: Vec<ValidatorEngine> = (0..4u32)
            .map(|authority| {
                let committer = Committer::new(
                    setup.committee().clone(),
                    CommitterOptions::mahi_mahi_5(2),
                );
                let mut config = EngineConfig::new(AuthorityIndex(authority), setup.clone());
                config.mempool = MempoolConfig {
                    capacity_txs: 4_096,
                    capacity_bytes: usize::MAX,
                    max_block_txs: 4,
                    max_block_bytes: 4_096,
                };
                config.gc_depth = Some(8); // tight window, GC fires often
                ValidatorEngine::honest(config, Box::new(committer))
            })
            .collect();
        // Preload every validator with enough distinct transactions that
        // own blocks keep carrying payloads across the whole run.
        let mut rng = tx_seed;
        for engine in engines.iter_mut() {
            for _ in 0..1_000 {
                engine.handle(Input::TxSubmitted {
                    transaction: Transaction::new(splitmix(&mut rng).to_le_bytes().to_vec()),
                    tag: 0,
                });
            }
        }
        // Lockstep flood: deliver every broadcast envelope until the DAG
        // reaches the horizon. 160 rounds crosses the engine's 64-round GC
        // hysteresis at least twice with an 8-round window.
        let mut inflight: VecDeque<(usize, Envelope)> = VecDeque::new();
        for engine in engines.iter_mut() {
            let from = engine.authority().as_usize();
            for output in engine.handle(Input::TimerFired { now: 0 }) {
                if let Output::Broadcast(envelope) = output {
                    inflight.push_back((from, envelope));
                }
            }
        }
        while let Some((from, envelope)) = inflight.pop_front() {
            if let Envelope::Block(block) = &envelope {
                if block.round() > 160 {
                    continue;
                }
            }
            for (to, engine) in engines.iter_mut().enumerate() {
                if to == from {
                    continue;
                }
                for output in engine.handle(Input::from_envelope(from, envelope.clone())) {
                    if let Output::Broadcast(envelope) = output {
                        inflight.push_back((to, envelope));
                    }
                }
            }
        }
        for engine in &engines {
            let integrity = engine.tx_integrity();
            prop_assert!(
                integrity.own_committed > 100,
                "flood committed too little to exercise GC: {integrity:?}"
            );
            let ledger = engine.committed_digest_ledger_len();
            // Bounded: the frontier GC dropped digests below the floor, so
            // the ledger holds strictly fewer digests than were committed
            // over the run's lifetime...
            prop_assert!(
                (ledger as u64) < integrity.own_committed,
                "digest ledger was never pruned: {} entries for {} own commits",
                ledger,
                integrity.own_committed
            );
            // ...and the integrity report still balances (pruning must not
            // disturb the conservation counters).
            prop_assert!(integrity.conserves_transactions(), "{integrity:?}");
            prop_assert_eq!(integrity.duplicate_committed, 0, "{:?}", integrity);
        }
    }
}
