//! The scenario conformance matrix as a test suite: every protocol ×
//! behavior × adversary cell runs deterministically (seeded) and every
//! oracle — commit-sequence agreement, one-block-per-slot, bounded commit
//! lag, liveness — must hold.
//!
//! Reproducing a failure: the assertion message carries the scenario name
//! and seed; rebuild the same cell with
//! `mahi_mahi::scenarios::full_matrix()` (names are stable) or rerun
//! `cargo run -p bench --bin scenario_matrix` for the JSON report.

use mahi_mahi::scenarios::{
    adversaries, attack_behaviors, full_matrix, protocols, run_scenario, smoke_matrix, Scenario,
};

/// Runs the given scenarios, asserting all oracles pass — and that the
/// JSON-facing per-validator culprit sets of every correct validator equal
/// the cell's ground-truth equivocator set (exact attribution, zero false
/// positives) — reporting every violation with the scenario's name and
/// seed.
fn run_cells(cells: Vec<Scenario>) {
    assert!(!cells.is_empty(), "no matrix cells selected");
    let mut failures = Vec::new();
    for scenario in &cells {
        let result = run_scenario(scenario);
        if !result.pass() {
            failures.push(format!(
                "{} (seed {}): {}",
                result.name,
                result.seed,
                result.failures().join("; ")
            ));
        }
        let expected: Vec<u32> = scenario
            .expected_equivocators()
            .iter()
            .map(|author| author.0)
            .collect();
        for validator in scenario.correct_validators() {
            if result.culprits[validator] != expected {
                failures.push(format!(
                    "{} (seed {}): validator {validator} culprit set {:?} != {expected:?}",
                    result.name, result.seed, result.culprits[validator]
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} cells violated an oracle:\n{}",
        failures.len(),
        cells.len(),
        failures.join("\n")
    );
}

/// The full-matrix cells for one protocol (split per protocol so the
/// harness can parallelize).
fn protocol_cells(prefix: &str) -> Vec<Scenario> {
    full_matrix()
        .into_iter()
        .filter(|scenario| scenario.name.starts_with(prefix))
        .collect()
}

#[test]
fn oracle_battery_includes_evidence_attribution() {
    let names: Vec<&str> = mahi_mahi::scenarios::default_oracles()
        .iter()
        .map(|oracle| oracle.name())
        .collect();
    assert!(
        names.contains(&"evidence-attribution"),
        "fault attribution must gate every matrix cell: {names:?}"
    );
    assert!(
        names.contains(&"tx-integrity"),
        "transaction integrity must gate every matrix cell: {names:?}"
    );
    assert!(
        names.contains(&"receipt-integrity"),
        "receipt accounting must gate every matrix cell: {names:?}"
    );
}

#[test]
fn matrix_cells_arm_mempool_forwarding() {
    // Every cell runs with age-based forwarding enabled so the
    // receipt-integrity oracle audits a live forwarding ledger, not a
    // vacuously-zero one.
    for scenario in full_matrix() {
        assert!(
            scenario.config.ingress.forward_age.is_some(),
            "{}: forwarding disabled",
            scenario.name
        );
    }
}

#[test]
fn matrix_covers_the_required_space() {
    // 4 protocols × (9 attack behaviors + honest baseline) × 4 adversaries,
    // plus the n = 10 and n = 50 scale rows (every protocol × adversary).
    assert_eq!(protocols().len(), 4);
    assert!(attack_behaviors().len() >= 6);
    assert_eq!(adversaries().len(), 4);
    assert_eq!(full_matrix().len(), 4 * 10 * 4 + 4 * 4 + 4 * 4);
    assert_eq!(
        full_matrix()
            .iter()
            .filter(|s| s.config.committee_size == mahi_mahi::scenarios::SCALE_COMMITTEE)
            .count(),
        4 * 4
    );
    assert_eq!(
        full_matrix()
            .iter()
            .filter(|s| s.config.committee_size == mahi_mahi::scenarios::LARGE_COMMITTEE)
            .count(),
        4 * 4
    );
    // The five active attack strategies of this harness are all present.
    for label in [
        "withholding-leader",
        "split-brain",
        "slow-proposer",
        "fork-spammer",
        "adaptive",
    ] {
        assert!(
            attack_behaviors().iter().any(|b| b.label() == label),
            "missing attack strategy {label}"
        );
    }
}

#[test]
fn matrix_cells_are_reproducible_from_their_seed() {
    // The same cell run twice yields identical commit logs and metrics —
    // the property that makes every failure replayable.
    let scenario = full_matrix()
        .into_iter()
        .find(|s| s.name.contains("split-brain") && s.name.ends_with("partition"))
        .expect("matrix covers split-brain × partition");
    let first = scenario.run();
    let second = scenario.run();
    assert_eq!(first.logs, second.logs);
    assert_eq!(
        first.report.committed_transactions,
        second.report.committed_transactions
    );
    assert_eq!(first.report.highest_round, second.report.highest_round);
}

#[test]
fn n50_cells_are_bit_reproducible() {
    // The committee-scale row runs on the geo-jitter WAN model with the
    // adaptive adversary — the configuration most sensitive to event-queue
    // tie-breaking. Two seeded runs must agree byte-for-byte.
    let scenario = full_matrix()
        .into_iter()
        .find(|s| s.name.contains("@n50") && s.name.ends_with("none"))
        .expect("matrix covers the n = 50 row");
    let first = scenario.run();
    let second = scenario.run();
    assert_eq!(first.logs, second.logs);
    assert_eq!(first.culprits, second.culprits);
    assert_eq!(
        first.report.committed_transactions,
        second.report.committed_transactions
    );
    assert_eq!(first.report.highest_round, second.report.highest_round);
}

#[test]
fn smoke_subset_upholds_all_oracles() {
    // The covering subset used for quick regression checks: one cell per
    // behavior, touching every protocol and every adversary at least once.
    run_cells(smoke_matrix());
}

#[test]
fn smoke_cells_expose_populated_stage_telemetry() {
    use mahi_mahi::telemetry::Stage;
    // The simulator wires commit-path stage tracing into every run: the
    // stages the sim drives (verify, resequence) and the stages the engine
    // reports (apply, sequence, execute) must all carry samples, and the
    // JSON row must break the verify/resequence/execute p99s out.
    let scenario = smoke_matrix()
        .into_iter()
        .next()
        .expect("smoke matrix is non-empty");
    let run = scenario.run();
    for stage in [
        Stage::Verified,
        Stage::Resequenced,
        Stage::EngineApplied,
        Stage::Sequenced,
        Stage::Executed,
    ] {
        assert!(
            run.report.stages.stage(stage).count() > 0,
            "{}: stage {stage:?} unsampled",
            scenario.name
        );
    }
    let result = run_scenario(&scenario);
    assert!(
        result.verify_p99_s > 0.0,
        "{}: verify p99 must reflect the charged CPU costs",
        result.name
    );
    let json = result.to_json();
    for field in [
        "\"verify_p99_s\":",
        "\"resequence_p99_s\":",
        "\"execute_p99_s\":",
    ] {
        assert!(json.contains(field), "{field} missing from {json}");
    }
}

#[test]
fn mahi_mahi_5_cells_uphold_all_oracles() {
    run_cells(protocol_cells("Mahi-Mahi-5"));
}

#[test]
fn mahi_mahi_4_cells_uphold_all_oracles() {
    run_cells(protocol_cells("Mahi-Mahi-4"));
}

#[test]
fn cordial_miners_cells_uphold_all_oracles() {
    run_cells(protocol_cells("Cordial-Miners"));
}

#[test]
fn tusk_cells_uphold_all_oracles() {
    run_cells(protocol_cells("Tusk"));
}

#[test]
fn partition_cells_exercise_mempool_forwarding() {
    // Non-vacuity for the receipt-integrity oracle: under a partition,
    // the minority validator's transactions outlive the 1 s forward age
    // and get re-broadcast — the forwarding ledger the oracle audits must
    // show real traffic, and some forwarded transactions must later be
    // observed committed (the trigger for client `Committed` notices).
    let scenario = full_matrix()
        .into_iter()
        .find(|s| s.name == "Tusk/mute/partition")
        .expect("matrix covers Tusk × mute × partition");
    let run = scenario.run();
    let forwarded: u64 = run.ingress.iter().map(|r| r.forwarded).sum();
    let forwarded_committed: u64 = run.ingress.iter().map(|r| r.forwarded_committed).sum();
    assert!(forwarded > 0, "no transactions were forwarded");
    assert!(
        forwarded_committed > 0,
        "no forwarded transaction was observed committed"
    );
}
