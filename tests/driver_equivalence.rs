//! Driver equivalence and trace replay: the two faces of the sans-I/O
//! engine contract.
//!
//! One `ValidatorEngine` is driven by two independent shells — the
//! discrete-event simulator (messages by value, virtual WAN) and the
//! loopback node driver (messages through the real wire codec, in-memory
//! WAL, deterministic event queue). Under an equivalent deterministic
//! network (constant latency, zero modelled CPU, no adversary, identical
//! committee seed and preloaded workload) the two drivers must commit the
//! byte-identical leader sequence: round pacing, parent selection,
//! transaction inclusion, and the commit rule all live in the shared
//! engine, so any divergence is a driver mapping bug.
//!
//! The replay test checks the engine's determinism contract directly: a
//! recorded input trace fed into a freshly constructed engine reproduces
//! the recorded output sequence exactly.

use mahi_mahi::core::{CommitterOptions, Input, MempoolConfig, ValidatorEngine};
use mahi_mahi::node::{LoopbackCluster, LoopbackConfig, NodeConfig, ValidatorNode};
use mahi_mahi::sim::{
    AdversaryChoice, CpuCosts, LatencyChoice, ProtocolChoice, SimConfig, Simulation,
};
use mahi_mahi::transport::Transport;
use mahi_mahi::types::{BlockRef, Encode, TestCommittee, Transaction};
use mahimahi_net::time;
use std::time::Duration;

const SEED: u64 = 77;
const LINK_DELAY: u64 = time::from_millis(30);
const INCLUSION_WAIT: u64 = time::from_millis(20);
const DURATION: u64 = time::from_secs(8);
const TXS_PER_VALIDATOR: u64 = 120;

/// The CPU model must be off for cross-driver equivalence: the loopback
/// fabric has no CPU queueing.
fn no_cpu() -> CpuCosts {
    CpuCosts {
        signature_verify: 0,
        coin_share_verify: 0,
        block_creation: 0,
        hash_per_kb: 0,
        batch_discount_percent: 50,
    }
}

fn workload(validator: usize) -> impl Iterator<Item = u64> {
    (0..TXS_PER_VALIDATOR).map(move |i| validator as u64 * 100_000 + i)
}

/// Serializes a committed-leader log (None = skipped slot) into bytes.
fn serialize_log(log: &[Option<BlockRef>]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for entry in log {
        match entry {
            None => bytes.push(0u8),
            Some(leader) => {
                bytes.push(1u8);
                bytes.extend(leader.to_bytes_vec());
            }
        }
    }
    bytes
}

fn run_sim() -> Vec<Vec<Option<BlockRef>>> {
    let config = SimConfig {
        protocol: ProtocolChoice::MahiMahi5 { leaders: 2 },
        committee_size: 4,
        behaviors: Vec::new(),
        duration: DURATION,
        txs_per_second_per_validator: 0, // workload is preloaded
        latency: LatencyChoice::Uniform {
            min: LINK_DELAY,
            max: LINK_DELAY,
        },
        adversary: AdversaryChoice::None,
        cpu: no_cpu(),
        inclusion_wait: INCLUSION_WAIT,
        seed: SEED,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(config);
    for validator in 0..4 {
        sim.preload_transactions(validator, workload(validator).map(|id| (id, 0)));
    }
    sim.run_full().logs
}

fn run_loopback() -> LoopbackCluster {
    let mut cluster = LoopbackCluster::new(LoopbackConfig {
        nodes: 4,
        seed: SEED,
        options: CommitterOptions::mahi_mahi_5(2),
        link_delay: LINK_DELAY,
        inclusion_wait: INCLUSION_WAIT,
        mempool: MempoolConfig::default(), // the simulator's default
        ingress: mahi_mahi::core::IngressConfig::default(),
    });
    for validator in 0..4 {
        for id in workload(validator) {
            cluster.submit(validator, Transaction::new(id.to_le_bytes().to_vec()), 0);
        }
    }
    cluster.run_until(DURATION);
    cluster
}

#[test]
fn sim_and_loopback_node_drivers_commit_identically() {
    let sim_logs = run_sim();
    let cluster = run_loopback();

    // Within each driver, all four validators agree (common prefix is the
    // whole shorter log; the fabrics are symmetric enough for full runs).
    for validator in 1..4 {
        let a = &sim_logs[0];
        let b = &sim_logs[validator];
        let len = a.len().min(b.len());
        assert_eq!(&a[..len], &b[..len], "sim diverged at {validator}");
    }

    // Across drivers: byte-identical committed leader sequences over the
    // common prefix, which must be substantial.
    let sim_log = &sim_logs[0];
    let node_log = cluster.engine(0).commit_log();
    let len = sim_log.len().min(node_log.len());
    assert!(
        len >= 40,
        "too few decisions to compare: sim {} / loopback {}",
        sim_log.len(),
        node_log.len()
    );
    assert_eq!(
        serialize_log(&sim_log[..len]),
        serialize_log(&node_log[..len]),
        "the sim driver and the loopback node driver diverged"
    );

    // The committed sub-DAGs carry the transactions: the loopback run
    // committed the preloaded workload.
    let committed: usize = cluster
        .commits(0)
        .iter()
        .map(|sub_dag| sub_dag.transactions().count())
        .sum();
    assert_eq!(committed as u64, 4 * TXS_PER_VALIDATOR);

    // Sanity on the recorded traces: the loopback driver exercised the
    // wire vocabulary this benign run can produce (sync traffic appears
    // only under loss).
    let trace = cluster.trace(0);
    assert!(trace
        .iter()
        .any(|input| matches!(input, Input::BlockReceived { .. })));
    assert!(trace
        .iter()
        .any(|input| matches!(input, Input::TimerFired { .. })));
    assert!(trace
        .iter()
        .any(|input| matches!(input, Input::TxSubmitted { .. })));
}

/// The determinism contract against a *live* TCP run: four real nodes run
/// over real sockets with `record_trace` on; afterwards, each node's
/// recorded `Input` trace is fed into a freshly constructed engine with
/// the same configuration, which must reproduce the recorded output
/// renderings byte for byte. The TCP schedule itself is nondeterministic —
/// every run records a different trace — but any single recorded trace
/// must replay exactly; the threaded shell may not leak nondeterminism
/// into the engine.
#[test]
fn live_tcp_node_traces_replay_exactly() {
    let setup = TestCommittee::new(4, 909);
    let transports: Vec<Transport> = (0..4)
        .map(|id| Transport::bind(id, "127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<_> = transports.iter().map(Transport::local_addr).collect();
    for transport in &transports {
        for (peer, addr) in addrs.iter().enumerate() {
            if peer as u32 != transport.id() {
                transport.connect(peer as u32, *addr);
            }
        }
    }
    let mut configs = Vec::new();
    let mut handles = Vec::new();
    for (id, transport) in transports.into_iter().enumerate() {
        let mut config = NodeConfig::local(id as u32, setup.clone());
        config.record_trace = true;
        config.min_round_interval = Duration::from_millis(5);
        configs.push(config.clone());
        handles.push(ValidatorNode::new(config, transport).unwrap().start());
    }
    // A real workload: batches submitted mid-run on every node.
    for id in 0..40u64 {
        handles[(id % 4) as usize].submit_batch(vec![Transaction::benchmark(id)]);
    }
    // Let the cluster commit something before stopping (and keep running
    // briefly past that, so every node's trace has a healthy tail of
    // timer and block inputs).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while handles[0].round() < 16 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(handles[0].round() >= 16, "cluster made no progress");
    std::thread::sleep(Duration::from_millis(300));

    for (validator, handle) in handles.into_iter().enumerate() {
        let trace = handle.stop_into_trace().expect("record_trace was enabled");
        assert!(
            trace.len() > 60,
            "validator {validator} recorded a suspiciously short trace ({})",
            trace.len()
        );
        // The live run exercised the client-ingress path.
        assert!(trace
            .iter()
            .any(|(input, _)| matches!(input, Input::TxBatchReceived { .. })));
        let committer =
            mahi_mahi::core::Committer::new(setup.committee().clone(), configs[validator].options);
        let mut replay =
            ValidatorEngine::honest(configs[validator].engine_config(), Box::new(committer));
        for (step, (input, expected)) in trace.iter().enumerate() {
            let outputs = replay.handle(input.clone());
            assert_eq!(
                &format!("{outputs:?}"),
                expected,
                "validator {validator} diverged from its live run at step {step} ({input:?})"
            );
        }
    }
}

#[test]
fn recorded_input_trace_replays_to_identical_outputs() {
    let cluster = {
        let mut cluster = LoopbackCluster::new(LoopbackConfig {
            nodes: 4,
            seed: SEED ^ 0x5eed,
            options: CommitterOptions::mahi_mahi_5(2),
            link_delay: LINK_DELAY,
            inclusion_wait: INCLUSION_WAIT,
            mempool: MempoolConfig::test(10_000, 100),
            ingress: mahi_mahi::core::IngressConfig::default(),
        });
        for validator in 0..4 {
            cluster.submit(validator, Transaction::benchmark(validator as u64), 7);
        }
        cluster.run_until(time::from_secs(2));
        cluster
    };

    for validator in 0..4 {
        let trace = cluster.trace(validator).to_vec();
        let expected = cluster.rendered_outputs(validator);
        assert!(trace.len() > 50, "trace suspiciously short");
        assert_eq!(trace.len(), expected.len());

        let mut replay = cluster.fresh_engine(validator);
        for (step, (input, expected_outputs)) in trace.iter().zip(expected).enumerate() {
            let outputs = replay.handle(input.clone());
            assert_eq!(
                &format!("{outputs:?}"),
                expected_outputs,
                "validator {validator} diverged at step {step} ({input:?})"
            );
        }
        // End state matches the live engine, field for field.
        let live = cluster.engine(validator);
        assert_eq!(replay.round(), live.round());
        assert_eq!(replay.commit_log(), live.commit_log());
        assert_eq!(replay.convicted(), live.convicted());
        assert_eq!(replay.store().highest_round(), live.store().highest_round());
    }
}
