//! Property-based end-to-end agreement: random seeds, loads, fault mixes,
//! and adversaries — every honest pair of validators must produce
//! prefix-consistent commit sequences, and runs without excessive faults
//! must make progress.

use mahi_mahi::net::time;
use mahi_mahi::sim::{
    AdversaryChoice, Behavior, LatencyChoice, ProtocolChoice, SimConfig, Simulation,
};
use proptest::prelude::*;

fn protocol_strategy() -> impl Strategy<Value = ProtocolChoice> {
    prop_oneof![
        (1usize..=3).prop_map(|leaders| ProtocolChoice::MahiMahi5 { leaders }),
        (1usize..=3).prop_map(|leaders| ProtocolChoice::MahiMahi4 { leaders }),
        Just(ProtocolChoice::CordialMiners),
        Just(ProtocolChoice::Tusk),
    ]
}

fn behavior_strategy() -> impl Strategy<Value = Behavior> {
    prop_oneof![
        3 => Just(Behavior::Crashed { from_round: 0 }),
        2 => (1u64..12).prop_map(|from_round| Behavior::Crashed { from_round }),
        2 => Just(Behavior::Equivocator),
        1 => Just(Behavior::Mute),
    ]
}

fn adversary_strategy() -> impl Strategy<Value = AdversaryChoice> {
    prop_oneof![
        3 => Just(AdversaryChoice::None),
        1 => (50u64..200).prop_map(|ms| AdversaryChoice::RandomSubset {
            hold: time::from_millis(ms),
        }),
        1 => (100u64..400).prop_map(|ms| AdversaryChoice::RotatingDelay {
            targets: 1,
            period: 2,
            extra: time::from_millis(ms),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case is a full multi-second protocol simulation
        .. ProptestConfig::default()
    })]

    #[test]
    fn honest_validators_always_agree(
        protocol in protocol_strategy(),
        seed in 0u64..1_000_000,
        load in 20u64..300,
        faulty in behavior_strategy(),
        adversary in adversary_strategy(),
    ) {
        // Tusk's certified DAG rejects equivocation by construction; the
        // simulator models that by running the faulty validator honestly.
        let mut config = SimConfig {
            protocol,
            committee_size: 4,
            duration: time::from_secs(5),
            txs_per_second_per_validator: load,
            latency: LatencyChoice::Uniform {
                min: time::from_millis(10),
                max: time::from_millis(90),
            },
            adversary,
            seed,
            ..SimConfig::default()
        };
        config.behaviors = vec![(3, faulty)];

        let honest: Vec<usize> = (0..4)
            .filter(|&i| matches!(config.behavior_of(i), Behavior::Honest))
            .collect();
        let (report, logs) = Simulation::new(config).run_with_logs();

        // Safety: pairwise prefix consistency of honest commit logs.
        for (position, &i) in honest.iter().enumerate() {
            for &j in honest.iter().skip(position + 1) {
                let (a, b) = (&logs[i], &logs[j]);
                let len = a.len().min(b.len());
                prop_assert_eq!(
                    &a[..len], &b[..len],
                    "validators {} and {} diverged (protocol {:?}, seed {})",
                    i, j, protocol, seed
                );
            }
        }

        // Liveness: with one fault among four (f = 1) and a benign-or-fair
        // scheduler, transactions must commit.
        if matches!(adversary, AdversaryChoice::None) {
            prop_assert!(
                report.committed_transactions > 0,
                "no progress (protocol {:?}, seed {})", protocol, seed
            );
        }
    }
}
