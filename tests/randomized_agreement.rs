//! Property-based end-to-end agreement: random seeds, loads, *per-validator
//! behavior assignments* (passive faults and active attack strategies), and
//! adversaries — every pair of correct validators must produce
//! prefix-consistent commit sequences, and runs without excessive faults
//! must make progress.
//!
//! The case count is deliberately higher than the number of simulations we
//! can afford in the tier-1 budget: each generated case is admitted by a
//! deterministic seeded sub-sample, so successive widenings of the strategy
//! space explore more combinations without growing the runtime. Failures
//! stay reproducible: the shim's generation is a pure function of the case
//! index, and the failing config's seed is printed in the assertion.

use mahi_mahi::net::time;
use mahi_mahi::sim::{
    AdversaryChoice, Behavior, LatencyChoice, ProtocolChoice, SimConfig, Simulation,
};
use proptest::prelude::*;

/// One in `SUBSAMPLE` generated cases actually simulates (seeded
/// sub-sampling: deterministic, spread across the generation space).
const SUBSAMPLE: u64 = 2;

fn protocol_strategy() -> impl Strategy<Value = ProtocolChoice> {
    prop_oneof![
        (1usize..=3).prop_map(|leaders| ProtocolChoice::MahiMahi5 { leaders }),
        (1usize..=3).prop_map(|leaders| ProtocolChoice::MahiMahi4 { leaders }),
        Just(ProtocolChoice::CordialMiners),
        Just(ProtocolChoice::Tusk),
    ]
}

/// Any single validator's behavior, honest included — the whole committee
/// is assigned from this.
fn behavior_strategy() -> impl Strategy<Value = Behavior> {
    prop_oneof![
        12 => Just(Behavior::Honest),
        2 => Just(Behavior::Crashed { from_round: 0 }),
        2 => (1u64..12).prop_map(|from_round| Behavior::Crashed { from_round }),
        2 => (1u64..3).prop_map(|s| Behavior::Offline {
            from: time::from_secs(s),
            until: time::from_secs(s) + time::from_millis(900),
        }),
        1 => Just(Behavior::Mute),
        2 => Just(Behavior::Equivocator),
        1 => Just(Behavior::WithholdingLeader),
        1 => Just(Behavior::SplitBrainEquivocator { minority: 1 }),
        1 => (50u64..250).prop_map(|ms| Behavior::SlowProposer {
            delay: time::from_millis(ms),
        }),
        1 => (2usize..4).prop_map(|forks| Behavior::ForkSpammer { forks }),
    ]
}

fn adversary_strategy() -> impl Strategy<Value = AdversaryChoice> {
    prop_oneof![
        3 => Just(AdversaryChoice::None),
        1 => (50u64..200).prop_map(|ms| AdversaryChoice::RandomSubset {
            hold: time::from_millis(ms),
        }),
        1 => (100u64..400).prop_map(|ms| AdversaryChoice::RotatingDelay {
            targets: 1,
            period: 2,
            extra: time::from_millis(ms),
        }),
        1 => (1u64..3).prop_map(|s| AdversaryChoice::Partition {
            minority: 1,
            heals_at: time::from_secs(s),
        }),
    ]
}

/// Caps the assignment at one *Byzantine* (actively deviating) validator —
/// the `f = 1` resilience bound at `n = 4`; extra Byzantine picks degrade
/// to honest. Passive faults (crashes, outages, slowness) may exceed `f`:
/// they can cost liveness, never safety.
fn cap_byzantine(mut behaviors: Vec<Behavior>) -> Vec<Behavior> {
    let mut byzantine = 0;
    for behavior in behaviors.iter_mut() {
        if behavior.is_byzantine() {
            byzantine += 1;
            if byzantine > 1 {
                *behavior = Behavior::Honest;
            }
        }
    }
    behaviors
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96, // sub-sampled: ~96 / SUBSAMPLE = ~48 full protocol simulations
        .. ProptestConfig::default()
    })]

    #[test]
    fn correct_validators_always_agree(
        protocol in protocol_strategy(),
        seed in 0u64..1_000_000,
        load in 20u64..300,
        assignment in proptest::collection::vec(behavior_strategy(), 4),
        adversary in adversary_strategy(),
    ) {
        // Seeded sub-sampling: admit a deterministic fraction of the
        // generated space so the case count can grow without the runtime.
        if (seed ^ load) % SUBSAMPLE != 0 {
            return Ok(());
        }
        let assignment = cap_byzantine(assignment);
        let mut config = SimConfig {
            protocol,
            committee_size: 4,
            duration: time::from_secs(5),
            txs_per_second_per_validator: load,
            latency: LatencyChoice::Uniform {
                min: time::from_millis(10),
                max: time::from_millis(90),
            },
            adversary,
            seed,
            ..SimConfig::default()
        };
        config.behaviors = assignment
            .iter()
            .enumerate()
            .filter(|(_, behavior)| !matches!(behavior, Behavior::Honest))
            .map(|(index, &behavior)| (index, behavior))
            .collect();

        let correct: Vec<usize> = (0..4)
            .filter(|&i| config.behavior_of(i).is_correct())
            .collect();
        let fully_honest =
            (0..4).filter(|&i| matches!(config.behavior_of(i), Behavior::Honest)).count();
        let (report, logs) = Simulation::new(config).run_with_logs();

        // Safety: pairwise prefix consistency of correct commit logs —
        // whatever the fault mix or schedule.
        for (position, &i) in correct.iter().enumerate() {
            for &j in correct.iter().skip(position + 1) {
                let (a, b) = (&logs[i], &logs[j]);
                let len = a.len().min(b.len());
                prop_assert_eq!(
                    &a[..len], &b[..len],
                    "validators {} and {} diverged (protocol {:?}, seed {}, {:?})",
                    i, j, protocol, seed, assignment
                );
            }
        }

        // Liveness: with at most one non-honest validator among four
        // (f = 1) and a benign scheduler, transactions must commit.
        if matches!(adversary, AdversaryChoice::None) && fully_honest >= 3 {
            prop_assert!(
                report.committed_transactions > 0,
                "no progress (protocol {:?}, seed {}, {:?})", protocol, seed, assignment
            );
        }
    }
}
