//! Smoke tests for the workspace surface itself: the facade re-exports, the
//! WAL's CRC32 check vectors, and — most importantly — that every example
//! under `examples/` still builds as part of the workspace (so future perf
//! PRs always have a working harness).

use std::path::Path;
use std::process::Command;

/// The ISO/IEEE CRC32 check value, plus a few auxiliary vectors, reachable
/// through the facade (`mahi_mahi::wal`).
#[test]
fn wal_crc32_check_vectors() {
    use mahi_mahi::wal::crc32::crc32;

    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(b""), 0);
    assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    // CRC of independent buffers differs (basic sanity of the table).
    assert_ne!(crc32(b"mahi"), crc32(b"mahj"));
}

/// Every facade module is wired: touch one cheap item per re-export.
#[test]
fn facade_reexports_are_wired() {
    use mahi_mahi::net::time;

    let setup = mahi_mahi::types::TestCommittee::new(4, 7);
    assert_eq!(setup.committee().size(), 4);
    assert_eq!(time::from_millis(2), 2_000);
    let digest = mahi_mahi::crypto::blake2b::blake2b_256(b"mahi-mahi");
    assert_ne!(digest, mahi_mahi::crypto::blake2b::blake2b_256(b"tusk"));
    assert!(mahi_mahi::analysis::direct_commit_probability_w5(0, 1) > 0.0);
}

/// `cargo build --examples` exits 0: all four end-to-end scenarios compile.
///
/// This re-enters cargo with the same toolchain and target dir, so after a
/// normal `cargo test` run the work is already cached and the check is fast.
#[test]
fn all_examples_build() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));

    let expected = [
        "faults_and_equivocation",
        "geo_replication",
        "quickstart",
        "tcp_cluster",
    ];
    for name in expected {
        assert!(
            manifest_dir
                .join("examples")
                .join(format!("{name}.rs"))
                .exists(),
            "example {name}.rs disappeared from examples/"
        );
    }

    let status = Command::new(cargo)
        .current_dir(manifest_dir)
        .args(["build", "--examples"])
        .status()
        .expect("failed to spawn cargo");
    assert!(status.success(), "cargo build --examples failed: {status}");
}
