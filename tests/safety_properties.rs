//! Cross-crate safety tests: the Byzantine Atomic Broadcast properties of
//! Section 2.1, checked over whole-system simulations.
//!
//! The central invariant (Lemmas 5–7 / Total Order): any two honest
//! validators' committed leader sequences are prefix-consistent, whatever
//! the network schedule, fault pattern, or protocol configuration.

use mahi_mahi::net::time;
use mahi_mahi::sim::{
    AdversaryChoice, Behavior, LatencyChoice, ProtocolChoice, SimConfig, Simulation,
};
use mahi_mahi::types::BlockRef;

/// Asserts pairwise prefix consistency of honest validators' commit logs.
fn assert_prefix_consistent(logs: &[Vec<Option<BlockRef>>], honest: &[usize], context: &str) {
    for (position, &i) in honest.iter().enumerate() {
        for &j in honest.iter().skip(position + 1) {
            let (a, b) = (&logs[i], &logs[j]);
            let len = a.len().min(b.len());
            assert_eq!(
                &a[..len],
                &b[..len],
                "{context}: validators {i} and {j} diverged"
            );
        }
    }
}

fn run_and_check(config: SimConfig, context: &str) {
    let honest: Vec<usize> = (0..config.committee_size)
        .filter(|&index| matches!(config.behavior_of(index), Behavior::Honest))
        .collect();
    let (report, logs) = Simulation::new(config).run_with_logs();
    assert!(
        report.committed_transactions > 0,
        "{context}: no transactions committed"
    );
    assert_prefix_consistent(&logs, &honest, context);
}

fn base(protocol: ProtocolChoice, seed: u64) -> SimConfig {
    SimConfig {
        protocol,
        committee_size: 4,
        duration: time::from_secs(6),
        txs_per_second_per_validator: 100,
        latency: LatencyChoice::Uniform {
            min: time::from_millis(20),
            max: time::from_millis(80),
        },
        seed,
        ..SimConfig::default()
    }
}

#[test]
fn all_protocols_agree_on_the_happy_path() {
    for protocol in [
        ProtocolChoice::MahiMahi5 { leaders: 2 },
        ProtocolChoice::MahiMahi4 { leaders: 2 },
        ProtocolChoice::CordialMiners,
        ProtocolChoice::Tusk,
    ] {
        run_and_check(base(protocol, 1), &format!("{protocol:?}"));
    }
}

#[test]
fn agreement_survives_crash_faults() {
    for protocol in [
        ProtocolChoice::MahiMahi5 { leaders: 2 },
        ProtocolChoice::MahiMahi4 { leaders: 3 },
        ProtocolChoice::CordialMiners,
        ProtocolChoice::Tusk,
    ] {
        let config = base(protocol, 2).with_crashed(1);
        run_and_check(config, &format!("{protocol:?} with 1 crash"));
    }
}

#[test]
fn agreement_survives_equivocation() {
    for leaders in [1usize, 2] {
        let mut config = base(ProtocolChoice::MahiMahi5 { leaders }, 3);
        config.behaviors = vec![(1, Behavior::Equivocator)];
        run_and_check(config, &format!("equivocator, {leaders} leaders"));
    }
}

#[test]
fn agreement_survives_a_mute_validator() {
    let mut config = base(ProtocolChoice::MahiMahi4 { leaders: 2 }, 4);
    config.behaviors = vec![(2, Behavior::Mute)];
    run_and_check(config, "mute validator");
}

#[test]
fn agreement_under_the_random_network_model() {
    for protocol in [
        ProtocolChoice::MahiMahi5 { leaders: 2 },
        ProtocolChoice::MahiMahi4 { leaders: 2 },
    ] {
        let mut config = base(protocol, 5);
        config.adversary = AdversaryChoice::RandomSubset {
            hold: time::from_millis(150),
        };
        run_and_check(config, &format!("{protocol:?} random network"));
    }
}

#[test]
fn agreement_under_targeted_delays() {
    let mut config = base(ProtocolChoice::MahiMahi5 { leaders: 2 }, 6);
    config.adversary = AdversaryChoice::RotatingDelay {
        targets: 1,
        period: 3,
        extra: time::from_millis(300),
    };
    run_and_check(config, "rotating-delay adversary");
}

#[test]
fn agreement_across_a_healing_partition() {
    let mut config = base(ProtocolChoice::MahiMahi5 { leaders: 2 }, 7);
    config.adversary = AdversaryChoice::Partition {
        minority: 1,
        heals_at: time::from_secs(2),
    };
    run_and_check(config, "healing partition");
}

#[test]
fn agreement_with_ten_validators_and_compound_faults() {
    let mut config = SimConfig {
        protocol: ProtocolChoice::MahiMahi5 { leaders: 2 },
        committee_size: 10,
        duration: time::from_secs(6),
        txs_per_second_per_validator: 200,
        latency: LatencyChoice::Uniform {
            min: time::from_millis(20),
            max: time::from_millis(80),
        },
        seed: 8,
        ..SimConfig::default()
    };
    // f = 3 faults of mixed kinds.
    config.behaviors = vec![
        (7, Behavior::Crashed { from_round: 5 }),
        (8, Behavior::Equivocator),
        (9, Behavior::Mute),
    ];
    run_and_check(config, "compound faults at n=10");
}

/// A validator that goes down mid-run and restarts must catch up through
/// the synchronizer without ever contradicting the others.
#[test]
fn agreement_survives_an_outage_and_rejoin() {
    let mut config = base(ProtocolChoice::MahiMahi5 { leaders: 2 }, 9);
    config.behaviors = vec![(
        3,
        Behavior::Offline {
            from: time::from_secs(2),
            until: time::from_secs(4),
        },
    )];
    let (report, logs) = Simulation::new(config).run_with_logs();
    assert!(report.committed_transactions > 0);
    // All four logs (including the rejoined validator's) must be pairwise
    // prefix-consistent; the rejoined validator must have committed
    // something after its restart.
    assert_prefix_consistent(&logs, &[0, 1, 2, 3], "offline rejoin");
    assert!(
        !logs[3].is_empty(),
        "rejoined validator never resumed committing"
    );
}

/// The w = 3 configuration (Appendix C note): safety must hold even though
/// liveness is not guaranteed. We check agreement only — and tolerate runs
/// that commit nothing.
#[test]
fn wave_three_remains_safe() {
    use mahi_mahi::core::{CommitDecision, CommitSequencer, Committer, CommitterOptions};
    use mahi_mahi::dag::DagBuilder;
    use mahi_mahi::types::TestCommittee;

    let setup = TestCommittee::new(4, 99);
    let committee = setup.committee().clone();
    let mut dag = DagBuilder::new(setup);
    dag.add_full_rounds(12);
    let make = || {
        CommitSequencer::new(Committer::new(
            committee.clone(),
            CommitterOptions {
                wave_length: 3,
                leaders_per_round: 1,
            },
        ))
    };
    let mut first = make();
    let mut second = make();
    let a: Vec<_> = first
        .try_commit(dag.store())
        .into_iter()
        .map(|d| match d {
            CommitDecision::Commit(s) => Some(s.leader),
            CommitDecision::Skip(..) => None,
        })
        .collect();
    dag.add_full_rounds(4);
    let b: Vec<_> = second
        .try_commit(dag.store())
        .into_iter()
        .map(|d| match d {
            CommitDecision::Commit(s) => Some(s.leader),
            CommitDecision::Skip(..) => None,
        })
        .collect();
    let len = a.len().min(b.len());
    assert_eq!(&a[..len], &b[..len], "w=3 prefix consistency violated");
}
