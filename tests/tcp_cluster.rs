//! Integration tests for the real-TCP validator stack: cluster commits,
//! fault tolerance, and WAL crash recovery.

use mahi_mahi::core::{CommitterOptions, IngressConfig, WalRecord};
use mahi_mahi::node::{LocalCluster, NodeConfig, TxClient, ValidatorNode};
use mahi_mahi::transport::Transport;
use mahi_mahi::types::{
    AuthorityIndex, Decode, Encode, EquivocationProof, TestCommittee, Transaction, TxReceipt,
    TxVerdict,
};
use std::time::Duration;

/// A signed conflicting round-1 pair by `author` — a genuine conviction to
/// persist on the wire/WAL paths.
fn conflicting_pair(setup: &TestCommittee, author: u32) -> EquivocationProof {
    EquivocationProof::synthetic(setup, AuthorityIndex(author))
}

#[test]
fn four_node_cluster_commits_transactions() {
    let cluster = LocalCluster::start(4, 501).expect("cluster starts");
    for id in 0..20u64 {
        cluster.submit((id % 4) as usize, Transaction::benchmark(id));
    }
    let sub_dag = cluster
        .wait_for_commit(0, Duration::from_secs(30))
        .expect("a commit with transactions");
    assert!(sub_dag.blocks.iter().any(|b| !b.transactions().is_empty()));
    cluster.stop();
}

#[test]
fn wire_clients_submit_batches_that_commit() {
    // The client-ingress path end to end: an external TcpStream speaking
    // only the hello + Envelope::TxBatch framing submits a batch to a
    // validator, and those exact transactions commit.
    let cluster = LocalCluster::start(4, 506).expect("cluster starts");
    let mut client = TxClient::connect(cluster.address(1)).expect("client connects");
    let batch: Vec<Transaction> = (100..108u64).map(Transaction::benchmark).collect();
    client.submit(&batch).expect("batch sent");

    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut committed = std::collections::HashSet::new();
    while committed.len() < batch.len() && std::time::Instant::now() < deadline {
        if let Ok(sub_dag) = cluster.commits(0).recv_timeout(Duration::from_millis(100)) {
            for block in &sub_dag.blocks {
                for tx in block.transactions() {
                    if let Some(id) = tx.benchmark_id() {
                        committed.insert(id);
                    }
                }
            }
        }
    }
    assert_eq!(
        committed,
        (100..108u64).collect(),
        "every batched transaction must commit exactly once"
    );
    // The receiving validator's gauges saw the batch.
    assert_eq!(cluster.handle(1).metrics().accepted(), 8);
    assert_eq!(cluster.handle(1).metrics().rejected_full(), 0);
    cluster.stop();
}

/// Mempool forwarding rescues a batch stuck at a withholding validator:
/// the client submits to a node whose block production is stalled, the
/// aged batch is re-broadcast to a live peer, commits there, and the
/// *original* validator still closes the loop with a `Committed` receipt
/// to the client that never learned anything went wrong.
#[test]
fn batches_to_a_withholding_validator_commit_via_forwarding() {
    let setup = TestCommittee::new(4, 508);
    let make_config = |id: u32, setup: &TestCommittee| {
        let mut config = NodeConfig::local(id, setup.clone());
        if id == 3 {
            // Withholding: production is paced out of the test's lifetime,
            // so nothing this node accepts can commit through its own
            // blocks. Forwarding (timer-driven, independent of production)
            // is the only way out of its pool.
            config.min_round_interval = Duration::from_secs(3_600);
            config.ingress = IngressConfig {
                forward_age: Some(200_000), // 200 ms, in engine µs
                ..IngressConfig::default()
            };
        }
        config
    };
    let transports: Vec<Transport> = (0..4)
        .map(|id| Transport::bind(id, "127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<_> = transports.iter().map(Transport::local_addr).collect();
    for t in &transports {
        for (peer, addr) in addrs.iter().enumerate() {
            if peer as u32 != t.id() {
                t.connect(peer as u32, *addr);
            }
        }
    }
    let mut handles = Vec::new();
    for (id, transport) in transports.into_iter().enumerate() {
        let config = make_config(id as u32, &setup);
        handles.push(ValidatorNode::new(config, transport).unwrap().start());
    }
    // Background load at the live validators keeps rounds (and commits)
    // flowing so the forwarded batch has blocks to ride in.
    for id in 0..30u64 {
        handles[(id % 3) as usize].submit(Transaction::benchmark(id));
    }

    let mut client = TxClient::connect(addrs[3]).expect("client connects");
    let batch: Vec<Transaction> = (900..904u64).map(Transaction::benchmark).collect();
    let receipt = client
        .submit_and_wait(&batch, Duration::from_secs(10))
        .expect("admission receipt");
    let TxReceipt::Admission { tag, verdicts } = receipt else {
        panic!("expected an admission receipt, got {receipt:?}");
    };
    assert!(
        verdicts.iter().all(|v| matches!(v, TxVerdict::Accepted)),
        "withholding validator rejected the batch: {verdicts:?}"
    );

    // The commit notice must arrive even though validator 3 never produces:
    // it observes the forwarded digests in a peer's sequenced block.
    client
        .wait_committed(tag, Duration::from_secs(30))
        .expect("committed notice via forwarding");
    assert!(
        handles[3].metrics().forwarded() > 0,
        "the batch left validator 3's pool some other way than forwarding"
    );

    // And the transactions really did commit at a live validator.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut committed = std::collections::HashSet::new();
    while !(900..904u64).all(|id| committed.contains(&id)) && std::time::Instant::now() < deadline {
        if let Ok(sub_dag) = handles[0]
            .commits()
            .recv_timeout(Duration::from_millis(100))
        {
            for block in &sub_dag.blocks {
                for tx in block.transactions() {
                    if let Some(id) = tx.benchmark_id() {
                        committed.insert(id);
                    }
                }
            }
        }
    }
    assert!(
        (900..904u64).all(|id| committed.contains(&id)),
        "forwarded transactions missing from the commit sequence: {committed:?}"
    );
    for handle in handles {
        handle.stop();
    }
}

#[test]
fn cluster_tolerates_a_silent_validator() {
    // One of four validators never starts (crash-from-boot): the remaining
    // 2f + 1 = 3 must still commit.
    let cluster = LocalCluster::start_with(4, 502, CommitterOptions::mahi_mahi_4(2), &[3])
        .expect("cluster starts");
    assert_eq!(cluster.running(), 3);
    for id in 0..20u64 {
        cluster.submit((id % 3) as usize, Transaction::benchmark(id));
    }
    let sub_dag = cluster
        .wait_for_commit(0, Duration::from_secs(30))
        .expect("commits despite the silent validator");
    assert!(sub_dag.blocks.iter().any(|b| !b.transactions().is_empty()));
    cluster.stop();
}

#[test]
fn all_validators_commit_the_same_leaders() {
    let cluster = LocalCluster::start(4, 503).expect("cluster starts");
    for id in 0..10u64 {
        cluster.submit(0, Transaction::benchmark(id));
    }
    // Collect the first few committed leaders from two validators.
    let take = 5;
    let mut leaders = Vec::new();
    for validator in 0..2 {
        let mut sequence = Vec::new();
        while sequence.len() < take {
            match cluster
                .commits(validator)
                .recv_timeout(Duration::from_secs(30))
            {
                Ok(sub_dag) => sequence.push(sub_dag.leader),
                Err(_) => break,
            }
        }
        leaders.push(sequence);
    }
    cluster.stop();
    assert_eq!(leaders[0].len(), take, "validator 0 committed too little");
    assert_eq!(leaders[0], leaders[1], "commit sequences diverged");
}

/// Kill one node mid-run, restart it from its `FileWal`, and require it to
/// catch back up to the exact commit sequence the survivors agreed on.
#[test]
fn killed_node_restarts_from_its_wal_and_catches_up() {
    let dir = std::env::temp_dir().join(format!(
        "mahimahi-restart-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let setup = TestCommittee::new(4, 505);

    // Slow production a little and disable GC so the restarted node can
    // synchronize arbitrarily far back (this test exercises recovery, not
    // pruning).
    let make_config = |id: u32, setup: &TestCommittee| {
        let mut config = NodeConfig::local(id, setup.clone());
        config.min_round_interval = Duration::from_millis(10);
        config.gc_depth = None;
        if id == 0 {
            config.wal_path = Some(dir.join("v0.wal"));
        }
        config
    };

    // Full mesh over fixed ephemeral ports (node 0 must rebind the same
    // address after the restart so the survivors' reconnect loops find it).
    let transports: Vec<Transport> = (0..4)
        .map(|id| Transport::bind(id, "127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<_> = transports.iter().map(Transport::local_addr).collect();
    for t in &transports {
        for (peer, addr) in addrs.iter().enumerate() {
            if peer as u32 != t.id() {
                t.connect(peer as u32, *addr);
            }
        }
    }
    let mut handles = Vec::new();
    for (id, transport) in transports.into_iter().enumerate() {
        let config = make_config(id as u32, &setup);
        handles.push(ValidatorNode::new(config, transport).unwrap().start());
    }

    // Phase 1: commit a prefix with all four nodes up.
    let take = 4;
    for id in 0..40u64 {
        handles[(id % 4) as usize].submit(Transaction::benchmark(id));
    }
    let mut survivor_leaders = Vec::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while survivor_leaders.len() < take && std::time::Instant::now() < deadline {
        if let Ok(sub_dag) = handles[1]
            .commits()
            .recv_timeout(Duration::from_millis(100))
        {
            survivor_leaders.push(sub_dag.leader);
        }
    }
    assert_eq!(survivor_leaders.len(), take, "cluster never got going");

    // Phase 2: kill node 0 mid-run; the remaining 2f + 1 keep committing.
    let node0 = handles.remove(0);
    let killed_at_round = node0.round();
    node0.stop();
    // While the node is down, a conviction lands in its WAL (as the
    // engine's Persist output would have written it had the Evidence
    // frame arrived before the crash): restart must re-load it.
    {
        let mut wal = mahi_mahi::wal::FileWal::open_path(dir.join("v0.wal")).unwrap();
        wal.append(&WalRecord::Evidence(conflicting_pair(&setup, 3)).to_bytes_vec())
            .unwrap();
        wal.sync().unwrap();
    }
    for id in 40..80u64 {
        handles[(id % 3) as usize].submit(Transaction::benchmark(id));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while survivor_leaders.len() < 2 * take && std::time::Instant::now() < deadline {
        if let Ok(sub_dag) = handles[0]
            .commits()
            .recv_timeout(Duration::from_millis(100))
        {
            survivor_leaders.push(sub_dag.leader);
        }
    }
    assert!(
        survivor_leaders.len() >= 2 * take,
        "survivors stalled after the crash"
    );

    // Phase 3: restart node 0 from its WAL on the same address. Binding can
    // race the old listener's teardown, so retry briefly.
    let transport = {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match Transport::bind(0, addrs[0]) {
                Ok(transport) => break transport,
                Err(error) if std::time::Instant::now() < deadline => {
                    let _ = error;
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(error) => panic!("could not rebind node 0: {error}"),
            }
        }
    };
    for (peer, addr) in addrs.iter().enumerate().skip(1) {
        transport.connect(peer as u32, *addr);
    }
    let recovered = ValidatorNode::new(make_config(0, &setup), transport).unwrap();
    assert!(
        recovered.round() >= killed_at_round,
        "WAL recovery lost rounds: {} < {killed_at_round}",
        recovered.round()
    );
    assert_eq!(
        recovered.convicted(),
        vec![AuthorityIndex(3)],
        "persisted conviction must survive the crash-restart"
    );
    let restarted = recovered.start();

    // The restarted node replays its WAL and synchronizes the missed
    // suffix; its from-scratch commit stream must reproduce the survivors'
    // sequence exactly.
    let mut restarted_leaders = Vec::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while restarted_leaders.len() < survivor_leaders.len() && std::time::Instant::now() < deadline {
        if let Ok(sub_dag) = restarted.commits().recv_timeout(Duration::from_millis(100)) {
            restarted_leaders.push(sub_dag.leader);
        }
    }
    assert_eq!(
        restarted_leaders, survivor_leaders,
        "restarted node diverged from the survivors' commit sequence"
    );

    restarted.stop();
    for handle in handles {
        handle.stop();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill a node whose WAL has already been compacted below a certified
/// checkpoint, then restart it: recovery must come up from the checkpoint
/// cut (not genesis), and the node must still converge onto the exact
/// commit sequence the survivors agreed on via state-sync.
#[test]
fn restarted_node_resumes_from_a_checkpoint_with_a_truncated_wal() {
    let dir = std::env::temp_dir().join(format!(
        "mahimahi-checkpoint-restart-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let setup = TestCommittee::new(4, 507);

    // Tight checkpoint cadence and a shallow GC window so node 0 certifies
    // checkpoints and truncates its WAL within a few dozen rounds. The
    // survivors prune old blocks just as aggressively, which forces the
    // restarted node through the checkpoint/state-sync path: the genesis-era
    // DAG is no longer fetchable from anyone.
    let make_config = |id: u32, setup: &TestCommittee| {
        let mut config = NodeConfig::local(id, setup.clone());
        config.min_round_interval = Duration::from_millis(10);
        config.checkpoint_interval = 4;
        config.gc_depth = Some(16);
        if id == 0 {
            config.wal_path = Some(dir.join("v0.wal"));
        }
        config
    };

    let transports: Vec<Transport> = (0..4)
        .map(|id| Transport::bind(id, "127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<_> = transports.iter().map(Transport::local_addr).collect();
    for t in &transports {
        for (peer, addr) in addrs.iter().enumerate() {
            if peer as u32 != t.id() {
                t.connect(peer as u32, *addr);
            }
        }
    }
    let mut handles = Vec::new();
    for (id, transport) in transports.into_iter().enumerate() {
        let config = make_config(id as u32, &setup);
        handles.push(ValidatorNode::new(config, transport).unwrap().start());
    }

    // Phase 1: run far enough past the GC depth that node 0 has persisted a
    // checkpoint and compacted its WAL below the frontier. Track validator
    // 1's commits by position as the reference sequence.
    let mut reference = std::collections::BTreeMap::new();
    for id in 0..40u64 {
        handles[(id % 4) as usize].submit(Transaction::benchmark(id));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while handles[0].round() < 32 && std::time::Instant::now() < deadline {
        if let Ok(sub_dag) = handles[1]
            .commits()
            .recv_timeout(Duration::from_millis(100))
        {
            reference.insert(sub_dag.position, sub_dag.leader);
        }
    }
    assert!(handles[0].round() >= 32, "cluster never got going");

    // Phase 2: kill node 0; the survivors keep committing well past more
    // checkpoint boundaries so its WAL checkpoint falls behind the frontier.
    let node0 = handles.remove(0);
    node0.stop();
    let resume_target = reference.keys().next_back().copied().unwrap_or(0) + 12;
    for id in 40..80u64 {
        handles[(id % 3) as usize].submit(Transaction::benchmark(id));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while reference.keys().next_back().copied().unwrap_or(0) < resume_target
        && std::time::Instant::now() < deadline
    {
        if let Ok(sub_dag) = handles[0]
            .commits()
            .recv_timeout(Duration::from_millis(100))
        {
            reference.insert(sub_dag.position, sub_dag.leader);
        }
    }
    assert!(
        reference.keys().next_back().copied().unwrap_or(0) >= resume_target,
        "survivors stalled after the crash"
    );

    // The dead node's WAL must actually have been truncated: compaction
    // rewrites the log to lead with the latest checkpoint record, and every
    // retained peer block must sit at or above the checkpointed GC floor.
    {
        let mut wal = mahi_mahi::wal::FileWal::open_path(dir.join("v0.wal")).unwrap();
        let records = wal.records().unwrap();
        assert!(!records.is_empty(), "compacted WAL cannot be empty");
        let floor = match WalRecord::from_bytes_exact(&records[0].payload) {
            Ok(WalRecord::Checkpoint { resume, .. }) => {
                let snapshot =
                    mahi_mahi::core::SequencerSnapshot::from_bytes_exact(&resume).unwrap();
                snapshot.next_round.saturating_sub(16)
            }
            other => panic!("compacted WAL must lead with a checkpoint, got {other:?}"),
        };
        assert!(floor > 0, "checkpoint cut never cleared the GC depth");
        for record in &records[1..] {
            if let Ok(WalRecord::Block(block)) = WalRecord::from_bytes_exact(&record.payload) {
                assert!(
                    block.author() == AuthorityIndex(0) || block.round() >= floor,
                    "peer block from round {} survived compaction below floor {floor}",
                    block.round()
                );
            }
        }
    }

    // Phase 3: restart node 0 from the truncated WAL on the same address.
    let transport = {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match Transport::bind(0, addrs[0]) {
                Ok(transport) => break transport,
                Err(error) if std::time::Instant::now() < deadline => {
                    let _ = error;
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(error) => panic!("could not rebind node 0: {error}"),
            }
        }
    };
    for (peer, addr) in addrs.iter().enumerate().skip(1) {
        transport.connect(peer as u32, *addr);
    }
    let recovered = ValidatorNode::new(make_config(0, &setup), transport).unwrap();
    let base = recovered.engine().commit_log_base();
    assert!(
        base > 0,
        "recovery must resume from a checkpoint, not genesis"
    );
    assert!(
        recovered.engine().latest_checkpoint().is_some(),
        "the compacted WAL's checkpoint must be restored"
    );
    let restarted = recovered.start();

    // The restarted node replays only the checkpoint suffix, then state-syncs
    // the rest: every position it emits must match the reference sequence,
    // its first position must be the checkpoint base (nothing before it is
    // replayed), and it must reach the survivors' frontier.
    let target = reference.keys().next_back().copied().unwrap();
    let mut resumed = std::collections::BTreeMap::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while resumed.keys().next_back().copied().unwrap_or(0) < target
        && std::time::Instant::now() < deadline
    {
        if let Ok(sub_dag) = restarted.commits().recv_timeout(Duration::from_millis(100)) {
            resumed.insert(sub_dag.position, sub_dag.leader);
        }
    }
    let first = resumed.keys().next().copied().unwrap_or(0);
    assert!(
        first >= base,
        "restart re-emitted position {first} below its checkpoint base {base}"
    );
    assert!(
        resumed.keys().next_back().copied().unwrap_or(0) >= target,
        "restarted node never caught up to position {target}"
    );
    for (position, leader) in &resumed {
        if let Some(expected) = reference.get(position) {
            assert_eq!(
                leader, expected,
                "restarted node diverged from the survivors at position {position}"
            );
        }
    }

    restarted.stop();
    for handle in handles {
        handle.stop();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn node_recovers_its_dag_from_the_wal_and_rejoins() {
    let dir = std::env::temp_dir().join(format!(
        "mahimahi-recovery-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let setup = TestCommittee::new(4, 504);

    // Phase 1: run a full cluster by hand so node 0 uses a file WAL.
    let transports: Vec<Transport> = (0..4)
        .map(|id| Transport::bind(id, "127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<_> = transports.iter().map(Transport::local_addr).collect();
    for t in &transports {
        for (peer, addr) in addrs.iter().enumerate() {
            if peer as u32 != t.id() {
                t.connect(peer as u32, *addr);
            }
        }
    }
    let mut handles = Vec::new();
    for (id, transport) in transports.into_iter().enumerate() {
        let mut config = NodeConfig::local(id as u32, setup.clone());
        if id == 0 {
            config.wal_path = Some(dir.join("v0.wal"));
        }
        handles.push(ValidatorNode::new(config, transport).unwrap().start());
    }
    handles[0].submit(Transaction::benchmark(1));
    // Wait for some progress, then stop everything.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while handles[0].round() < 8 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    let progressed_to = handles[0].round();
    assert!(progressed_to >= 8, "cluster made no progress");
    for handle in handles {
        handle.stop();
    }

    // Phase 2: restart node 0 from its WAL. The recovered DAG must contain
    // its own chain up to the round it had produced.
    let transport = Transport::bind(0, "127.0.0.1:0").unwrap();
    let mut config = NodeConfig::local(0, setup);
    config.wal_path = Some(dir.join("v0.wal"));
    let node = ValidatorNode::new(config, transport).unwrap();
    assert!(
        node.round() >= 8,
        "recovered round {} < produced {progressed_to}",
        node.round()
    );
    assert!(node.store().highest_round() >= node.round());
    std::fs::remove_dir_all(&dir).unwrap();
}
