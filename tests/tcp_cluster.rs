//! Integration tests for the real-TCP validator stack: cluster commits,
//! fault tolerance, and WAL crash recovery.

use mahi_mahi::core::CommitterOptions;
use mahi_mahi::node::{LocalCluster, NodeConfig, ValidatorNode};
use mahi_mahi::transport::Transport;
use mahi_mahi::types::{TestCommittee, Transaction};
use std::time::Duration;

#[test]
fn four_node_cluster_commits_transactions() {
    let cluster = LocalCluster::start(4, 501).expect("cluster starts");
    for id in 0..20u64 {
        cluster.submit((id % 4) as usize, Transaction::benchmark(id));
    }
    let sub_dag = cluster
        .wait_for_commit(0, Duration::from_secs(30))
        .expect("a commit with transactions");
    assert!(sub_dag.blocks.iter().any(|b| !b.transactions().is_empty()));
    cluster.stop();
}

#[test]
fn cluster_tolerates_a_silent_validator() {
    // One of four validators never starts (crash-from-boot): the remaining
    // 2f + 1 = 3 must still commit.
    let cluster = LocalCluster::start_with(4, 502, CommitterOptions::mahi_mahi_4(2), &[3])
        .expect("cluster starts");
    assert_eq!(cluster.running(), 3);
    for id in 0..20u64 {
        cluster.submit((id % 3) as usize, Transaction::benchmark(id));
    }
    let sub_dag = cluster
        .wait_for_commit(0, Duration::from_secs(30))
        .expect("commits despite the silent validator");
    assert!(sub_dag.blocks.iter().any(|b| !b.transactions().is_empty()));
    cluster.stop();
}

#[test]
fn all_validators_commit_the_same_leaders() {
    let cluster = LocalCluster::start(4, 503).expect("cluster starts");
    for id in 0..10u64 {
        cluster.submit(0, Transaction::benchmark(id));
    }
    // Collect the first few committed leaders from two validators.
    let take = 5;
    let mut leaders = Vec::new();
    for validator in 0..2 {
        let mut sequence = Vec::new();
        while sequence.len() < take {
            match cluster
                .commits(validator)
                .recv_timeout(Duration::from_secs(30))
            {
                Ok(sub_dag) => sequence.push(sub_dag.leader),
                Err(_) => break,
            }
        }
        leaders.push(sequence);
    }
    cluster.stop();
    assert_eq!(leaders[0].len(), take, "validator 0 committed too little");
    assert_eq!(leaders[0], leaders[1], "commit sequences diverged");
}

#[test]
fn node_recovers_its_dag_from_the_wal_and_rejoins() {
    let dir = std::env::temp_dir().join(format!(
        "mahimahi-recovery-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let setup = TestCommittee::new(4, 504);

    // Phase 1: run a full cluster by hand so node 0 uses a file WAL.
    let transports: Vec<Transport> = (0..4)
        .map(|id| Transport::bind(id, "127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<_> = transports.iter().map(Transport::local_addr).collect();
    for t in &transports {
        for (peer, addr) in addrs.iter().enumerate() {
            if peer as u32 != t.id() {
                t.connect(peer as u32, *addr);
            }
        }
    }
    let mut handles = Vec::new();
    for (id, transport) in transports.into_iter().enumerate() {
        let mut config = NodeConfig::local(id as u32, setup.clone());
        if id == 0 {
            config.wal_path = Some(dir.join("v0.wal"));
        }
        handles.push(ValidatorNode::new(config, transport).unwrap().start());
    }
    handles[0].submit(Transaction::benchmark(1));
    // Wait for some progress, then stop everything.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while handles[0].round() < 8 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    let progressed_to = handles[0].round();
    assert!(progressed_to >= 8, "cluster made no progress");
    for handle in handles {
        handle.stop();
    }

    // Phase 2: restart node 0 from its WAL. The recovered DAG must contain
    // its own chain up to the round it had produced.
    let transport = Transport::bind(0, "127.0.0.1:0").unwrap();
    let mut config = NodeConfig::local(0, setup);
    config.wal_path = Some(dir.join("v0.wal"));
    let node = ValidatorNode::new(config, transport).unwrap();
    assert!(
        node.round() >= 8,
        "recovered round {} < produced {progressed_to}",
        node.round()
    );
    assert!(node.store().highest_round() >= node.round());
    std::fs::remove_dir_all(&dir).unwrap();
}
