//! Cross-crate liveness and figure-shape tests.
//!
//! These assert the *qualitative* results of the paper's evaluation — who
//! is faster than whom, and that progress never stalls — on short
//! simulations suitable for CI. The full sweeps live in the bench harness.

use mahi_mahi::net::time;
use mahi_mahi::sim::{AdversaryChoice, LatencyChoice, ProtocolChoice, SimConfig, Simulation};

fn wan(protocol: ProtocolChoice, committee_size: usize, crashed: usize, seed: u64) -> SimConfig {
    SimConfig {
        protocol,
        committee_size,
        duration: time::from_secs(8),
        txs_per_second_per_validator: 300,
        latency: LatencyChoice::aws_wan(),
        seed,
        ..SimConfig::default()
    }
    .with_crashed(crashed)
}

/// Claim C1/C5 (Figure 3 shape): latency order MM-4 < MM-5 < CM < Tusk on
/// the geo-replicated WAN without faults.
#[test]
fn figure3_latency_ordering() {
    let mm4 = Simulation::new(wan(ProtocolChoice::MahiMahi4 { leaders: 2 }, 10, 0, 1)).run();
    let mm5 = Simulation::new(wan(ProtocolChoice::MahiMahi5 { leaders: 2 }, 10, 0, 1)).run();
    let cm = Simulation::new(wan(ProtocolChoice::CordialMiners, 10, 0, 1)).run();
    let tusk = Simulation::new(wan(ProtocolChoice::Tusk, 10, 0, 1)).run();
    let (mm4, mm5, cm, tusk) = (
        mm4.latency.mean_s(),
        mm5.latency.mean_s(),
        cm.latency.mean_s(),
        tusk.latency.mean_s(),
    );
    assert!(
        mm4 < mm5 && mm5 < cm && cm < tusk,
        "ordering violated: MM4={mm4:.3} MM5={mm5:.3} CM={cm:.3} Tusk={tusk:.3}"
    );
    // Rough factors from the paper: ≥ 20% vs CM, ≥ 50% vs Tusk.
    assert!(mm5 < 0.8 * cm, "MM5 {mm5:.3} vs CM {cm:.3}");
    assert!(mm4 < 0.5 * tusk, "MM4 {mm4:.3} vs Tusk {tusk:.3}");
}

/// Claim C3 (Figure 4 shape): with 3/10 validators crashed, Mahi-Mahi
/// stays well below Cordial Miners (direct skip rule) and Tusk.
#[test]
fn figure4_faulty_latency_ordering() {
    let mm5 = Simulation::new(wan(ProtocolChoice::MahiMahi5 { leaders: 2 }, 10, 3, 2)).run();
    let cm = Simulation::new(wan(ProtocolChoice::CordialMiners, 10, 3, 2)).run();
    assert!(mm5.committed_transactions > 0 && cm.committed_transactions > 0);
    assert!(
        mm5.latency.mean_s() < 0.8 * cm.latency.mean_s(),
        "MM5 {:.3} vs CM {:.3}",
        mm5.latency.mean_s(),
        cm.latency.mean_s()
    );
    // The crashed leaders' slots are skipped, not stalled on.
    assert!(mm5.skipped_slots > 0);
}

/// Claim C4 (Figure 5 shape): more leaders per round reduce latency.
#[test]
fn figure5_more_leaders_reduce_latency() {
    let one = Simulation::new(wan(ProtocolChoice::MahiMahi4 { leaders: 1 }, 10, 0, 3)).run();
    let three = Simulation::new(wan(ProtocolChoice::MahiMahi4 { leaders: 3 }, 10, 0, 3)).run();
    assert!(
        three.latency.mean_s() < one.latency.mean_s(),
        "3 leaders {:.3} !< 1 leader {:.3}",
        three.latency.mean_s(),
        one.latency.mean_s()
    );
}

/// Claim C2: the protocol sustains a 50-validator committee.
#[test]
fn figure3_fifty_validators_commit() {
    let mut config = wan(ProtocolChoice::MahiMahi5 { leaders: 2 }, 50, 0, 4);
    config.duration = time::from_secs(4);
    config.txs_per_second_per_validator = 50;
    let report = Simulation::new(config).run();
    assert!(report.committed_transactions > 0);
    assert!(
        report.latency.mean_s() < 2.0,
        "50-node latency {:.3}",
        report.latency.mean_s()
    );
}

/// Liveness under an asynchronous adversary: progress continues (albeit
/// slower) when a rotating set of authors is delayed every round.
#[test]
fn liveness_under_continuous_attack() {
    let mut config = wan(ProtocolChoice::MahiMahi5 { leaders: 2 }, 10, 0, 5);
    config.adversary = AdversaryChoice::RotatingDelay {
        targets: 3,
        period: 1,
        extra: time::from_millis(500),
    };
    let report = Simulation::new(config).run();
    assert!(report.committed_transactions > 0, "{report:?}");
}

/// Liveness through a partition: nothing commits new transactions during a
/// minority partition... actually a 1-of-10 partition leaves a quorum, so
/// commits continue; after healing the partitioned validator's blocks are
/// re-included. Both phases must make progress.
#[test]
fn liveness_across_partition() {
    let mut config = wan(ProtocolChoice::MahiMahi4 { leaders: 2 }, 10, 0, 6);
    config.adversary = AdversaryChoice::Partition {
        minority: 1,
        heals_at: time::from_secs(3),
    };
    let report = Simulation::new(config).run();
    assert!(report.committed_transactions > 0);
}

/// Throughput sanity: committed throughput approaches offered load when
/// under saturation (open loop, post-warm-up accounting).
#[test]
fn throughput_tracks_offered_load() {
    let report = Simulation::new(wan(ProtocolChoice::MahiMahi5 { leaders: 2 }, 10, 0, 7)).run();
    let offered = report.offered_load_tps as f64;
    assert!(
        report.throughput_tps > 0.7 * offered,
        "tput {:.0} vs offered {offered}",
        report.throughput_tps
    );
}
