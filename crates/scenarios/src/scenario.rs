//! The declarative scenario: one fully-specified, reproducible run.

use mahimahi_sim::{Behavior, IngressReport, SimConfig, SimReport, Simulation, TxIntegrityReport};
use mahimahi_types::{AuthorityIndex, BlockRef, Checkpoint, StateRoot};

/// One fully-specified simulation scenario.
///
/// Everything that influences the run lives in [`SimConfig`] — protocol,
/// committee size, per-validator behavior map, adversary, latency model,
/// and seed — so a scenario is reproducible from its config alone. The
/// name is a stable `protocol/behavior/adversary` triple used in reports.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable machine-readable name (`protocol/behavior/adversary`).
    pub name: String,
    /// The complete run configuration (including the seed).
    pub config: SimConfig,
}

/// The observable outcome of a scenario: the metrics report, every
/// validator's committed-leader log (`None` entries are skipped slots), and
/// every validator's convicted-equivocator set.
#[derive(Debug)]
pub struct ScenarioRun {
    /// Metrics at the observer validator.
    pub report: SimReport,
    /// Per-validator committed leader sequences, indexed by authority.
    pub logs: Vec<Vec<Option<BlockRef>>>,
    /// Per-validator convicted-equivocator sets (index order), produced by
    /// the evidence pools — at-source DAG detection plus gossiped proofs.
    pub culprits: Vec<Vec<AuthorityIndex>>,
    /// Per-validator transaction-pipeline accounting (mempool occupancy,
    /// rejections, conservation, duplicate commits) — what the
    /// `tx-integrity` oracle checks.
    pub tx_integrity: Vec<TxIntegrityReport>,
    /// Per-validator ingress ledger (receipts, commit notices, forwarding)
    /// — what the `receipt-integrity` oracle checks.
    pub ingress: Vec<IngressReport>,
    /// Per-validator final execution-state root — what the
    /// `state-root-agreement` oracle compares across correct validators.
    pub state_roots: Vec<StateRoot>,
    /// Per-validator signed checkpoints in position order: execution roots
    /// at identical commit positions, comparable even when validators
    /// finish at different frontiers.
    pub checkpoints: Vec<Vec<Checkpoint>>,
}

impl Scenario {
    /// Creates a scenario.
    pub fn new(name: impl Into<String>, config: SimConfig) -> Self {
        Scenario {
            name: name.into(),
            config,
        }
    }

    /// Executes the run. Deterministic: same config (and thus seed) ⇒ same
    /// report, logs, and culprit sets.
    pub fn run(&self) -> ScenarioRun {
        let outcome = Simulation::new(self.config.clone()).run_full();
        ScenarioRun {
            report: outcome.report,
            logs: outcome.logs,
            culprits: outcome.culprits,
            tx_integrity: outcome.tx_integrity,
            ingress: outcome.ingress,
            state_roots: outcome.state_roots,
            checkpoints: outcome.checkpoints,
        }
    }

    /// The behavior assigned to `authority`.
    pub fn behavior_of(&self, authority: usize) -> Behavior {
        self.config.behavior_of(authority)
    }

    /// Validators held to the agreement invariant: honest, slow-but-honest,
    /// and temporarily-offline validators (everything but Byzantine senders
    /// and permanently dark nodes).
    pub fn correct_validators(&self) -> Vec<usize> {
        (0..self.config.committee_size)
            .filter(|&index| self.behavior_of(index).is_correct())
            .collect()
    }

    /// The authorities whose assigned behavior actually signs conflicting
    /// blocks in this scenario — the ground-truth culprit set the
    /// `evidence-attribution` oracle holds every correct validator to.
    ///
    /// Under a certified DAG (Tusk) equivocating behaviors degrade to
    /// honest production (consistent broadcast forbids the fork before it
    /// enters any store), so the expected set is empty there.
    pub fn expected_equivocators(&self) -> Vec<AuthorityIndex> {
        if self.config.protocol.certified() {
            return Vec::new();
        }
        (0..self.config.committee_size)
            .filter(|&index| self.behavior_of(index).equivocates())
            .map(AuthorityIndex::from)
            .collect()
    }

    /// The `2f + 1` quorum for this committee size.
    pub fn quorum(&self) -> usize {
        let f = (self.config.committee_size - 1) / 3;
        2 * f + 1
    }

    /// Whether enough validators are correct for liveness to be required.
    pub fn expects_liveness(&self) -> bool {
        self.correct_validators().len() >= self.quorum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_net::time;
    use mahimahi_sim::{LatencyChoice, ProtocolChoice};

    fn tiny_config() -> SimConfig {
        SimConfig {
            protocol: ProtocolChoice::MahiMahi4 { leaders: 2 },
            committee_size: 4,
            duration: time::from_secs(2),
            txs_per_second_per_validator: 40,
            latency: LatencyChoice::Uniform {
                min: time::from_millis(20),
                max: time::from_millis(60),
            },
            seed: 11,
            ..SimConfig::default()
        }
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let scenario = Scenario::new("determinism-probe", tiny_config());
        let first = scenario.run();
        let second = scenario.run();
        assert_eq!(first.logs, second.logs);
        assert_eq!(
            first.report.committed_transactions,
            second.report.committed_transactions
        );
        assert_eq!(first.report.highest_round, second.report.highest_round);
    }

    #[test]
    fn correctness_classification_follows_behaviors() {
        let mut config = tiny_config();
        config.behaviors = vec![
            (1, Behavior::ForkSpammer { forks: 2 }),
            (2, Behavior::SlowProposer { delay: 100 }),
        ];
        let scenario = Scenario::new("classification", config);
        assert_eq!(scenario.correct_validators(), vec![0, 2, 3]);
        assert_eq!(scenario.quorum(), 3);
        assert!(scenario.expects_liveness());
    }
}
