//! Scenario conformance harness: declarative attack scenarios, invariant
//! oracles, and the cross-protocol matrix sweep.
//!
//! The paper states its claims under an *adversarial* asynchronous
//! scheduler with Byzantine senders (Section 2), but point tests exercise
//! one fault at a time. This crate systematizes the space:
//!
//! - a [`Scenario`] is one fully-specified run — protocol, committee size,
//!   per-validator behaviors, delivery-schedule adversary, latency model,
//!   and the seed that makes the whole run reproducible;
//! - an [`Oracle`] is an invariant checked against the finished run: commit
//!   sequence agreement across correct validators (Theorem 1 safety),
//!   at-most-one committed block per slot under equivocation (Lemma 2),
//!   a commit-frontier lag bound in rounds, liveness whenever at least
//!   `2f + 1` validators are correct, and exact fault attribution — every
//!   correct validator's convicted-equivocator set must equal the ground
//!   truth, with zero false positives ([`EvidenceAttribution`]);
//! - [`matrix`] sweeps every protocol × behavior × adversary combination
//!   deterministically, producing machine-checkable [`ScenarioResult`]s
//!   (and, through the `bench` crate's `scenario_matrix` binary, a JSON
//!   report).
//!
//! # Example
//!
//! ```
//! use mahimahi_scenarios::{matrix, run_scenario};
//!
//! // One cell of the matrix: Mahi-Mahi-5 vs a fork-spammer under the
//! // random network model.
//! let scenario = matrix::full_matrix()
//!     .into_iter()
//!     .find(|s| s.name.contains("fork-spammer") && s.name.contains("random-subset"))
//!     .expect("matrix covers every combination");
//! let result = run_scenario(&scenario);
//! assert!(result.pass(), "{}", result.failures().join("; "));
//! ```
//!
//! Reproducing a failure is mechanical: every result echoes its seed, and
//! `Scenario::run` is a pure function of the config — rebuild the scenario
//! with the reported protocol/behavior/adversary/seed and rerun.

pub mod matrix;
pub mod oracle;
pub mod scenario;

pub use matrix::{
    adversaries, attack_behaviors, full_matrix, protocols, report_json, run_scenario, smoke_matrix,
    OracleOutcome, ScenarioResult, LARGE_COMMITTEE, SCALE_COMMITTEE,
};
pub use oracle::{
    default_oracles, CommitAgreement, CommitLatencyBound, CommitLatencyP99, EvidenceAttribution,
    Liveness, Oracle, StateRootAgreement, TxIntegrity, UniqueSlotCommit,
};
pub use scenario::{Scenario, ScenarioRun};
