//! Conformance oracles: invariants checked after every scenario run.

use mahimahi_net::time;
use mahimahi_sim::{AdversaryChoice, LatencyChoice, SimConfig};
use mahimahi_types::{BlockRef, Checkpoint, Slot};
use std::collections::HashMap;

use crate::scenario::{Scenario, ScenarioRun};

/// An invariant over a finished [`ScenarioRun`].
///
/// Oracles return `Err(detail)` on violation; the detail string names the
/// validators/slots involved so a failure can be replayed from the
/// scenario's seed.
pub trait Oracle {
    /// Stable oracle name for reports.
    fn name(&self) -> &'static str;

    /// Checks the invariant against a finished run.
    ///
    /// # Errors
    ///
    /// Returns a human-readable violation description.
    fn check(&self, scenario: &Scenario, run: &ScenarioRun) -> Result<(), String>;
}

/// The default oracle battery, in reporting order.
pub fn default_oracles() -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(CommitAgreement),
        Box::new(UniqueSlotCommit),
        Box::new(CommitLatencyBound),
        Box::new(CommitLatencyP99),
        Box::new(Liveness),
        Box::new(EvidenceAttribution),
        Box::new(TxIntegrity),
        Box::new(ReceiptIntegrity),
        Box::new(StateRootAgreement),
    ]
}

/// Theorem 1 (Total Order): any two correct validators' committed leader
/// sequences are pairwise prefix-consistent, whatever the schedule.
pub struct CommitAgreement;

impl Oracle for CommitAgreement {
    fn name(&self) -> &'static str {
        "commit-agreement"
    }

    fn check(&self, scenario: &Scenario, run: &ScenarioRun) -> Result<(), String> {
        let correct = scenario.correct_validators();
        for (position, &i) in correct.iter().enumerate() {
            for &j in correct.iter().skip(position + 1) {
                let (a, b) = (&run.logs[i], &run.logs[j]);
                let len = a.len().min(b.len());
                if let Some(at) = (0..len).find(|&k| a[k] != b[k]) {
                    return Err(format!(
                        "validators {i} and {j} diverged at commit {at}: {:?} vs {:?}",
                        a[at], b[at]
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Lemma 2: even under (coordinated) equivocation, at most one block is
/// ever committed for a slot — across every correct validator's log.
pub struct UniqueSlotCommit;

impl Oracle for UniqueSlotCommit {
    fn name(&self) -> &'static str {
        "one-block-per-slot"
    }

    fn check(&self, scenario: &Scenario, run: &ScenarioRun) -> Result<(), String> {
        let mut committed: HashMap<Slot, BlockRef> = HashMap::new();
        for &validator in &scenario.correct_validators() {
            for reference in run.logs[validator].iter().flatten() {
                match committed.get(&reference.slot()) {
                    Some(existing) if existing != reference => {
                        return Err(format!(
                            "slot {:?} committed twice: {existing:?} (earlier) vs {reference:?} \
                             (validator {validator})",
                            reference.slot()
                        ));
                    }
                    _ => {
                        committed.insert(reference.slot(), *reference);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Commit-latency bound under the random network model (and every other
/// schedule the matrix runs): the commit frontier must track the DAG
/// frontier to within a protocol- and adversary-dependent number of rounds.
pub struct CommitLatencyBound;

impl CommitLatencyBound {
    /// The allowed frontier lag in rounds for `scenario`.
    ///
    /// The base term covers the structurally undecidable tail of a run
    /// (the last wave's coin has not opened, plus one wave of indirect
    /// resolution); the slack terms cover schedules that stall decisions
    /// (held-back quorums, rotating targets, partitions) and faults whose
    /// slots resolve only through later anchors.
    pub fn bound(scenario: &Scenario) -> u64 {
        let wave = scenario.config.protocol.leader_schedule().wave_length;
        let base = 4 * wave + 8;
        let adversary_slack = match scenario.config.adversary {
            AdversaryChoice::None => 0,
            AdversaryChoice::RandomSubset { .. } | AdversaryChoice::RotatingDelay { .. } => {
                2 * wave
            }
            AdversaryChoice::Partition { .. } => 3 * wave,
        };
        let fault_slack = if (0..scenario.config.committee_size)
            .all(|index| scenario.behavior_of(index).is_correct())
        {
            0
        } else {
            2 * wave
        };
        base + adversary_slack + fault_slack
    }
}

impl Oracle for CommitLatencyBound {
    fn name(&self) -> &'static str {
        "commit-latency-bound"
    }

    fn check(&self, scenario: &Scenario, run: &ScenarioRun) -> Result<(), String> {
        let frontier = run
            .logs
            .iter()
            .enumerate()
            .filter(|(index, _)| scenario.behavior_of(*index).is_correct())
            .flat_map(|(_, log)| log.iter().flatten())
            .map(|reference| reference.round)
            .max();
        let Some(frontier) = frontier else {
            return Ok(()); // no commits at all: the liveness oracle decides
        };
        let lag = run.report.highest_round.saturating_sub(frontier);
        let bound = Self::bound(scenario);
        if lag > bound {
            return Err(format!(
                "commit frontier lags the DAG by {lag} rounds (> {bound}): highest round {}, \
                 last committed leader round {frontier}",
                run.report.highest_round
            ));
        }
        Ok(())
    }
}

/// Commit-latency *distribution* bound: the p99 client latency (submission
/// → commit at the observer) must stay under a budget derived from the
/// scenario's wave structure, network model, adversary, and fault
/// configuration. Complements [`CommitLatencyBound`]: a run can keep its
/// commit frontier within the round-lag bound while still serving an
/// unbounded latency tail to clients (transactions stuck behind a stalled
/// anchor, a healed partition, or a held-back quorum), and the paper's
/// headline claim is about end-to-end latency, not frontier geometry.
pub struct CommitLatencyP99;

impl CommitLatencyP99 {
    /// Worst-case one-way network delay of the configured model, seconds.
    fn worst_one_way_s(config: &SimConfig) -> f64 {
        match config.latency {
            LatencyChoice::Uniform { max, .. } => time::as_secs_f64(max),
            // Worst inter-region mean (Oregon ↔ Cape Town, 138 ms) plus
            // the multiplicative jitter ceiling and a generous allowance
            // for the exponential tail (P(tail > 5·mean) < 1%).
            LatencyChoice::AwsWan {
                jitter_percent,
                tail_mean,
            } => 0.138 * (1.0 + jitter_percent as f64 / 100.0) + 5.0 * time::as_secs_f64(tail_mean),
        }
    }

    /// The p99 latency budget in seconds for `scenario`.
    ///
    /// Structure mirrors [`CommitLatencyBound::bound`], converted from
    /// rounds into wall-clock: a round costs one message delay on an
    /// uncertified DAG and three on a certified one (proposal → acks →
    /// certificate), plus the configured inclusion wait. The base term
    /// covers inclusion into a block, the wave itself with its coin
    /// opening, and a wave of indirect resolution; slack terms cover
    /// decision-stalling schedules and faulty slots resolved through later
    /// anchors.
    pub fn bound_s(scenario: &Scenario) -> f64 {
        let config = &scenario.config;
        let schedule = config.protocol.leader_schedule();
        let wave = schedule.wave_length as f64;
        let hops = if config.protocol.certified() {
            3.0
        } else {
            1.0
        };
        let per_round =
            hops * Self::worst_one_way_s(config) + time::as_secs_f64(config.inclusion_wait);
        // Non-overlapping schedules propose once per wave, so a freshly
        // submitted transaction can wait a whole extra wave for a
        // transaction-carrying anchor.
        let waves = if schedule.overlapping { 3.0 } else { 4.0 };
        let base = waves * wave * per_round;
        let adversary_slack = match config.adversary {
            AdversaryChoice::None => 0.0,
            AdversaryChoice::RandomSubset { hold } => 2.0 * wave * time::as_secs_f64(hold),
            AdversaryChoice::RotatingDelay { extra, .. } => 2.0 * wave * time::as_secs_f64(extra),
            // A transaction submitted as the partition forms can wait out
            // the entire split, then needs fresh waves to commit.
            AdversaryChoice::Partition { heals_at, .. } => {
                time::as_secs_f64(heals_at) + 2.0 * wave * per_round
            }
        };
        // Three waves, not two: a faulty leader's slot resolves through a
        // later anchor, and under a delivery adversary that rescuing anchor
        // can itself slip a wave before its support quorum assembles.
        let fault_slack =
            if (0..config.committee_size).all(|index| scenario.behavior_of(index).is_correct()) {
                0.0
            } else {
                3.0 * wave * per_round
            };
        base + adversary_slack + fault_slack
    }
}

impl Oracle for CommitLatencyP99 {
    fn name(&self) -> &'static str {
        "commit-latency-p99"
    }

    fn check(&self, scenario: &Scenario, run: &ScenarioRun) -> Result<(), String> {
        if run.report.latency.is_empty() {
            return Ok(()); // no commits at all: the liveness oracle decides
        }
        let p99 = run.report.latency.snapshot().p99_s();
        let bound = Self::bound_s(scenario);
        if p99 > bound {
            return Err(format!(
                "p99 commit latency {p99:.3}s exceeds the {bound:.3}s budget \
                 (mean {:.3}s over {} samples)",
                run.report.latency.mean_s(),
                run.report.latency.len()
            ));
        }
        Ok(())
    }
}

/// Liveness: whenever at least `2f + 1` validators are correct, the run
/// must commit leader slots and client transactions.
pub struct Liveness;

impl Oracle for Liveness {
    fn name(&self) -> &'static str {
        "liveness"
    }

    fn check(&self, scenario: &Scenario, run: &ScenarioRun) -> Result<(), String> {
        if !scenario.expects_liveness() {
            return Ok(()); // fewer than 2f + 1 correct: only safety applies
        }
        if run.report.committed_slots == 0 {
            return Err("no leader slot committed despite a correct quorum".into());
        }
        if run.report.committed_transactions == 0 {
            return Err("no client transaction committed despite a correct quorum".into());
        }
        Ok(())
    }
}

/// Fault attribution: every correct validator's convicted-equivocator set
/// must be *exactly* the authorities whose behavior signs conflicting
/// blocks — complete (each equivocator detected, locally or via gossiped
/// proofs) and sound (zero false positives on correct validators, whatever
/// crash faults or delivery-schedule adversaries are in play).
pub struct EvidenceAttribution;

impl Oracle for EvidenceAttribution {
    fn name(&self) -> &'static str {
        "evidence-attribution"
    }

    fn check(&self, scenario: &Scenario, run: &ScenarioRun) -> Result<(), String> {
        let expected = scenario.expected_equivocators();
        for &validator in &scenario.correct_validators() {
            let Some(convicted) = run.culprits.get(validator) else {
                return Err(format!("no culprit set recorded for validator {validator}"));
            };
            let false_positives: Vec<_> = convicted
                .iter()
                .filter(|author| !expected.contains(author))
                .collect();
            if !false_positives.is_empty() {
                return Err(format!(
                    "validator {validator} falsely convicted {false_positives:?} \
                     (actual equivocators: {expected:?})"
                ));
            }
            let missed: Vec<_> = expected
                .iter()
                .filter(|author| !convicted.contains(author))
                .collect();
            if !missed.is_empty() {
                return Err(format!(
                    "validator {validator} failed to attribute equivocators {missed:?} \
                     (convicted only {convicted:?})"
                ));
            }
        }
        Ok(())
    }
}

/// Transaction integrity: at every correct validator, the client pipeline
/// neither loses nor duplicates transactions, and the mempool honors its
/// configured bounds:
///
/// - **conservation** — every accepted transaction is pending, in flight
///   in a produced-but-uncommitted own block, or committed (no loss);
/// - **exactly-once** — no accepted transaction ever commits twice across
///   the validator's own (unforgeably signed) blocks, whatever Byzantine
///   behavior or delivery schedule is in play. A Byzantine peer copying
///   observed payloads into blocks *it* signs is that peer's misbehavior
///   (attributed by the evidence subsystem) and does not violate the
///   correct validator's pipeline;
/// - **bounded occupancy** — peak pool occupancy never exceeds the
///   configured capacity (backpressure instead of unbounded growth).
pub struct TxIntegrity;

impl Oracle for TxIntegrity {
    fn name(&self) -> &'static str {
        "tx-integrity"
    }

    fn check(&self, scenario: &Scenario, run: &ScenarioRun) -> Result<(), String> {
        for &validator in &scenario.correct_validators() {
            let Some(report) = run.tx_integrity.get(validator) else {
                return Err(format!(
                    "no tx-integrity report recorded for validator {validator}"
                ));
            };
            // One shared definition of "sound" (TxIntegrityReport) keeps
            // this oracle and the load generator's gates in lockstep.
            if let Some(violation) = report.violations().into_iter().next() {
                return Err(format!("validator {validator}: {violation}"));
            }
        }
        Ok(())
    }
}

/// Client-ingress accounting: at every correct validator the receipt
/// ledger balances — one admission receipt per batch received on the
/// wire, no commit notice without an open receipt note, and no forwarded
/// batch reported committed more often than it was forwarded.
///
/// Zero receipt loss is the property the client protocol leans on: a
/// client that saw `Admission` for every submission and waits for
/// `Committed` notices can rely on exactly-once reporting without
/// polling.
pub struct ReceiptIntegrity;

impl Oracle for ReceiptIntegrity {
    fn name(&self) -> &'static str {
        "receipt-integrity"
    }

    fn check(&self, scenario: &Scenario, run: &ScenarioRun) -> Result<(), String> {
        for &validator in &scenario.correct_validators() {
            let Some(report) = run.ingress.get(validator) else {
                return Err(format!(
                    "no ingress report recorded for validator {validator}"
                ));
            };
            // `IngressReport::violations` is the shared definition of a
            // balanced receipt ledger — the load generator gates on the
            // same method, so the bench and the matrix cannot drift.
            if let Some(violation) = report.violations().into_iter().next() {
                return Err(format!("validator {validator}: {violation}"));
            }
        }
        Ok(())
    }
}

/// Execution determinism: every correct validator folds the agreed commit
/// sequence into the same state.
///
/// Two complementary comparisons:
///
/// - **checkpoints** — signed `(position, leader, state_root)` attestations
///   emitted every `checkpoint_interval` decisions compare roots at
///   *identical* commit positions, so validators that finish at different
///   frontiers are still held to agreement over their shared prefix;
/// - **final roots** — validators whose commit logs ended at the same
///   length must hold byte-identical state (equal roots), catching
///   divergence in the tail after the last checkpoint boundary.
pub struct StateRootAgreement;

impl Oracle for StateRootAgreement {
    fn name(&self) -> &'static str {
        "state-root-agreement"
    }

    fn check(&self, scenario: &Scenario, run: &ScenarioRun) -> Result<(), String> {
        let correct = scenario.correct_validators();
        // Checkpoint agreement at identical commit positions.
        let mut by_position: HashMap<u64, (usize, &Checkpoint)> = HashMap::new();
        for &validator in &correct {
            let Some(checkpoints) = run.checkpoints.get(validator) else {
                return Err(format!("no checkpoints recorded for validator {validator}"));
            };
            for checkpoint in checkpoints {
                match by_position.get(&checkpoint.position()) {
                    Some((earlier, existing)) if !existing.attests_same(checkpoint) => {
                        return Err(format!(
                            "validators {earlier} and {validator} attest different states at \
                             commit position {}: {:?} vs {:?}",
                            checkpoint.position(),
                            existing.state_root(),
                            checkpoint.state_root()
                        ));
                    }
                    _ => {
                        by_position.insert(checkpoint.position(), (validator, checkpoint));
                    }
                }
            }
        }
        // Final-root agreement between validators at the same frontier.
        for (index, &i) in correct.iter().enumerate() {
            for &j in correct.iter().skip(index + 1) {
                if run.logs[i].len() == run.logs[j].len()
                    && run.state_roots[i] != run.state_roots[j]
                {
                    return Err(format!(
                        "validators {i} and {j} reached the same commit position ({}) with \
                         different state roots: {:?} vs {:?}",
                        run.logs[i].len(),
                        run.state_roots[i],
                        run.state_roots[j]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_crypto::Digest;
    use mahimahi_net::time;
    use mahimahi_sim::{
        Behavior, IngressReport, LatencyChoice, ProtocolChoice, SimConfig, SimReport,
        TxIntegrityReport,
    };
    use mahimahi_types::{AuthorityIndex, StateRoot, TestCommittee};

    fn reference(round: u64, author: u32, tag: u8) -> BlockRef {
        BlockRef {
            round,
            author: AuthorityIndex(author),
            digest: Digest::new([tag; 32]),
        }
    }

    fn scenario() -> Scenario {
        Scenario::new(
            "oracle-unit",
            SimConfig {
                protocol: ProtocolChoice::MahiMahi5 { leaders: 2 },
                committee_size: 4,
                duration: time::from_secs(2),
                latency: LatencyChoice::Uniform { min: 10, max: 20 },
                ..SimConfig::default()
            },
        )
    }

    fn run_with_logs(logs: Vec<Vec<Option<BlockRef>>>) -> ScenarioRun {
        let validators = logs.len();
        ScenarioRun {
            report: SimReport {
                committed_slots: 1,
                committed_transactions: 1,
                highest_round: 10,
                ..SimReport::default()
            },
            logs,
            culprits: vec![Vec::new(); validators],
            tx_integrity: vec![TxIntegrityReport::default(); validators],
            ingress: vec![IngressReport::default(); validators],
            state_roots: vec![StateRoot::genesis(); validators],
            checkpoints: vec![Vec::new(); validators],
        }
    }

    #[test]
    fn agreement_catches_divergence() {
        let a = vec![Some(reference(1, 0, 1)), Some(reference(2, 1, 2))];
        let b = vec![Some(reference(1, 0, 1)), Some(reference(2, 1, 3))];
        let run = run_with_logs(vec![a.clone(), b, a.clone(), a]);
        assert!(CommitAgreement.check(&scenario(), &run).is_err());
    }

    #[test]
    fn agreement_accepts_prefixes() {
        let long = vec![Some(reference(1, 0, 1)), None, Some(reference(3, 2, 2))];
        let short = long[..2].to_vec();
        let run = run_with_logs(vec![long.clone(), short, long.clone(), long]);
        assert!(CommitAgreement.check(&scenario(), &run).is_ok());
    }

    #[test]
    fn unique_slot_catches_double_commit() {
        // Same slot (round 2, author 1), two digests, in different logs at
        // different positions — prefix consistency alone would miss it.
        let a = vec![Some(reference(2, 1, 7))];
        let b = vec![Some(reference(2, 1, 9))];
        let run = run_with_logs(vec![a.clone(), b, a.clone(), a]);
        assert!(UniqueSlotCommit.check(&scenario(), &run).is_err());
    }

    #[test]
    fn latency_bound_measures_frontier_lag() {
        let mut run = run_with_logs(vec![vec![Some(reference(1, 0, 1))]; 4]);
        run.report.highest_round = 1000;
        let result = CommitLatencyBound.check(&scenario(), &run);
        assert!(result.is_err(), "{result:?}");
        run.report.highest_round = 10;
        assert!(CommitLatencyBound.check(&scenario(), &run).is_ok());
    }

    #[test]
    fn liveness_requires_commits_only_with_a_correct_quorum() {
        let mut run = run_with_logs(vec![Vec::new(); 4]);
        run.report.committed_slots = 0;
        run.report.committed_transactions = 0;
        let live = scenario();
        assert!(Liveness.check(&live, &run).is_err());

        // Two crashed validators: fewer than 2f + 1 correct, no obligation.
        let mut dark = scenario();
        dark.config.behaviors = vec![
            (2, Behavior::Crashed { from_round: 0 }),
            (3, Behavior::Crashed { from_round: 0 }),
        ];
        assert!(Liveness.check(&dark, &run).is_ok());
    }

    #[test]
    fn attribution_requires_exactly_the_equivocators() {
        let mut equivocating = scenario();
        equivocating.config.behaviors = vec![(3, Behavior::ForkSpammer { forks: 3 })];
        let logs = vec![vec![Some(reference(1, 0, 1))]; 4];

        // Complete and sound: every correct validator names exactly v3.
        let mut run = run_with_logs(logs.clone());
        run.culprits = vec![vec![AuthorityIndex(3)]; 4];
        assert!(EvidenceAttribution.check(&equivocating, &run).is_ok());

        // A correct validator that missed the culprit fails the oracle.
        let mut run = run_with_logs(logs.clone());
        run.culprits = vec![
            vec![AuthorityIndex(3)],
            Vec::new(), // validator 1 never convicted anyone
            vec![AuthorityIndex(3)],
            vec![AuthorityIndex(3)],
        ];
        let violation = EvidenceAttribution.check(&equivocating, &run);
        assert!(violation.unwrap_err().contains("failed to attribute"));

        // The Byzantine validator's own (empty) set is not checked.
        let mut run = run_with_logs(logs.clone());
        run.culprits = vec![
            vec![AuthorityIndex(3)],
            vec![AuthorityIndex(3)],
            vec![AuthorityIndex(3)],
            Vec::new(),
        ];
        assert!(EvidenceAttribution.check(&equivocating, &run).is_ok());

        // A false positive on a correct author fails, even in an
        // all-honest scenario.
        let honest = scenario();
        let mut run = run_with_logs(logs);
        run.culprits[2] = vec![AuthorityIndex(0)];
        let violation = EvidenceAttribution.check(&honest, &run);
        assert!(violation.unwrap_err().contains("falsely convicted"));
    }

    #[test]
    fn tx_integrity_catches_loss_duplication_and_overgrowth() {
        let scenario = scenario();
        let logs = vec![vec![Some(reference(1, 0, 1))]; 4];
        let sound = TxIntegrityReport {
            accepted: 10,
            pending: 2,
            in_flight: 3,
            own_committed: 5,
            peak_occupancy_txs: 6,
            peak_occupancy_bytes: 600,
            capacity_txs: 8,
            capacity_bytes: 1_000,
            ..TxIntegrityReport::default()
        };
        let mut run = run_with_logs(logs.clone());
        run.tx_integrity = vec![sound; 4];
        assert!(TxIntegrity.check(&scenario, &run).is_ok());

        // A lost transaction (conservation violated) fails.
        let mut run = run_with_logs(logs.clone());
        run.tx_integrity = vec![sound; 4];
        run.tx_integrity[1].own_committed = 4;
        let violation = TxIntegrity.check(&scenario, &run);
        assert!(violation.unwrap_err().contains("transactions lost"));

        // A duplicate commit fails.
        let mut run = run_with_logs(logs.clone());
        run.tx_integrity = vec![sound; 4];
        run.tx_integrity[2].duplicate_committed = 1;
        let violation = TxIntegrity.check(&scenario, &run);
        assert!(violation.unwrap_err().contains("committed more than once"));

        // Occupancy beyond the configured capacity fails.
        let mut run = run_with_logs(logs.clone());
        run.tx_integrity = vec![sound; 4];
        run.tx_integrity[0].peak_occupancy_txs = 9;
        let violation = TxIntegrity.check(&scenario, &run);
        assert!(violation.unwrap_err().contains("outgrew"));

        // A Byzantine validator's report is not checked (its multi-variant
        // builds legitimately double-count in-flight tags).
        let mut byzantine = scenario;
        byzantine.config.behaviors = vec![(3, Behavior::ForkSpammer { forks: 3 })];
        let mut run = run_with_logs(logs);
        run.tx_integrity = vec![sound; 4];
        run.tx_integrity[3].own_committed = 0;
        assert!(TxIntegrity.check(&byzantine, &run).is_ok());
    }

    #[test]
    fn receipt_integrity_catches_loss_and_phantom_notices() {
        let scenario = scenario();
        let logs = vec![vec![Some(reference(1, 0, 1))]; 4];
        let sound = IngressReport {
            batches_received: 10,
            receipts_emitted: 10,
            notes_opened: 10,
            commit_notices: 7,
            forwarded: 3,
            forwarded_committed: 2,
            rate_limited: 1,
        };
        let mut run = run_with_logs(logs.clone());
        run.ingress = vec![sound; 4];
        assert!(ReceiptIntegrity.check(&scenario, &run).is_ok());

        // A batch that never got an admission receipt fails.
        let mut run = run_with_logs(logs.clone());
        run.ingress = vec![sound; 4];
        run.ingress[1].receipts_emitted = 9;
        let violation = ReceiptIntegrity.check(&scenario, &run);
        assert!(violation.unwrap_err().contains("receipt loss"));

        // A commit notice for a note that was never opened fails.
        let mut run = run_with_logs(logs.clone());
        run.ingress = vec![sound; 4];
        run.ingress[2].commit_notices = 11;
        let violation = ReceiptIntegrity.check(&scenario, &run);
        assert!(violation.unwrap_err().contains("notes opened"));

        // A Byzantine validator's ledger is not checked.
        let mut byzantine = scenario;
        byzantine.config.behaviors = vec![(3, Behavior::ForkSpammer { forks: 3 })];
        let mut run = run_with_logs(logs);
        run.ingress = vec![sound; 4];
        run.ingress[3].receipts_emitted = 0;
        assert!(ReceiptIntegrity.check(&byzantine, &run).is_ok());
    }

    #[test]
    fn certified_protocols_expect_no_equivocators() {
        // Under Tusk, equivocating behaviors degrade to honest production:
        // the ground-truth culprit set is empty and any conviction is a
        // false positive.
        let mut tusk = scenario();
        tusk.config.protocol = ProtocolChoice::Tusk;
        tusk.config.behaviors = vec![(3, Behavior::ForkSpammer { forks: 3 })];
        assert!(tusk.expected_equivocators().is_empty());
        let mut run = run_with_logs(vec![vec![Some(reference(1, 0, 1))]; 4]);
        assert!(EvidenceAttribution.check(&tusk, &run).is_ok());
        run.culprits[0] = vec![AuthorityIndex(3)];
        assert!(EvidenceAttribution.check(&tusk, &run).is_err());
    }

    #[test]
    fn p99_bound_catches_heavy_latency_tails() {
        let scenario = scenario();
        let mut run = run_with_logs(vec![vec![Some(reference(1, 0, 1))]; 4]);
        // Empty stats: liveness decides, not this oracle.
        assert!(CommitLatencyP99.check(&scenario, &run).is_ok());
        // A healthy distribution under the ~0.75 s budget of this config.
        for _ in 0..50 {
            run.report.latency.record(time::from_millis(200));
        }
        assert!(CommitLatencyP99.check(&scenario, &run).is_ok());
        // A 5-second straggler in the top percentile blows the p99.
        run.report.latency.record(time::from_secs(5));
        let violation = CommitLatencyP99.check(&scenario, &run);
        assert!(violation.unwrap_err().contains("p99 commit latency"));
    }

    #[test]
    fn p99_budgets_scale_with_protocol_adversary_and_faults() {
        // Wire latency must be non-negligible for hop counts to register.
        let wan = || {
            let mut scenario = scenario();
            scenario.config.latency = LatencyChoice::Uniform {
                min: time::from_millis(20),
                max: time::from_millis(60),
            };
            scenario
        };
        let benign = wan();
        // Certified rounds cost three hops instead of one.
        let mut tusk = wan();
        tusk.config.protocol = ProtocolChoice::Tusk;
        assert!(CommitLatencyP99::bound_s(&tusk) > CommitLatencyP99::bound_s(&benign));
        // A partition adds its full healing time to the budget.
        let mut partitioned = wan();
        partitioned.config.adversary = mahimahi_sim::AdversaryChoice::Partition {
            minority: 1,
            heals_at: time::from_secs(1),
        };
        assert!(CommitLatencyP99::bound_s(&partitioned) > CommitLatencyP99::bound_s(&benign) + 1.0);
        // Faulty slots resolved through later anchors widen the tail.
        let mut faulty = wan();
        faulty.config.behaviors = vec![(3, Behavior::Adaptive)];
        assert!(CommitLatencyP99::bound_s(&faulty) > CommitLatencyP99::bound_s(&benign));
    }

    #[test]
    fn bounds_scale_with_wave_and_adversary() {
        let benign = scenario();
        let mut partitioned = scenario();
        partitioned.config.adversary = mahimahi_sim::AdversaryChoice::Partition {
            minority: 1,
            heals_at: time::from_secs(1),
        };
        assert!(CommitLatencyBound::bound(&partitioned) > CommitLatencyBound::bound(&benign));
    }

    fn signed_checkpoint(
        authority: u32,
        position: u64,
        root_tag: u8,
    ) -> mahimahi_types::Checkpoint {
        let setup = TestCommittee::new(4, 7);
        mahimahi_types::Checkpoint::sign(
            AuthorityIndex(authority),
            position,
            reference(1, 0, 1),
            StateRoot(Digest::new([root_tag; 32])),
            Digest::new([9; 32]),
            setup.keypair(AuthorityIndex(authority)),
        )
    }

    #[test]
    fn state_root_agreement_accepts_matching_checkpoints_and_roots() {
        let logs = vec![vec![Some(reference(1, 0, 1))]; 4];
        let mut run = run_with_logs(logs);
        run.checkpoints = (0..4).map(|a| vec![signed_checkpoint(a, 32, 5)]).collect();
        assert!(StateRootAgreement.check(&scenario(), &run).is_ok());
    }

    #[test]
    fn state_root_agreement_catches_checkpoint_divergence() {
        // Same position, different roots: execution diverged inside the
        // shared committed prefix — even though final roots (sampled at
        // different frontiers) are not comparable.
        let mut logs = vec![vec![Some(reference(1, 0, 1))]; 4];
        logs[2].push(Some(reference(3, 1, 2))); // validator 2 ran ahead
        let mut run = run_with_logs(logs);
        run.checkpoints = (0..4)
            .map(|a| vec![signed_checkpoint(a, 32, if a == 2 { 6 } else { 5 })])
            .collect();
        let violation = StateRootAgreement.check(&scenario(), &run);
        assert!(violation.unwrap_err().contains("commit position 32"));
    }

    #[test]
    fn state_root_agreement_catches_final_root_divergence() {
        // Equal log lengths but different final roots: the tail past the
        // last checkpoint boundary diverged.
        let mut run = run_with_logs(vec![vec![Some(reference(1, 0, 1))]; 4]);
        run.state_roots[1] = StateRoot(Digest::new([7; 32]));
        let violation = StateRootAgreement.check(&scenario(), &run);
        assert!(violation.unwrap_err().contains("different state roots"));
    }

    #[test]
    fn state_root_agreement_ignores_byzantine_and_crashed_validators() {
        let mut faulty = scenario();
        faulty.config.behaviors = vec![
            (2, Behavior::ForkSpammer { forks: 3 }),
            (3, Behavior::Crashed { from_round: 0 }),
        ];
        let mut run = run_with_logs(vec![vec![Some(reference(1, 0, 1))]; 4]);
        run.state_roots[2] = StateRoot(Digest::new([8; 32]));
        run.checkpoints[3] = vec![signed_checkpoint(3, 32, 9)];
        run.checkpoints[0] = vec![signed_checkpoint(0, 32, 5)];
        run.checkpoints[1] = vec![signed_checkpoint(1, 32, 5)];
        assert!(StateRootAgreement.check(&faulty, &run).is_ok());
    }
}
