//! The deterministic protocol × behavior × adversary matrix sweep.

use mahimahi_net::time;
use mahimahi_sim::{
    AdversaryChoice, Behavior, IngressConfig, LatencyChoice, ProtocolChoice, SimConfig,
};

use crate::oracle::{default_oracles, CommitLatencyBound, CommitLatencyP99};
use crate::scenario::Scenario;

/// The four systems under test, in the paper's plotting order.
pub fn protocols() -> Vec<ProtocolChoice> {
    vec![
        ProtocolChoice::MahiMahi5 { leaders: 2 },
        ProtocolChoice::MahiMahi4 { leaders: 2 },
        ProtocolChoice::CordialMiners,
        ProtocolChoice::Tusk,
    ]
}

/// Every non-honest behavior the matrix assigns (to the last validator):
/// the passive faults plus the four active attack strategies.
pub fn attack_behaviors() -> Vec<Behavior> {
    vec![
        Behavior::Crashed { from_round: 0 },
        Behavior::Offline {
            from: time::from_millis(1_000),
            until: time::from_millis(1_800),
        },
        Behavior::Mute,
        Behavior::Equivocator,
        Behavior::WithholdingLeader,
        Behavior::SplitBrainEquivocator { minority: 1 },
        Behavior::SlowProposer {
            delay: time::from_millis(150),
        },
        Behavior::ForkSpammer { forks: 3 },
        Behavior::Adaptive,
    ]
}

/// The four delivery-schedule adversaries the matrix crosses with.
pub fn adversaries() -> Vec<(&'static str, AdversaryChoice)> {
    vec![
        ("none", AdversaryChoice::None),
        (
            "random-subset",
            AdversaryChoice::RandomSubset {
                hold: time::from_millis(120),
            },
        ),
        (
            "rotating-delay",
            AdversaryChoice::RotatingDelay {
                targets: 1,
                period: 3,
                extra: time::from_millis(250),
            },
        ),
        (
            "partition",
            AdversaryChoice::Partition {
                minority: 1,
                heals_at: time::from_millis(1_000),
            },
        ),
    ]
}

/// The committee size of the base matrix (the paper's smallest deployment).
const BASE_COMMITTEE: usize = 4;

/// The larger committee exercised by the scale row (`f = 3`).
pub const SCALE_COMMITTEE: usize = 10;

/// The committee-scale row (`f = 16`, the paper's largest deployment).
/// These cells run on the geo-replicated WAN latency model with per-link
/// jitter, so the dense-indexing hot paths are exercised under realistic
/// message schedules rather than the uniform lab model.
pub const LARGE_COMMITTEE: usize = 50;

/// One matrix cell, fully determined by its coordinates: the seed is a
/// stable function of `(protocol, behavior, adversary, committee)`, so any
/// cell can be reproduced from the report alone. The (single) non-honest
/// behavior is always assigned to the last authority.
#[allow(clippy::too_many_arguments)] // one coordinate per dimension, called from the sweep builders only
fn cell(
    protocol: ProtocolChoice,
    protocol_index: usize,
    behavior: Option<Behavior>,
    behavior_index: usize,
    adversary_name: &str,
    adversary: AdversaryChoice,
    adversary_index: usize,
    committee_size: usize,
) -> Scenario {
    // Wide strides so the catalogs can grow (more behaviors, adversaries,
    // protocols, committees) without any two cells ever colliding on a
    // seed; the base-committee seeds are unchanged from earlier revisions.
    let seed = 0x5eed_0000
        + if committee_size == BASE_COMMITTEE {
            0
        } else {
            committee_size as u64 * 100_000_000
        }
        + (protocol_index as u64) * 1_000_000
        + (behavior_index as u64) * 1_000
        + adversary_index as u64;
    let behaviors = behavior
        .map(|behavior| vec![(committee_size - 1, behavior)])
        .unwrap_or_default();
    let behavior_label = behavior.map(|b| b.label()).unwrap_or("honest");
    // Non-overlapping-wave protocols commit once per wave (Cordial Miners)
    // or pay three delays per round (Tusk), and a faulty wave leader can
    // stall decisions until a later anchor commits: give them enough
    // simulated time for several transaction-carrying waves even under the
    // harshest schedules.
    let duration = if protocol.leader_schedule().overlapping {
        time::from_secs(3)
    } else {
        time::from_secs(8)
    };
    // The committee-scale row runs on the geo-replicated WAN model (real
    // inter-region latencies plus per-link jitter): dense-indexing hot
    // paths only face realistic message schedules there. Smaller cells keep
    // the uniform lab model so their seeds and outcomes stay byte-stable
    // across revisions. Per-validator load is scaled down at n = 50 to keep
    // the offered load (and the debug-mode sweep runtime) comparable.
    let (latency, txs_per_second_per_validator) = if committee_size >= LARGE_COMMITTEE {
        (LatencyChoice::aws_wan(), 8)
    } else {
        (
            LatencyChoice::Uniform {
                min: time::from_millis(20),
                max: time::from_millis(60),
            },
            40,
        )
    };
    // Every cell runs with age-based mempool forwarding armed: a faulty or
    // stalled validator's aging transactions get re-broadcast to its peers,
    // so the `receipt-integrity` oracle audits a live forwarding ledger
    // (forwarded vs. forwarded-committed) in all 192 cells rather than a
    // vacuously-zero one. One second is ~2× the healthy commit latency of
    // the lab cells: forwarding engages under faults without adding wire
    // traffic to the steady state.
    let ingress = IngressConfig {
        forward_age: Some(time::from_secs(1)),
        ..IngressConfig::default()
    };
    let config = SimConfig {
        protocol,
        committee_size,
        behaviors,
        duration,
        txs_per_second_per_validator,
        latency,
        adversary,
        seed,
        ingress,
        ..SimConfig::default()
    };
    let committee_label = if committee_size == BASE_COMMITTEE {
        String::new()
    } else {
        format!("@n{committee_size}")
    };
    Scenario::new(
        format!(
            "{}/{}{}/{}",
            protocol.name(),
            behavior_label,
            committee_label,
            adversary_name
        ),
        config,
    )
}

/// The full sweep: every protocol × every behavior (plus an all-honest
/// baseline) × every adversary at `n = 4` — 4 × 10 × 4 = 160 seeded
/// scenarios — plus two scale rows:
///
/// - the `n = 10` row: every protocol × every adversary with an
///   equivocator in the last slot (16 cells), exercising commit agreement,
///   fault attribution, and transaction integrity at `f = 3`;
/// - the `n = 50` row: every protocol × every adversary with the
///   *adaptive* adversary in the last slot (16 cells) on the geo-jitter
///   WAN model, exercising the dense-indexing hot paths and the p99
///   commit-latency oracle at `f = 16`.
pub fn full_matrix() -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for (protocol_index, &protocol) in protocols().iter().enumerate() {
        let mut rows: Vec<Option<Behavior>> = vec![None];
        rows.extend(attack_behaviors().into_iter().map(Some));
        for (behavior_index, &behavior) in rows.iter().enumerate() {
            for (adversary_index, &(adversary_name, adversary)) in adversaries().iter().enumerate()
            {
                scenarios.push(cell(
                    protocol,
                    protocol_index,
                    behavior,
                    behavior_index,
                    adversary_name,
                    adversary,
                    adversary_index,
                    BASE_COMMITTEE,
                ));
            }
        }
        // The scale rows (behavior indexes past the n = 4 rows keep the
        // seed lattice regular; the committee term disambiguates).
        for (adversary_index, &(adversary_name, adversary)) in adversaries().iter().enumerate() {
            scenarios.push(cell(
                protocol,
                protocol_index,
                Some(Behavior::Equivocator),
                9,
                adversary_name,
                adversary,
                adversary_index,
                SCALE_COMMITTEE,
            ));
        }
        for (adversary_index, &(adversary_name, adversary)) in adversaries().iter().enumerate() {
            scenarios.push(cell(
                protocol,
                protocol_index,
                Some(Behavior::Adaptive),
                10,
                adversary_name,
                adversary,
                adversary_index,
                LARGE_COMMITTEE,
            ));
        }
    }
    scenarios
}

/// A deterministic diagonal subset for quick CI smoke runs: every behavior,
/// every protocol, every adversary, and all three committee sizes appear
/// at least once, in 12 cells instead of 192.
pub fn smoke_matrix() -> Vec<Scenario> {
    let protocols = protocols();
    let adversaries = adversaries();
    let mut rows: Vec<Option<Behavior>> = vec![None];
    rows.extend(attack_behaviors().into_iter().map(Some));
    let mut scenarios: Vec<Scenario> = rows
        .iter()
        .enumerate()
        .map(|(behavior_index, &behavior)| {
            let protocol_index = behavior_index % protocols.len();
            let adversary_index = behavior_index % adversaries.len();
            let (adversary_name, adversary) = adversaries[adversary_index];
            cell(
                protocols[protocol_index],
                protocol_index,
                behavior,
                behavior_index,
                adversary_name,
                adversary,
                adversary_index,
                BASE_COMMITTEE,
            )
        })
        .collect();
    // One cell per scale row (same coordinates as their full-matrix
    // twins, so the smoke names are a strict subset of the full sweep).
    let (adversary_name, adversary) = adversaries[0];
    scenarios.push(cell(
        protocols[0],
        0,
        Some(Behavior::Equivocator),
        9,
        adversary_name,
        adversary,
        0,
        SCALE_COMMITTEE,
    ));
    let (adversary_name, adversary) = adversaries[1];
    scenarios.push(cell(
        protocols[1],
        1,
        Some(Behavior::Adaptive),
        10,
        adversary_name,
        adversary,
        1,
        LARGE_COMMITTEE,
    ));
    scenarios
}

/// The verdict of one oracle on one scenario.
#[derive(Debug, Clone)]
pub struct OracleOutcome {
    /// Oracle name.
    pub oracle: &'static str,
    /// Violation description (`None` = pass).
    pub violation: Option<String>,
}

/// The machine-checkable outcome of one matrix cell.
#[derive(Debug)]
pub struct ScenarioResult {
    /// The scenario's stable name.
    pub name: String,
    /// Seed that reproduces the run.
    pub seed: u64,
    /// Committee size.
    pub committee_size: usize,
    /// Transactions committed at the observer.
    pub committed_transactions: u64,
    /// Committed leader slots at the observer.
    pub committed_slots: u64,
    /// Skipped leader slots at the observer.
    pub skipped_slots: u64,
    /// Highest DAG round the observer reached.
    pub highest_round: u64,
    /// Mean client latency in seconds.
    pub latency_mean_s: f64,
    /// p99 client latency in seconds (0 when nothing committed).
    pub latency_p99_s: f64,
    /// p99 of the verify stage (signature/structure checks) in seconds.
    pub verify_p99_s: f64,
    /// p99 of the resequence stage (submission-order release) in seconds.
    pub resequence_p99_s: f64,
    /// p99 of the execute stage (sub-DAG application) in seconds.
    pub execute_p99_s: f64,
    /// The commit-frontier lag bound this cell was held to.
    pub lag_bound_rounds: u64,
    /// The wall-clock p99 commit-latency budget this cell was held to.
    pub p99_bound_s: f64,
    /// Per-validator convicted-equivocator sets (authority indexes, index
    /// order) — the fault-attribution output the `evidence-attribution`
    /// oracle checks.
    pub culprits: Vec<Vec<u32>>,
    /// Every oracle's verdict.
    pub oracles: Vec<OracleOutcome>,
}

impl ScenarioResult {
    /// Whether every oracle passed.
    pub fn pass(&self) -> bool {
        self.oracles
            .iter()
            .all(|outcome| outcome.violation.is_none())
    }

    /// The failed oracles as `oracle: detail` strings.
    pub fn failures(&self) -> Vec<String> {
        self.oracles
            .iter()
            .filter_map(|outcome| {
                outcome
                    .violation
                    .as_ref()
                    .map(|detail| format!("{}: {detail}", outcome.oracle))
            })
            .collect()
    }

    /// One JSON object (no external serializer: the workspace is offline).
    pub fn to_json(&self) -> String {
        let oracles = self
            .oracles
            .iter()
            .map(|outcome| {
                format!(
                    "{{\"oracle\":\"{}\",\"pass\":{},\"detail\":\"{}\"}}",
                    escape(outcome.oracle),
                    outcome.violation.is_none(),
                    escape(outcome.violation.as_deref().unwrap_or("")),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let culprits = self
            .culprits
            .iter()
            .map(|set| {
                let authors = set.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
                format!("[{authors}]")
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"name\":\"{}\",\"seed\":{},\"committee_size\":{},\
             \"committed_transactions\":{},\"committed_slots\":{},\"skipped_slots\":{},\
             \"highest_round\":{},\"latency_mean_s\":{:.4},\"latency_p99_s\":{:.4},\
             \"verify_p99_s\":{:.6},\"resequence_p99_s\":{:.6},\"execute_p99_s\":{:.6},\
             \"lag_bound_rounds\":{},\"p99_bound_s\":{:.4},\
             \"culprits\":[{}],\"pass\":{},\"oracles\":[{}]}}",
            escape(&self.name),
            self.seed,
            self.committee_size,
            self.committed_transactions,
            self.committed_slots,
            self.skipped_slots,
            self.highest_round,
            self.latency_mean_s,
            self.latency_p99_s,
            self.verify_p99_s,
            self.resequence_p99_s,
            self.execute_p99_s,
            self.lag_bound_rounds,
            self.p99_bound_s,
            culprits,
            self.pass(),
            oracles,
        )
    }
}

/// Runs one scenario and checks the default oracle battery against it.
pub fn run_scenario(scenario: &Scenario) -> ScenarioResult {
    let run = scenario.run();
    let oracles = default_oracles()
        .iter()
        .map(|oracle| OracleOutcome {
            oracle: oracle.name(),
            violation: oracle.check(scenario, &run).err(),
        })
        .collect();
    ScenarioResult {
        name: scenario.name.clone(),
        seed: scenario.config.seed,
        committee_size: scenario.config.committee_size,
        committed_transactions: run.report.committed_transactions,
        committed_slots: run.report.committed_slots,
        skipped_slots: run.report.skipped_slots,
        highest_round: run.report.highest_round,
        latency_mean_s: run.report.latency.mean_s(),
        latency_p99_s: if run.report.latency.is_empty() {
            0.0
        } else {
            run.report.latency.snapshot().p99_s()
        },
        verify_p99_s: run.report.stage_p99_s(mahimahi_telemetry::Stage::Verified),
        resequence_p99_s: run
            .report
            .stage_p99_s(mahimahi_telemetry::Stage::Resequenced),
        execute_p99_s: run.report.stage_p99_s(mahimahi_telemetry::Stage::Executed),
        lag_bound_rounds: CommitLatencyBound::bound(scenario),
        p99_bound_s: CommitLatencyP99::bound_s(scenario),
        culprits: run
            .culprits
            .iter()
            .map(|set| set.iter().map(|author| author.0).collect())
            .collect(),
        oracles,
    }
}

/// The whole sweep as one JSON document.
pub fn report_json(results: &[ScenarioResult]) -> String {
    let failed = results.iter().filter(|result| !result.pass()).count();
    let rows = results
        .iter()
        .map(ScenarioResult::to_json)
        .collect::<Vec<_>>()
        .join(",\n    ");
    format!(
        "{{\n  \"suite\": \"scenario-matrix\",\n  \"total\": {},\n  \"failed\": {},\n  \
         \"scenarios\": [\n    {}\n  ]\n}}\n",
        results.len(),
        failed,
        rows,
    )
}

fn escape(input: &str) -> String {
    input
        .chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matrix_covers_the_whole_space() {
        let scenarios = full_matrix();
        // 160 n = 4 cells plus the 16-cell n = 10 and n = 50 scale rows.
        assert_eq!(scenarios.len(), 4 * 10 * 4 + 4 * 4 + 4 * 4);
        for protocol in protocols() {
            assert!(scenarios
                .iter()
                .any(|s| s.name.starts_with(&protocol.name())));
        }
        for behavior in attack_behaviors() {
            assert!(scenarios.iter().any(|s| s.name.contains(behavior.label())));
        }
        for (adversary, _) in adversaries() {
            assert!(scenarios.iter().any(|s| s.name.ends_with(adversary)));
        }
        // The scale rows: every protocol × every adversary at n = 10 and
        // n = 50, with the Byzantine slot at the last authority.
        let scale: Vec<&Scenario> = scenarios
            .iter()
            .filter(|s| s.name.contains("@n10"))
            .collect();
        assert_eq!(scale.len(), 4 * 4);
        for scenario in &scale {
            assert_eq!(scenario.config.committee_size, 10);
            assert_eq!(
                scenario.config.behavior_of(9),
                mahimahi_sim::Behavior::Equivocator
            );
        }
        let large: Vec<&Scenario> = scenarios
            .iter()
            .filter(|s| s.name.contains("@n50"))
            .collect();
        assert_eq!(large.len(), 4 * 4);
        for scenario in &large {
            assert_eq!(scenario.config.committee_size, LARGE_COMMITTEE);
            assert_eq!(
                scenario.config.behavior_of(LARGE_COMMITTEE - 1),
                mahimahi_sim::Behavior::Adaptive
            );
            // The committee-scale row runs on the geo-jitter WAN model.
            assert_eq!(scenario.config.latency, LatencyChoice::aws_wan());
        }
        // Seeds are unique: every cell is independently reproducible.
        let mut seeds: Vec<u64> = scenarios.iter().map(|s| s.config.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), scenarios.len());
    }

    #[test]
    fn smoke_matrix_is_a_covering_subset() {
        let smoke = smoke_matrix();
        assert_eq!(smoke.len(), 12);
        let full: Vec<String> = full_matrix().iter().map(|s| s.name.clone()).collect();
        for scenario in &smoke {
            assert!(
                full.contains(&scenario.name),
                "{} not in full",
                scenario.name
            );
        }
        for behavior in attack_behaviors() {
            assert!(smoke.iter().any(|s| s.name.contains(behavior.label())));
        }
        assert!(smoke.iter().any(|s| s.config.committee_size == 10));
        assert!(smoke
            .iter()
            .any(|s| s.config.committee_size == LARGE_COMMITTEE));
    }

    #[test]
    fn results_render_as_json() {
        let result = ScenarioResult {
            name: "Mahi-Mahi-5 (2L)/fork-spammer/none".into(),
            seed: 7,
            committee_size: 4,
            committed_transactions: 100,
            committed_slots: 10,
            skipped_slots: 2,
            highest_round: 40,
            latency_mean_s: 0.5,
            latency_p99_s: 0.9,
            verify_p99_s: 0.002,
            resequence_p99_s: 0.001,
            execute_p99_s: 0.0,
            lag_bound_rounds: 38,
            p99_bound_s: 2.5,
            culprits: vec![vec![3], vec![3], vec![3], Vec::new()],
            oracles: vec![
                OracleOutcome {
                    oracle: "liveness",
                    violation: None,
                },
                OracleOutcome {
                    oracle: "commit-agreement",
                    violation: Some("validators 0 and \"1\" diverged".into()),
                },
            ],
        };
        assert!(!result.pass());
        assert_eq!(result.failures().len(), 1);
        let json = result.to_json();
        assert!(json.contains("\"pass\":false"));
        assert!(json.contains("\"verify_p99_s\":0.002000"));
        assert!(json.contains("\"resequence_p99_s\":0.001000"));
        assert!(json.contains("\"execute_p99_s\":0.000000"));
        assert!(json.contains("\\\"1\\\""));
        assert!(json.contains("\"culprits\":[[3],[3],[3],[]]"));
        let report = report_json(&[result]);
        assert!(report.contains("\"total\": 1"));
        assert!(report.contains("\"failed\": 1"));
    }
}
