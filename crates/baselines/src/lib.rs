//! Baseline committers from the Mahi-Mahi evaluation (Section 5).
//!
//! The paper compares Mahi-Mahi against two state-of-the-art asynchronous
//! DAG protocols:
//!
//! - [`CordialMinersCommitter`] — Cordial Miners (Keidar et al., DISC 2023):
//!   an *uncertified* DAG like Mahi-Mahi, but committing at most one leader
//!   every `w` rounds (non-overlapping waves) and lacking the direct skip
//!   rule, so crashed leaders stall the sequence until a later wave's leader
//!   commits. The Mahi-Mahi authors provide the first implementation of
//!   Cordial Miners; this module is a reproduction of that reproduction.
//! - [`TuskCommitter`] — Tusk (Danezis et al., EuroSys 2022): a *certified*
//!   DAG protocol. Every DAG round runs consistent broadcast (three message
//!   delays — [`ProtocolCommitter::delays_per_round`] returns 3), waves span
//!   three certified rounds, and a leader commits with `f + 1` direct votes.
//!
//! Both implement [`ProtocolCommitter`], so the simulator and sequencer
//! drive them exactly like Mahi-Mahi.

mod cordial_miners;
mod tusk;

pub use cordial_miners::{CordialMinersCommitter, CordialMinersOptions};
pub use tusk::TuskCommitter;

pub use mahimahi_core::ProtocolCommitter;
