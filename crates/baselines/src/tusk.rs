//! Tusk: certified-DAG consensus (Danezis et al., EuroSys 2022).
//!
//! Tusk runs over a DAG whose every vertex is *certified* by consistent
//! broadcast before it can be referenced — three message delays per DAG
//! round ([`ProtocolCommitter::delays_per_round`] = 3) plus the CPU cost of
//! verifying `2f + 1`-signature certificates (modeled by the simulator).
//! In exchange, equivocations never enter the DAG and the commit rule is
//! simple:
//!
//! - waves span **three certified rounds** `r, r+1, r+2`;
//! - the common coin revealed in round `r+2` retroactively elects the wave's
//!   leader block in round `r`;
//! - the leader commits **directly** if `f + 1` round-`r+1` blocks reference
//!   it (a validity quorum suffices on a certified DAG);
//! - earlier undecided leaders commit **recursively** if the committed
//!   anchor leader's causal history reaches them, and are skipped otherwise.
//!
//! Nine message delays per commit (3 rounds × 3 delays) — the latency the
//! paper's Figure 3 shows for Tusk.
//!
//! Our substrate stores uncertified blocks; the certification step is
//! modeled by (a) the simulator charging 3 delays and the verification cost
//! per round, and (b) Byzantine equivocation strategies being disabled for
//! Tusk runs (a certified DAG rejects them). This substitution is recorded
//! in DESIGN.md §3.

use mahimahi_core::{CoinElector, LeaderElector, LeaderStatus, ProtocolCommitter};
use mahimahi_dag::BlockStore;
use mahimahi_types::{Block, Committee, Round, Slot};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Rounds per Tusk wave (fixed by the protocol).
pub const TUSK_WAVE_LENGTH: u64 = 3;

/// The Tusk committer.
pub struct TuskCommitter {
    committee: Committee,
    elector: Arc<dyn LeaderElector>,
    /// Memoized decided waves (decisions are stable; see `mahimahi-core`).
    decided: Mutex<HashMap<u64, LeaderStatus>>,
}

impl TuskCommitter {
    /// Creates a committer electing leaders through the common coin.
    pub fn new(committee: Committee) -> Self {
        Self::with_elector(committee, Arc::new(CoinElector::new()))
    }

    /// Creates a committer with a custom election strategy (tests).
    pub fn with_elector(committee: Committee, elector: Arc<dyn LeaderElector>) -> Self {
        TuskCommitter {
            committee,
            elector,
            decided: Mutex::new(HashMap::new()),
        }
    }

    fn propose_round(&self, wave: u64) -> Round {
        wave * TUSK_WAVE_LENGTH + 1
    }

    /// The round whose blocks reveal the coin for `wave` (its last round).
    fn reveal_round(&self, wave: u64) -> Round {
        self.propose_round(wave) + TUSK_WAVE_LENGTH - 1
    }

    /// Direct rule: `f + 1` distinct round-`r+1` authors reference the
    /// leader block directly.
    fn try_direct_commit(&self, store: &BlockStore, wave: u64, slot: Slot) -> Option<Arc<Block>> {
        let support_round = self.propose_round(wave) + 1;
        for candidate in store.blocks_in_slot(slot) {
            let reference = candidate.reference();
            let supporters =
                store.authorities_with(support_round, |block| block.parents().contains(&reference));
            if supporters.len() >= self.committee.validity_threshold() {
                return Some(Arc::clone(candidate));
            }
        }
        None
    }

    /// Recursive rule: committed iff the anchor's causal history reaches the
    /// leader block.
    fn try_indirect(&self, store: &BlockStore, slot: Slot, anchor: &Block) -> LeaderStatus {
        let anchor_ref = anchor.reference();
        for candidate in store.blocks_in_slot(slot) {
            if store.is_link(&candidate.reference(), &anchor_ref) {
                return LeaderStatus::Commit(Arc::clone(candidate));
            }
        }
        LeaderStatus::Skip(slot)
    }
}

impl ProtocolCommitter for TuskCommitter {
    fn committee(&self) -> &Committee {
        &self.committee
    }

    fn name(&self) -> &'static str {
        "Tusk"
    }

    fn delays_per_round(&self) -> u64 {
        3 // consistent broadcast per certified round
    }

    fn try_decide(&self, store: &BlockStore, from_round: Round) -> Vec<LeaderStatus> {
        let highest = store.highest_round().saturating_sub(TUSK_WAVE_LENGTH - 1);
        let from_round = from_round.max(1);
        if highest < from_round {
            return Vec::new();
        }
        let first_wave = (from_round - 1).div_ceil(TUSK_WAVE_LENGTH);
        let last_wave = (highest - 1) / TUSK_WAVE_LENGTH;
        if self.propose_round(first_wave) > highest {
            return Vec::new();
        }

        let mut decided = self.decided.lock();
        let mut statuses: HashMap<u64, LeaderStatus> = HashMap::new();
        for wave in (first_wave..=last_wave).rev() {
            let round = self.propose_round(wave);
            if let Some(status) = decided.get(&wave) {
                statuses.insert(wave, status.clone());
                continue;
            }
            let Some(slot) =
                self.elector
                    .elect_slot(&self.committee, store, self.reveal_round(wave), round, 0)
            else {
                statuses.insert(wave, LeaderStatus::Undecided { round, offset: 0 });
                continue;
            };
            let status = if let Some(block) = self.try_direct_commit(store, wave, slot) {
                LeaderStatus::Commit(block)
            } else {
                let anchor = ((wave + 1)..=last_wave)
                    .map(|later| statuses.get(&later).expect("later waves decided first"))
                    .find(|status| !matches!(status, LeaderStatus::Skip(_)));
                match anchor {
                    Some(LeaderStatus::Commit(anchor_block)) => {
                        let anchor_block = Arc::clone(anchor_block);
                        self.try_indirect(store, slot, &anchor_block)
                    }
                    _ => LeaderStatus::Undecided { round, offset: 0 },
                }
            };
            if status.is_decided() {
                decided.insert(wave, status.clone());
            }
            statuses.insert(wave, status);
        }
        (first_wave..=last_wave)
            .map(|wave| statuses.remove(&wave).expect("every wave decided"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_core::{CommitSequencer, FixedElector};
    use mahimahi_dag::DagBuilder;
    use mahimahi_types::{AuthorityIndex, TestCommittee};

    #[test]
    fn commits_one_leader_every_three_rounds_on_full_dag() {
        let setup = TestCommittee::new(4, 19);
        let committer = TuskCommitter::new(setup.committee().clone());
        let mut dag = DagBuilder::new(setup);
        dag.add_full_rounds(12);
        let statuses = committer.try_decide(dag.store(), 1);
        // Waves propose at 1, 4, 7, 10; all decidable (reveal ≤ 12).
        assert_eq!(statuses.len(), 4);
        assert_eq!(
            statuses.iter().map(LeaderStatus::round).collect::<Vec<_>>(),
            vec![1, 4, 7, 10]
        );
        for status in &statuses {
            assert!(matches!(status, LeaderStatus::Commit(_)), "{status}");
        }
    }

    #[test]
    fn direct_commit_needs_only_validity_quorum() {
        let setup = TestCommittee::new(4, 19);
        let committee = setup.committee().clone();
        let mut dag = DagBuilder::new(setup);
        let r1 = dag.add_full_round();
        // Round 2: only v0 and v1 reference v3's round-1 block.
        use mahimahi_dag::BlockSpec;
        dag.add_round(vec![
            BlockSpec::new(0).with_parent_authors(vec![1, 3]),
            BlockSpec::new(1).with_parent_authors(vec![0, 3]),
            BlockSpec::new(2).with_parent_authors(vec![0, 1]),
            BlockSpec::new(3).with_parent_authors(vec![0, 1]),
        ]);
        dag.add_full_round();
        let elector = FixedElector::new().assign(1, 0, 3);
        let committer = TuskCommitter::with_elector(committee, Arc::new(elector));
        let statuses = committer.try_decide(dag.store(), 1);
        // v3@1 has f + 1 = 2 direct supporters (v0, v1... plus v3 itself):
        // commit.
        assert!(matches!(&statuses[0], LeaderStatus::Commit(block)
            if block.reference() == r1[3]));
    }

    #[test]
    fn crashed_leader_skipped_only_through_later_anchor() {
        let setup = TestCommittee::new(4, 19);
        let committee = setup.committee().clone();
        let mut dag = DagBuilder::new(setup);
        dag.add_full_round();
        for _ in 0..4 {
            dag.add_round_producers(&[0, 1, 2]);
        }
        let elector = FixedElector::new().assign(1, 0, 3).assign(4, 0, 1);
        let committer = TuskCommitter::with_elector(committee, Arc::new(elector));
        // Rounds 1..5: wave 0 (reveal 3) decidable, wave 1 (reveal 6) not.
        let statuses = committer.try_decide(dag.store(), 1);
        assert_eq!(statuses.len(), 1);
        // v3 produced a round-1 block (it crashed after round 1), but only
        // its own round-2 block... none: v3 has no round-2 block, so support
        // is counted from v0, v1, v2's round-2 blocks, all of which
        // reference v3@1 (full round): direct commit actually succeeds.
        assert!(matches!(statuses[0], LeaderStatus::Commit(_)));

        // Crash v3 from round 1 instead: rebuild.
        let setup = TestCommittee::new(4, 19);
        let committee = setup.committee().clone();
        let mut dag = DagBuilder::new(setup);
        for _ in 0..7 {
            dag.add_round_producers(&[0, 1, 2]);
        }
        let elector = FixedElector::new().assign(1, 0, 3).assign(4, 0, 1);
        let committer = TuskCommitter::with_elector(committee, Arc::new(elector));
        let statuses = committer.try_decide(dag.store(), 1);
        // Wave 0's slot (v3@1) is empty: no direct commit possible; wave 1
        // (v1@4) commits directly; the recursive rule then skips wave 0.
        assert_eq!(statuses.len(), 2);
        assert!(matches!(statuses[0], LeaderStatus::Skip(slot)
            if slot == Slot::new(1, AuthorityIndex(3))));
        assert!(matches!(statuses[1], LeaderStatus::Commit(_)));
    }

    #[test]
    fn sequencer_drives_tusk() {
        let setup = TestCommittee::new(4, 19);
        let mut sequencer = CommitSequencer::new(TuskCommitter::new(setup.committee().clone()));
        let mut dag = DagBuilder::new(setup);
        dag.add_full_rounds(12);
        let decisions = sequencer.try_commit(dag.store());
        assert_eq!(decisions.len(), 4);
        assert_eq!(sequencer.next_round(), 10);
    }

    #[test]
    fn reports_three_delays_per_round() {
        let setup = TestCommittee::new(4, 19);
        let committer = TuskCommitter::new(setup.committee().clone());
        assert_eq!(committer.delays_per_round(), 3);
        assert_eq!(committer.name(), "Tusk");
    }

    #[test]
    fn indirect_commit_through_reachability() {
        // A leader with fewer than f + 1 direct supporters still commits if
        // a later committed leader reaches it.
        let setup = TestCommittee::new(4, 19);
        let committee = setup.committee().clone();
        let mut dag = DagBuilder::new(setup);
        let r1 = dag.add_full_round();
        use mahimahi_dag::BlockSpec;
        // Round 2: nobody but v3 references v3@1 (support = 1 < f + 1 = 2).
        dag.add_round(vec![
            BlockSpec::new(0).with_parent_authors(vec![1, 2]),
            BlockSpec::new(1).with_parent_authors(vec![0, 2]),
            BlockSpec::new(2).with_parent_authors(vec![0, 1]),
            BlockSpec::new(3).with_parent_authors(vec![0, 1]),
        ]);
        // Rounds 3+: full references — later leaders reach v3@1 through
        // v3's own chain.
        dag.add_full_rounds(5);
        let elector = FixedElector::new().assign(1, 0, 3).assign(4, 0, 0);
        let committer = TuskCommitter::with_elector(committee, Arc::new(elector));
        let statuses = committer.try_decide(dag.store(), 1);
        assert!(statuses.len() >= 2);
        // Wave 1 commits directly; wave 0's leader commits recursively.
        assert!(
            matches!(&statuses[0], LeaderStatus::Commit(block)
            if block.reference() == r1[3]),
            "{}",
            statuses[0]
        );
    }
}
