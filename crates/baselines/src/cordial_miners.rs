//! Cordial Miners: uncertified-DAG consensus with one leader per wave.
//!
//! Mahi-Mahi characterizes Cordial Miners as follows (Sections 1, 2.2, 6):
//! it operates over the same uncertified DAG and commits a leader with five
//! message delays, but (1) elects only **one leader every `w` rounds**
//! (waves do not overlap), so non-leader transactions wait for the wave
//! boundary; and (2) decides skips only **through the causal history of a
//! later committed leader** (the recursive rule), not directly from
//! `2f + 1` non-votes — which is why Mahi-Mahi bypasses crashed leaders
//! roughly two rounds earlier (Section 5.3).
//!
//! The commit mechanics shared with Mahi-Mahi (votes by first-encounter
//! DFS, implicit certificates) reuse the same `mahimahi-dag` primitives —
//! both protocols interpret the DAG identically; they differ in the commit
//! rule, exactly as in the paper.

use mahimahi_core::{CoinElector, LeaderElector, LeaderStatus, ProtocolCommitter};
use mahimahi_dag::BlockStore;
use mahimahi_types::{Block, Committee, Round, Slot};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Parameters for Cordial Miners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CordialMinersOptions {
    /// Rounds per (non-overlapping) wave. The paper evaluates 5.
    pub wave_length: u64,
}

impl Default for CordialMinersOptions {
    fn default() -> Self {
        CordialMinersOptions { wave_length: 5 }
    }
}

/// The Cordial Miners committer.
pub struct CordialMinersCommitter {
    committee: Committee,
    options: CordialMinersOptions,
    elector: Arc<dyn LeaderElector>,
    /// Memoized decided waves (decisions are stable; see `mahimahi-core`).
    decided: Mutex<HashMap<u64, LeaderStatus>>,
}

impl CordialMinersCommitter {
    /// Creates a committer electing leaders through the common coin.
    ///
    /// # Panics
    ///
    /// Panics if `wave_length < 3`.
    pub fn new(committee: Committee, options: CordialMinersOptions) -> Self {
        Self::with_elector(committee, options, Arc::new(CoinElector::new()))
    }

    /// Creates a committer with a custom election strategy (tests).
    ///
    /// # Panics
    ///
    /// Panics if `wave_length < 3`.
    pub fn with_elector(
        committee: Committee,
        options: CordialMinersOptions,
        elector: Arc<dyn LeaderElector>,
    ) -> Self {
        assert!(options.wave_length >= 3, "waves need at least 3 rounds");
        CordialMinersCommitter {
            committee,
            options,
            elector,
            decided: Mutex::new(HashMap::new()),
        }
    }

    /// The configured options.
    pub fn options(&self) -> CordialMinersOptions {
        self.options
    }

    /// Propose round of wave `w` (waves start at round 1).
    fn propose_round(&self, wave: u64) -> Round {
        wave * self.options.wave_length + 1
    }

    fn certify_round(&self, wave: u64) -> Round {
        self.propose_round(wave) + self.options.wave_length - 1
    }

    /// Direct rule: commit the slot candidate holding `2f + 1` certificates
    /// (identical mechanics to Mahi-Mahi, at wave granularity). There is
    /// deliberately no direct skip.
    fn try_direct_commit(&self, store: &BlockStore, wave: u64, slot: Slot) -> Option<Arc<Block>> {
        let certify_round = self.certify_round(wave);
        for candidate in store.blocks_in_slot(slot) {
            let certifiers =
                store.authorities_with(certify_round, |block| store.is_cert(block, candidate));
            if certifiers.len() >= self.committee.quorum_threshold() {
                return Some(Arc::clone(candidate));
            }
        }
        None
    }

    /// Recursive rule: a wave leader is committed iff some candidate has a
    /// certificate inside the committed anchor leader's causal history,
    /// otherwise skipped.
    fn try_indirect(
        &self,
        store: &BlockStore,
        wave: u64,
        slot: Slot,
        anchor: &Block,
    ) -> LeaderStatus {
        let certify_round = self.certify_round(wave);
        let anchor_ref = anchor.reference();
        for candidate in store.blocks_in_slot(slot) {
            let has_certified_link = store.blocks_at_round(certify_round).iter().any(|block| {
                store.is_cert(block, candidate) && store.is_link(&block.reference(), &anchor_ref)
            });
            if has_certified_link {
                return LeaderStatus::Commit(Arc::clone(candidate));
            }
        }
        LeaderStatus::Skip(slot)
    }
}

impl ProtocolCommitter for CordialMinersCommitter {
    fn committee(&self) -> &Committee {
        &self.committee
    }

    fn name(&self) -> &'static str {
        "Cordial-Miners"
    }

    fn try_decide(&self, store: &BlockStore, from_round: Round) -> Vec<LeaderStatus> {
        let wave_length = self.options.wave_length;
        let highest = store.highest_round().saturating_sub(wave_length - 1);
        let from_round = from_round.max(1);
        if highest < from_round {
            return Vec::new();
        }
        let first_wave = (from_round - 1).div_ceil(wave_length);
        let last_wave = (highest - 1) / wave_length;
        if self.propose_round(first_wave) > highest {
            return Vec::new();
        }

        // Decide from the highest wave down so the recursive rule can use
        // later statuses as anchors. Decided waves come from the memo.
        let mut decided = self.decided.lock();
        let mut statuses: HashMap<u64, LeaderStatus> = HashMap::new();
        for wave in (first_wave..=last_wave).rev() {
            let round = self.propose_round(wave);
            if let Some(status) = decided.get(&wave) {
                statuses.insert(wave, status.clone());
                continue;
            }
            let Some(slot) =
                self.elector
                    .elect_slot(&self.committee, store, self.certify_round(wave), round, 0)
            else {
                statuses.insert(wave, LeaderStatus::Undecided { round, offset: 0 });
                continue;
            };
            let status = if let Some(block) = self.try_direct_commit(store, wave, slot) {
                LeaderStatus::Commit(block)
            } else {
                // Find the anchor: the earliest later wave not skipped.
                let anchor = ((wave + 1)..=last_wave)
                    .map(|later| statuses.get(&later).expect("later waves decided first"))
                    .find(|status| !matches!(status, LeaderStatus::Skip(_)));
                match anchor {
                    Some(LeaderStatus::Commit(anchor_block)) => {
                        let anchor_block = Arc::clone(anchor_block);
                        self.try_indirect(store, wave, slot, &anchor_block)
                    }
                    _ => LeaderStatus::Undecided { round, offset: 0 },
                }
            };
            if status.is_decided() {
                decided.insert(wave, status.clone());
            }
            statuses.insert(wave, status);
        }
        (first_wave..=last_wave)
            .map(|wave| statuses.remove(&wave).expect("every wave decided"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_core::CommitSequencer;
    use mahimahi_dag::DagBuilder;
    use mahimahi_types::TestCommittee;

    fn committer(setup: &TestCommittee) -> CordialMinersCommitter {
        CordialMinersCommitter::new(setup.committee().clone(), CordialMinersOptions::default())
    }

    #[test]
    fn commits_one_leader_per_wave_on_full_dag() {
        let setup = TestCommittee::new(4, 17);
        let committer = committer(&setup);
        let mut dag = DagBuilder::new(setup);
        dag.add_full_rounds(15);
        let statuses = committer.try_decide(dag.store(), 1);
        // Waves propose at rounds 1, 6, 11; all decidable (certify ≤ 15).
        assert_eq!(statuses.len(), 3);
        assert_eq!(
            statuses.iter().map(LeaderStatus::round).collect::<Vec<_>>(),
            vec![1, 6, 11]
        );
        for status in &statuses {
            assert!(matches!(status, LeaderStatus::Commit(_)), "{status}");
        }
    }

    #[test]
    fn no_direct_skip_crashed_leader_stays_undecided_until_next_wave() {
        let setup = TestCommittee::new(4, 17);
        let committee = setup.committee().clone();
        let mut dag = DagBuilder::new(setup.clone());
        // v3 is crashed from the start: slot (1, v3) stays empty forever.
        for _ in 0..8 {
            dag.add_round_producers(&[0, 1, 2]);
        }
        // Pin the wave-0 leader to the crashed v3 and wave 1 to a live one.
        let elector = mahimahi_core::FixedElector::new()
            .assign(1, 0, 3)
            .assign(6, 0, 0);
        let committer = CordialMinersCommitter::with_elector(
            committee,
            CordialMinersOptions::default(),
            Arc::new(elector),
        );
        // DAG up to round 8: wave 0 decidable (certify 5), wave 1 not
        // (certify 10 missing). Mahi-Mahi would skip v3 directly; Cordial
        // Miners cannot — it must wait for wave 1.
        let statuses = committer.try_decide(dag.store(), 1);
        assert_eq!(statuses.len(), 1);
        assert!(
            matches!(statuses[0], LeaderStatus::Undecided { round: 1, .. }),
            "{}",
            statuses[0]
        );
        // Extend to round 10: wave 1 commits, wave 0 is skipped recursively.
        dag.add_round_producers(&[0, 1, 2]);
        dag.add_round_producers(&[0, 1, 2]);
        let statuses = committer.try_decide(dag.store(), 1);
        assert_eq!(statuses.len(), 2);
        assert!(matches!(statuses[0], LeaderStatus::Skip(slot)
            if slot == Slot::new(1, mahimahi_types::AuthorityIndex(3))));
        assert!(matches!(&statuses[1], LeaderStatus::Commit(block)
            if block.author().0 == 0));
    }

    #[test]
    fn sequencer_drives_cordial_miners() {
        let setup = TestCommittee::new(4, 17);
        let mut sequencer = CommitSequencer::new(committer(&setup));
        let mut dag = DagBuilder::new(setup);
        dag.add_full_rounds(15);
        let decisions = sequencer.try_commit(dag.store());
        assert_eq!(decisions.len(), 3);
        // All blocks up to round 11 are linearized exactly once.
        let emitted = sequencer.emitted_blocks();
        assert_eq!(
            emitted,
            4 /* genesis */ + 11 * 4 - 3 /* above leader */
        );
    }

    #[test]
    fn delays_per_round_is_one() {
        let setup = TestCommittee::new(4, 17);
        assert_eq!(committer(&setup).delays_per_round(), 1);
        assert_eq!(committer(&setup).name(), "Cordial-Miners");
    }

    #[test]
    fn equivocating_leader_commits_at_most_one_block() {
        use mahimahi_dag::BlockSpec;
        let setup = TestCommittee::new(4, 17);
        let committee = setup.committee().clone();
        let mut dag = DagBuilder::new(setup);
        // Round 1: v1 equivocates.
        let r1 = dag.add_round(vec![
            BlockSpec::new(0),
            BlockSpec::new(1).with_tag(1),
            BlockSpec::new(1).with_tag(2),
            BlockSpec::new(2),
            BlockSpec::new(3),
        ]);
        let b2 = r1[2];
        // Everyone builds on the second equivocation.
        for _ in 0..7 {
            let refs: Vec<_> = (0..4u32)
                .map(|a| {
                    let mut spec = BlockSpec::new(a);
                    if dag.current_round() == 1 {
                        let parents: Vec<_> = [b2, r1[0], r1[3], r1[4]].into_iter().collect();
                        spec = spec.with_explicit_parents(parents);
                    }
                    spec
                })
                .collect();
            dag.add_round(refs);
        }
        let elector = mahimahi_core::FixedElector::new().assign(1, 0, 1);
        let committer = CordialMinersCommitter::with_elector(
            committee,
            CordialMinersOptions::default(),
            Arc::new(elector),
        );
        let statuses = committer.try_decide(dag.store(), 1);
        assert!(matches!(&statuses[0], LeaderStatus::Commit(block)
            if block.reference() == b2));
    }
}
