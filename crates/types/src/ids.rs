//! Identifiers for positions in the DAG.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Implements `Debug` by forwarding to `Display` (log-friendly identifiers).
macro_rules! fmt_debug_as_display {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Display::fmt(self, f)
        }
    };
}

/// A logical round number of the DAG (the paper's `R`).
///
/// Round 0 holds the genesis blocks; honest validators propose exactly one
/// block per round from round 1 onward.
pub type Round = u64;

/// The zero-based index of a validator within a [`Committee`].
///
/// The paper writes validators as `v0, v1, …`; an `AuthorityIndex` is that
/// subscript. Indexes are compact so that per-authority state can live in
/// vectors.
///
/// [`Committee`]: crate::committee::Committee
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct AuthorityIndex(pub u32);

impl AuthorityIndex {
    /// Validated construction: the index must fall inside a committee of
    /// `committee_size` authorities.
    ///
    /// Wire-facing ingestion paths use this instead of the unchecked `From`
    /// conversions so an out-of-committee id is rejected at the boundary,
    /// before it can index any committee-dense structure.
    ///
    /// # Example
    ///
    /// ```
    /// use mahimahi_types::AuthorityIndex;
    ///
    /// assert_eq!(AuthorityIndex::checked(3, 4), Ok(AuthorityIndex(3)));
    /// assert!(AuthorityIndex::checked(4, 4).is_err());
    /// ```
    pub fn checked(
        index: u64,
        committee_size: usize,
    ) -> Result<Self, crate::dense::InvalidAuthority> {
        if index < committee_size as u64 {
            Ok(AuthorityIndex(index as u32))
        } else {
            Err(crate::dense::InvalidAuthority {
                index,
                committee_size,
            })
        }
    }

    /// Returns the index as a `usize` for vector indexing.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the index as a `u64` (coin arithmetic).
    pub fn as_u64(self) -> u64 {
        self.0 as u64
    }
}

impl From<u32> for AuthorityIndex {
    fn from(value: u32) -> Self {
        AuthorityIndex(value)
    }
}

impl From<usize> for AuthorityIndex {
    fn from(value: usize) -> Self {
        AuthorityIndex(u32::try_from(value).expect("authority index fits in u32"))
    }
}

impl fmt::Display for AuthorityIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for AuthorityIndex {
    fmt_debug_as_display!();
}

/// A leader slot: the `(validator, round)` tuple of Section 3.1.
///
/// A slot may be empty (the validator never produced a block), contain one
/// block, or — for Byzantine validators — several equivocating blocks. The
/// decision rules classify slots as commit or skip.
///
/// # Example
///
/// ```
/// use mahimahi_types::{AuthorityIndex, Slot};
///
/// let slot = Slot::new(4, AuthorityIndex(2));
/// assert_eq!(slot.to_string(), "S(v2,4)");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Slot {
    /// The round of the slot.
    pub round: Round,
    /// The validator owning the slot.
    pub authority: AuthorityIndex,
}

impl Slot {
    /// Creates a slot for `authority` at `round`.
    pub fn new(round: Round, authority: AuthorityIndex) -> Self {
        Slot { round, authority }
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S({},{})", self.authority, self.round)
    }
}

impl fmt::Debug for Slot {
    fmt_debug_as_display!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authority_display() {
        assert_eq!(AuthorityIndex(3).to_string(), "v3");
        assert_eq!(format!("{:?}", AuthorityIndex(3)), "v3");
    }

    #[test]
    fn authority_conversions() {
        let authority = AuthorityIndex::from(5usize);
        assert_eq!(authority.as_usize(), 5);
        assert_eq!(authority.as_u64(), 5);
        assert_eq!(AuthorityIndex::from(5u32), authority);
    }

    #[test]
    fn slot_ordering_is_round_major() {
        let early = Slot::new(1, AuthorityIndex(3));
        let late = Slot::new(2, AuthorityIndex(0));
        assert!(early < late);
    }

    #[test]
    fn slot_display() {
        assert_eq!(Slot::new(7, AuthorityIndex(1)).to_string(), "S(v1,7)");
    }
}
