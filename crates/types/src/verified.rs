//! Verification witnesses.
//!
//! The admission pipeline splits input handling into a stateless *verify*
//! stage (signatures, coin-share proofs, structural checks — embarrassingly
//! parallel) and a sequential *apply* stage (the deterministic engine core).
//! [`Verified`] is the type-level receipt passed between the two: holding a
//! `Verified<T>` means the expensive checks on `T` already ran and passed,
//! so the apply stage can skip them.
//!
//! The wrapper is deliberately minimal: it adds no runtime state, and the
//! only way to construct one is [`Verified::vouch`], which marks the exact
//! places in the codebase where a verification obligation is discharged.

use std::fmt;
use std::ops::Deref;

/// A witness that `T` passed the verify stage.
///
/// # Example
///
/// ```
/// use mahimahi_types::Verified;
///
/// // ... after checking the value ...
/// let witness = Verified::vouch(42u64);
/// assert_eq!(*witness, 42);
/// assert_eq!(witness.into_inner(), 42);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Verified<T>(T);

impl<T> Verified<T> {
    /// Wraps a value the caller has just verified.
    ///
    /// This is a *promise*, not a check: call it only at a point where the
    /// relevant validation (signature, proof, structural) has succeeded.
    /// Keeping the constructor explicit — rather than a blanket `From` —
    /// makes every discharge site greppable.
    pub fn vouch(value: T) -> Self {
        Verified(value)
    }

    /// Borrows the verified value.
    pub fn get(&self) -> &T {
        &self.0
    }

    /// Unwraps the verified value.
    pub fn into_inner(self) -> T {
        self.0
    }

    /// Maps the verified value, carrying the witness along.
    ///
    /// Sound only when `f` preserves what was verified (e.g. projecting a
    /// field out of a verified message).
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Verified<U> {
        Verified(f(self.0))
    }
}

impl<T> Deref for Verified<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for Verified<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Verified(")?;
        self.0.fmt(f)?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witness_is_transparent() {
        let witness = Verified::vouch(String::from("checked"));
        assert_eq!(witness.get(), "checked");
        assert_eq!(witness.len(), 7); // via Deref
        assert_eq!(witness.map(|s| s.len()).into_inner(), 7);
    }

    #[test]
    fn debug_marks_the_witness() {
        let repr = format!("{:?}", Verified::vouch(5u8));
        assert_eq!(repr, "Verified(5)");
    }
}
