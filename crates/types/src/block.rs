//! Blocks: the single message type of the protocol.
//!
//! Section 2.3 of the paper specifies that a block carries (1) the author
//! and a signature, (2) a round number, (3) transactions, (4) at least
//! `2f + 1` distinct hashes of valid blocks from the previous round (plus
//! possibly older ones), and (5) a share of the global perfect coin.
//!
//! Parents are ordered and the order is protocol-relevant: the vote
//! interpretation (`IsVote`, Algorithm 3) performs a depth-first traversal
//! following the reference order, starting from the author's own previous
//! block.

use mahimahi_crypto::blake2b::{blake2b_256, Blake2b};
use mahimahi_crypto::coin::{CoinSecret, CoinShare};
use mahimahi_crypto::schnorr::{Keypair, Signature};
use mahimahi_crypto::Digest;
use serde::{Deserialize, Serialize};
use std::error::Error as StdError;
use std::fmt;
use std::sync::Arc;

use crate::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use crate::committee::Committee;
use crate::ids::{AuthorityIndex, Round, Slot};
use crate::transaction::Transaction;

const DIGEST_DOMAIN: &[u8] = b"mahimahi-block-v1";

/// A hash reference to a block: `(author, round, digest)`.
///
/// The DAG is connected exclusively through these references.
///
/// # Example
///
/// ```
/// use mahimahi_types::{Block, AuthorityIndex};
///
/// let genesis = Block::genesis(AuthorityIndex(0));
/// let reference = genesis.reference();
/// assert_eq!(reference.round, 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockRef {
    /// The round of the referenced block.
    pub round: Round,
    /// The author of the referenced block.
    pub author: AuthorityIndex,
    /// The content digest of the referenced block.
    pub digest: Digest,
}

impl BlockRef {
    /// The slot this reference occupies.
    pub fn slot(&self) -> Slot {
        Slot::new(self.round, self.author)
    }
}

impl fmt::Display for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex = self.digest.to_string();
        write!(f, "B({},{},{})", self.author, self.round, &hex[..8])
    }
}

impl fmt::Debug for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl Encode for BlockRef {
    fn encode(&self, encoder: &mut Encoder) {
        encoder.put_u64(self.round);
        encoder.put_u32(self.author.0);
        encoder.put_bytes(self.digest.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        8 + 4 + Digest::LENGTH
    }
}

impl Decode for BlockRef {
    fn decode(decoder: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let round = decoder.get_u64()?;
        let author = AuthorityIndex(decoder.get_u32()?);
        let digest = Digest::new(decoder.get_array::<32>()?);
        Ok(BlockRef {
            round,
            author,
            digest,
        })
    }
}

/// A signed DAG vertex.
///
/// Blocks are immutable once constructed; they are shared widely through
/// [`Arc`] (see [`Block::into_arc`]). The content digest is computed at
/// construction and cached in [`Block::reference`].
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    author: AuthorityIndex,
    round: Round,
    parents: Vec<BlockRef>,
    transactions: Vec<Transaction>,
    coin_share: Option<CoinShare>,
    signature: Signature,
    /// Cached `(round, author, digest)`; recomputed on decode.
    reference: BlockRef,
}

impl Block {
    /// The deterministic genesis block of `authority` (round 0).
    ///
    /// Genesis blocks carry no transactions, no parents, and no coin share;
    /// they bootstrap parent quorums for round 1.
    pub fn genesis(authority: AuthorityIndex) -> Block {
        // Genesis is unsigned (its bytes are fixed by convention and
        // validated structurally); a fixed dummy signature keeps the type
        // uniform.
        let signature = Keypair::from_seed(u64::MAX).sign(b"mahimahi-genesis");
        let mut block = Block {
            author: authority,
            round: 0,
            parents: Vec::new(),
            transactions: Vec::new(),
            coin_share: None,
            signature,
            reference: BlockRef {
                round: 0,
                author: authority,
                digest: Digest::ZERO,
            },
        };
        block.reference.digest = block.compute_digest();
        block
    }

    /// All genesis blocks for a committee of `committee_size`.
    pub fn all_genesis(committee_size: usize) -> Vec<Block> {
        (0..committee_size)
            .map(|index| Block::genesis(AuthorityIndex::from(index)))
            .collect()
    }

    /// The block author.
    pub fn author(&self) -> AuthorityIndex {
        self.author
    }

    /// The block round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The slot `(round, author)` this block occupies.
    pub fn slot(&self) -> Slot {
        Slot::new(self.round, self.author)
    }

    /// Ordered parent references (own previous block first).
    pub fn parents(&self) -> &[BlockRef] {
        &self.parents
    }

    /// The transactions carried by this block.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// The coin share for this block's round (absent only in genesis).
    pub fn coin_share(&self) -> Option<&CoinShare> {
        self.coin_share.as_ref()
    }

    /// The author's signature over the content digest.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The cached `(round, author, digest)` reference.
    pub fn reference(&self) -> BlockRef {
        self.reference
    }

    /// The content digest.
    pub fn digest(&self) -> Digest {
        self.reference.digest
    }

    /// Wraps the block for cheap sharing.
    pub fn into_arc(self) -> Arc<Block> {
        Arc::new(self)
    }

    fn signing_message(digest: &Digest) -> Vec<u8> {
        let mut message = Vec::with_capacity(DIGEST_DOMAIN.len() + Digest::LENGTH);
        message.extend_from_slice(DIGEST_DOMAIN);
        message.extend_from_slice(digest.as_bytes());
        message
    }

    /// The exact bytes the author signed: domain separator ‖ content
    /// digest. Batch verifiers pair this with [`Block::signature`] and the
    /// author's public key.
    pub fn signed_bytes(&self) -> Vec<u8> {
        Self::signing_message(&self.reference.digest)
    }

    fn compute_digest(&self) -> Digest {
        let mut encoder = Encoder::new();
        encoder.put_bytes(DIGEST_DOMAIN);
        encoder.put_u32(self.author.0);
        encoder.put_u64(self.round);
        self.parents.encode(&mut encoder);
        encoder.put_u32(u32::try_from(self.transactions.len()).expect("tx count fits u32"));
        for tx in &self.transactions {
            encoder.put_var_bytes(tx.as_bytes());
        }
        match &self.coin_share {
            None => encoder.put_u8(0),
            Some(share) => {
                encoder.put_u8(1);
                encoder.put_bytes(&share.to_bytes());
            }
        }
        blake2b_256(&encoder.into_bytes())
    }

    /// Validates the block against the committee (Section 2.3's validity
    /// conditions, minus causal-history availability, which is the DAG
    /// store's responsibility).
    ///
    /// # Errors
    ///
    /// Returns the first violated condition as a [`ValidationError`].
    pub fn verify(&self, committee: &Committee) -> Result<(), ValidationError> {
        if self.verify_prelude(committee)? {
            return Ok(()); // genesis: fixed by convention, nothing signed
        }

        let public_key = committee
            .public_key(self.author)
            .expect("author existence checked in the prelude");
        let message = Self::signing_message(&self.reference.digest);
        if public_key.verify(&message, &self.signature).is_err() {
            return Err(ValidationError::InvalidSignature);
        }

        self.verify_parents(committee)?;

        // Coin share: present, owned by the author, valid for this round.
        let share = self.coin_share_checked()?;
        if committee
            .coin_public()
            .verify_share(self.round, share)
            .is_err()
        {
            return Err(ValidationError::InvalidCoinShare);
        }
        Ok(())
    }

    /// The cheap, structural subset of [`Block::verify`]: committee
    /// membership, the genesis convention, parent rules, and coin-share
    /// presence/ownership — everything except the signature and the
    /// coin-share proof.
    ///
    /// The admission pipeline runs this per block and then checks the two
    /// expensive cryptographic conditions across a whole batch at once
    /// (`schnorr::batch_verify_attributed`, `CoinPublic::verify_shares`);
    /// a block passing both this and the batched checks satisfies exactly
    /// the conditions of [`Block::verify`].
    ///
    /// # Errors
    ///
    /// Returns the first violated structural condition.
    pub fn verify_structure(&self, committee: &Committee) -> Result<(), ValidationError> {
        if self.verify_prelude(committee)? {
            return Ok(());
        }
        self.verify_parents(committee)?;
        self.coin_share_checked()?;
        Ok(())
    }

    /// Membership and genesis checks; `Ok(true)` means the block is a
    /// (valid) genesis block with nothing further to verify.
    fn verify_prelude(&self, committee: &Committee) -> Result<bool, ValidationError> {
        if !committee.exists(self.author) {
            return Err(ValidationError::UnknownAuthority(self.author));
        }
        if self.round == 0 {
            // Genesis blocks are fixed by convention.
            if *self != Block::genesis(self.author) {
                return Err(ValidationError::MalformedGenesis);
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// Parent structure: own previous block first, no duplicates, all
    /// older than this block, quorum of distinct authors at round - 1.
    fn verify_parents(&self, committee: &Committee) -> Result<(), ValidationError> {
        let Some(first) = self.parents.first() else {
            return Err(ValidationError::MissingParents);
        };
        if first.author != self.author || first.round != self.round - 1 {
            return Err(ValidationError::FirstParentNotOwn);
        }
        let mut seen = std::collections::HashSet::with_capacity(self.parents.len());
        let mut previous_round_authors = std::collections::HashSet::new();
        for parent in &self.parents {
            if parent.round >= self.round {
                return Err(ValidationError::ParentNotOlder(*parent));
            }
            if !committee.exists(parent.author) {
                return Err(ValidationError::UnknownAuthority(parent.author));
            }
            if !seen.insert(*parent) {
                return Err(ValidationError::DuplicateParent(*parent));
            }
            if parent.round == self.round - 1 {
                previous_round_authors.insert(parent.author);
            }
        }
        if previous_round_authors.len() < committee.quorum_threshold() {
            return Err(ValidationError::InsufficientParentQuorum {
                got: previous_round_authors.len(),
                needed: committee.quorum_threshold(),
            });
        }
        Ok(())
    }

    /// Coin-share presence and ownership (not the proof).
    fn coin_share_checked(&self) -> Result<&CoinShare, ValidationError> {
        let Some(share) = &self.coin_share else {
            return Err(ValidationError::MissingCoinShare);
        };
        if share.index() != self.author.as_u64() {
            return Err(ValidationError::ForeignCoinShare);
        }
        Ok(share)
    }

    /// Total serialized size in bytes (used by the bandwidth model).
    pub fn serialized_size(&self) -> usize {
        self.encoded_len()
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reference)
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{{parents: {:?}, txs: {}}}",
            self.reference,
            self.parents,
            self.transactions.len()
        )
    }
}

impl Encode for Block {
    fn encode(&self, encoder: &mut Encoder) {
        encoder.put_u32(self.author.0);
        encoder.put_u64(self.round);
        self.parents.encode(encoder);
        encoder.put_u32(u32::try_from(self.transactions.len()).expect("tx count fits u32"));
        for tx in &self.transactions {
            encoder.put_var_bytes(tx.as_bytes());
        }
        match &self.coin_share {
            None => encoder.put_u8(0),
            Some(share) => {
                encoder.put_u8(1);
                encoder.put_bytes(&share.to_bytes());
            }
        }
        encoder.put_bytes(&self.signature.to_bytes());
    }

    fn encoded_len(&self) -> usize {
        4 + 8
            + self.parents.encoded_len()
            + 4
            + self
                .transactions
                .iter()
                .map(|tx| 4 + tx.len())
                .sum::<usize>()
            + 1
            + if self.coin_share.is_some() {
                CoinShare::LENGTH
            } else {
                0
            }
            + Signature::LENGTH
    }
}

impl Decode for Block {
    fn decode(decoder: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let content_start = decoder.position();
        let author = AuthorityIndex(decoder.get_u32()?);
        let round = decoder.get_u64()?;
        let parents = Vec::<BlockRef>::decode(decoder)?;
        let tx_count = decoder.get_u32()? as usize;
        let mut transactions = Vec::with_capacity(tx_count.min(4096));
        for _ in 0..tx_count {
            transactions.push(Transaction::new(decoder.get_var_bytes()?.to_vec()));
        }
        let coin_share = match decoder.get_u8()? {
            0 => None,
            1 => Some(
                CoinShare::from_bytes(&decoder.get_array::<32>()?)
                    .ok_or(CodecError::InvalidValue("coin share"))?,
            ),
            _ => return Err(CodecError::InvalidValue("coin share discriminant")),
        };
        // Zero-copy digest: the wire layout of the content fields (everything
        // up to the signature) is byte-identical to what `compute_digest`
        // re-encodes, so hashing the consumed span in place gives the same
        // content-addressed digest without a second serialization pass.
        let digest = {
            let mut hasher = Blake2b::new(Digest::LENGTH);
            hasher.update(DIGEST_DOMAIN);
            hasher.update(decoder.consumed_since(content_start));
            Digest::from_slice(&hasher.finalize()).expect("blake2b-256 output is 32 bytes")
        };
        let signature = Signature::from_bytes(&decoder.get_array::<16>()?)
            .ok_or(CodecError::InvalidValue("signature"))?;
        Ok(Block {
            author,
            round,
            parents,
            transactions,
            coin_share,
            signature,
            reference: BlockRef {
                round,
                author,
                digest,
            },
        })
    }
}

/// Builder assembling and signing a [`Block`].
///
/// # Example
///
/// ```
/// use mahimahi_types::{Block, BlockBuilder, TestCommittee, AuthorityIndex, Transaction};
///
/// let setup = TestCommittee::new(4, 1);
/// let genesis = Block::all_genesis(4);
/// let parents = genesis.iter().map(|b| b.reference()).collect::<Vec<_>>();
/// // Own previous block must come first.
/// let mut ordered = vec![parents[2]];
/// ordered.extend(parents.iter().copied().filter(|p| p.author != AuthorityIndex(2)));
///
/// let block = BlockBuilder::new(AuthorityIndex(2), 1)
///     .parents(ordered)
///     .transaction(Transaction::benchmark(0))
///     .build(&setup);
/// assert!(block.verify(setup.committee()).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct BlockBuilder {
    author: AuthorityIndex,
    round: Round,
    parents: Vec<BlockRef>,
    transactions: Vec<Transaction>,
    coin_share_override: Option<CoinShare>,
}

impl BlockBuilder {
    /// Starts a block for `author` at `round`.
    pub fn new(author: AuthorityIndex, round: Round) -> Self {
        BlockBuilder {
            author,
            round,
            parents: Vec::new(),
            transactions: Vec::new(),
            coin_share_override: None,
        }
    }

    /// Sets the ordered parent references.
    pub fn parents(mut self, parents: Vec<BlockRef>) -> Self {
        self.parents = parents;
        self
    }

    /// Appends one parent reference.
    pub fn parent(mut self, parent: BlockRef) -> Self {
        self.parents.push(parent);
        self
    }

    /// Appends a transaction.
    pub fn transaction(mut self, transaction: Transaction) -> Self {
        self.transactions.push(transaction);
        self
    }

    /// Appends many transactions.
    pub fn transactions<I: IntoIterator<Item = Transaction>>(mut self, iter: I) -> Self {
        self.transactions.extend(iter);
        self
    }

    /// Overrides the coin share embedded in the block (instead of deriving
    /// it from the author's coin secret). The block is still signed over the
    /// resulting digest, producing a *signature-valid* block whose coin
    /// share may be garbage — exactly the Byzantine input that
    /// share-handling code must survive. Test and adversary use.
    pub fn coin_share(mut self, share: CoinShare) -> Self {
        self.coin_share_override = Some(share);
        self
    }

    /// Signs and assembles the block using the authority's secrets from a
    /// [`TestCommittee`].
    ///
    /// [`TestCommittee`]: crate::committee::TestCommittee
    pub fn build(self, setup: &crate::committee::TestCommittee) -> Block {
        let keypair = setup.keypair(self.author).clone();
        let coin_secret = setup.coin_secret(self.author).clone();
        self.build_with(&keypair, &coin_secret)
    }

    /// Signs and assembles the block from explicit secrets.
    pub fn build_with(self, keypair: &Keypair, coin_secret: &CoinSecret) -> Block {
        let coin_share = self
            .coin_share_override
            .unwrap_or_else(|| coin_secret.share_for_round(self.round));
        let mut block = Block {
            author: self.author,
            round: self.round,
            parents: self.parents,
            transactions: self.transactions,
            coin_share: Some(coin_share),
            // Placeholder signature; replaced after the digest is known.
            signature: keypair.sign(b"placeholder"),
            reference: BlockRef {
                round: self.round,
                author: self.author,
                digest: Digest::ZERO,
            },
        };
        block.reference.digest = block.compute_digest();
        block.signature = keypair.sign(&Block::signing_message(&block.reference.digest));
        block
    }
}

/// Reasons a block fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidationError {
    /// The author (or a parent's author) is not a committee member.
    UnknownAuthority(AuthorityIndex),
    /// The signature does not verify against the author's key.
    InvalidSignature,
    /// A round-0 block differs from the conventional genesis block.
    MalformedGenesis,
    /// A non-genesis block carries no parents.
    MissingParents,
    /// The first parent is not the author's own block at the previous round.
    FirstParentNotOwn,
    /// A parent reference is not strictly older than the block.
    ParentNotOlder(BlockRef),
    /// The same parent appears twice.
    DuplicateParent(BlockRef),
    /// Fewer than `2f + 1` distinct authors among previous-round parents.
    InsufficientParentQuorum {
        /// Distinct previous-round parent authors found.
        got: usize,
        /// The quorum threshold `2f + 1`.
        needed: usize,
    },
    /// A non-genesis block carries no coin share.
    MissingCoinShare,
    /// The coin share belongs to a different authority.
    ForeignCoinShare,
    /// The coin share's validity proof fails for this round.
    InvalidCoinShare,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UnknownAuthority(authority) => {
                write!(f, "unknown authority {authority}")
            }
            ValidationError::InvalidSignature => write!(f, "invalid block signature"),
            ValidationError::MalformedGenesis => write!(f, "malformed genesis block"),
            ValidationError::MissingParents => write!(f, "block has no parents"),
            ValidationError::FirstParentNotOwn => {
                write!(f, "first parent is not the author's previous block")
            }
            ValidationError::ParentNotOlder(parent) => {
                write!(f, "parent {parent} is not older than the block")
            }
            ValidationError::DuplicateParent(parent) => {
                write!(f, "duplicate parent {parent}")
            }
            ValidationError::InsufficientParentQuorum { got, needed } => {
                write!(f, "only {got} previous-round parents, need {needed}")
            }
            ValidationError::MissingCoinShare => write!(f, "missing coin share"),
            ValidationError::ForeignCoinShare => {
                write!(f, "coin share authored by a different validator")
            }
            ValidationError::InvalidCoinShare => write!(f, "invalid coin share"),
        }
    }
}

impl StdError for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::committee::TestCommittee;

    fn setup() -> TestCommittee {
        TestCommittee::new(4, 42)
    }

    fn genesis_parents(author: AuthorityIndex) -> Vec<BlockRef> {
        let genesis = Block::all_genesis(4);
        let mut parents = vec![genesis[author.as_usize()].reference()];
        parents.extend(
            genesis
                .iter()
                .map(Block::reference)
                .filter(|reference| reference.author != author),
        );
        parents
    }

    fn valid_block(setup: &TestCommittee, author: u32) -> Block {
        BlockBuilder::new(AuthorityIndex(author), 1)
            .parents(genesis_parents(AuthorityIndex(author)))
            .transaction(Transaction::benchmark(1))
            .build(setup)
    }

    #[test]
    fn valid_block_verifies() {
        let setup = setup();
        let block = valid_block(&setup, 0);
        assert_eq!(block.verify(setup.committee()), Ok(()));
    }

    #[test]
    fn genesis_blocks_verify_and_are_deterministic() {
        let setup = setup();
        for authority in setup.committee().authorities() {
            let genesis = Block::genesis(authority);
            assert_eq!(genesis.verify(setup.committee()), Ok(()));
            assert_eq!(genesis, Block::genesis(authority));
        }
    }

    #[test]
    fn unknown_author_rejected() {
        let setup = setup();
        let bogus = Block::genesis(AuthorityIndex(17));
        assert_eq!(
            bogus.verify(setup.committee()),
            Err(ValidationError::UnknownAuthority(AuthorityIndex(17)))
        );
    }

    #[test]
    fn tampered_genesis_rejected() {
        let setup = setup();
        let mut genesis = Block::genesis(AuthorityIndex(0));
        genesis.transactions.push(Transaction::benchmark(0));
        assert_eq!(
            genesis.verify(setup.committee()),
            Err(ValidationError::MalformedGenesis)
        );
    }

    #[test]
    fn signature_covers_content() {
        let setup = setup();
        let mut block = valid_block(&setup, 0);
        block.transactions.push(Transaction::benchmark(7));
        block.reference.digest = block.compute_digest();
        assert_eq!(
            block.verify(setup.committee()),
            Err(ValidationError::InvalidSignature)
        );
    }

    #[test]
    fn wrong_keypair_rejected() {
        let setup = setup();
        // Author 0's block signed with authority 1's key.
        let block = BlockBuilder::new(AuthorityIndex(0), 1)
            .parents(genesis_parents(AuthorityIndex(0)))
            .build_with(
                setup.keypair(AuthorityIndex(1)),
                setup.coin_secret(AuthorityIndex(0)),
            );
        assert_eq!(
            block.verify(setup.committee()),
            Err(ValidationError::InvalidSignature)
        );
    }

    #[test]
    fn missing_parents_rejected() {
        let setup = setup();
        let block = BlockBuilder::new(AuthorityIndex(0), 1)
            .parents(Vec::new())
            .build(&setup);
        assert_eq!(
            block.verify(setup.committee()),
            Err(ValidationError::MissingParents)
        );
    }

    #[test]
    fn first_parent_must_be_own_previous_block() {
        let setup = setup();
        let genesis = Block::all_genesis(4);
        // Parents start with someone else's block.
        let parents: Vec<BlockRef> = genesis.iter().map(Block::reference).collect();
        let block = BlockBuilder::new(AuthorityIndex(2), 1)
            .parents(parents)
            .build(&setup);
        assert_eq!(
            block.verify(setup.committee()),
            Err(ValidationError::FirstParentNotOwn)
        );
    }

    #[test]
    fn parent_from_same_round_rejected() {
        let setup = setup();
        let mut parents = genesis_parents(AuthorityIndex(0));
        let sibling = valid_block(&setup, 1);
        parents.push(sibling.reference());
        let block = BlockBuilder::new(AuthorityIndex(0), 1)
            .parents(parents)
            .build(&setup);
        assert_eq!(
            block.verify(setup.committee()),
            Err(ValidationError::ParentNotOlder(sibling.reference()))
        );
    }

    #[test]
    fn duplicate_parent_rejected() {
        let setup = setup();
        let mut parents = genesis_parents(AuthorityIndex(0));
        parents.push(parents[1]);
        let block = BlockBuilder::new(AuthorityIndex(0), 1)
            .parents(parents)
            .build(&setup);
        assert!(matches!(
            block.verify(setup.committee()),
            Err(ValidationError::DuplicateParent(_))
        ));
    }

    #[test]
    fn insufficient_quorum_rejected() {
        let setup = setup();
        // Only two previous-round parents (own + one) — below 2f+1 = 3.
        let parents = genesis_parents(AuthorityIndex(0))[..2].to_vec();
        let block = BlockBuilder::new(AuthorityIndex(0), 1)
            .parents(parents)
            .build(&setup);
        assert_eq!(
            block.verify(setup.committee()),
            Err(ValidationError::InsufficientParentQuorum { got: 2, needed: 3 })
        );
    }

    #[test]
    fn foreign_coin_share_rejected() {
        let setup = setup();
        let block = BlockBuilder::new(AuthorityIndex(0), 1)
            .parents(genesis_parents(AuthorityIndex(0)))
            .build_with(
                setup.keypair(AuthorityIndex(0)),
                setup.coin_secret(AuthorityIndex(1)),
            );
        assert_eq!(
            block.verify(setup.committee()),
            Err(ValidationError::ForeignCoinShare)
        );
    }

    #[test]
    fn missing_coin_share_rejected() {
        let setup = setup();
        let mut block = valid_block(&setup, 0);
        block.coin_share = None;
        block.reference.digest = block.compute_digest();
        block.signature = setup
            .keypair(AuthorityIndex(0))
            .sign(&Block::signing_message(&block.reference.digest));
        assert_eq!(
            block.verify(setup.committee()),
            Err(ValidationError::MissingCoinShare)
        );
    }

    #[test]
    fn block_round_trips_through_codec() {
        let setup = setup();
        let block = valid_block(&setup, 3);
        let bytes = block.to_bytes_vec();
        assert_eq!(bytes.len(), block.encoded_len());
        let decoded = Block::from_bytes_exact(&bytes).unwrap();
        assert_eq!(decoded, block);
        assert_eq!(decoded.reference(), block.reference());
        assert_eq!(decoded.verify(setup.committee()), Ok(()));
    }

    #[test]
    fn decoded_digest_matches_reencoded_digest() {
        // The decode path hashes the consumed wire span in place; this pins
        // it to the canonical re-encoding digest, including the no-tx /
        // no-coin-share genesis layout and a multi-transaction block.
        let setup = setup();
        let blocks = [
            Block::genesis(AuthorityIndex(1)),
            valid_block(&setup, 2),
            BlockBuilder::new(AuthorityIndex(0), 1)
                .parents(genesis_parents(AuthorityIndex(0)))
                .transactions((0..5).map(Transaction::benchmark))
                .build(&setup),
        ];
        for block in blocks {
            let decoded = Block::from_bytes_exact(&block.to_bytes_vec()).unwrap();
            assert_eq!(decoded.digest(), block.compute_digest());
            assert_eq!(decoded.digest(), decoded.compute_digest());
        }
    }

    #[test]
    fn decode_rejects_garbage_signature() {
        let setup = setup();
        let block = valid_block(&setup, 0);
        let mut bytes = block.to_bytes_vec();
        let len = bytes.len();
        // Corrupt the signature's response scalar to an out-of-range value.
        bytes[len - 8..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Block::from_bytes_exact(&bytes).is_err());
    }

    #[test]
    fn digest_changes_with_content() {
        let setup = setup();
        let base = BlockBuilder::new(AuthorityIndex(0), 1)
            .parents(genesis_parents(AuthorityIndex(0)))
            .build(&setup);
        let with_tx = BlockBuilder::new(AuthorityIndex(0), 1)
            .parents(genesis_parents(AuthorityIndex(0)))
            .transaction(Transaction::benchmark(1))
            .build(&setup);
        assert_ne!(base.digest(), with_tx.digest());
    }

    #[test]
    fn equivocating_blocks_share_slot_but_not_digest() {
        let setup = setup();
        let one = BlockBuilder::new(AuthorityIndex(1), 1)
            .parents(genesis_parents(AuthorityIndex(1)))
            .transaction(Transaction::benchmark(1))
            .build(&setup);
        let two = BlockBuilder::new(AuthorityIndex(1), 1)
            .parents(genesis_parents(AuthorityIndex(1)))
            .transaction(Transaction::benchmark(2))
            .build(&setup);
        assert_eq!(one.slot(), two.slot());
        assert_ne!(one.digest(), two.digest());
        // Both individually valid: equivocation is handled by the commit
        // rule, not block validity (the point of an uncertified DAG).
        assert_eq!(one.verify(setup.committee()), Ok(()));
        assert_eq!(two.verify(setup.committee()), Ok(()));
    }

    #[test]
    fn serialized_size_tracks_payload() {
        let setup = setup();
        let small = valid_block(&setup, 0);
        let big = BlockBuilder::new(AuthorityIndex(0), 1)
            .parents(genesis_parents(AuthorityIndex(0)))
            .transactions((0..10).map(Transaction::benchmark))
            .build(&setup);
        assert!(big.serialized_size() > small.serialized_size() + 9 * 512);
    }

    #[test]
    fn display_formats() {
        let block = Block::genesis(AuthorityIndex(2));
        let shown = block.to_string();
        assert!(shown.starts_with("B(v2,0,"));
    }
}
