//! Signed execution checkpoints.
//!
//! The execution layer (`mahimahi-core::execution`) folds every committed
//! sub-DAG into a deterministic state machine. Because the commit sequence
//! — including skips — is identical at every correct validator, the state
//! after any fixed number of sequencing decisions is identical too. Every
//! `checkpoint_interval` decisions a validator signs a [`Checkpoint`]
//! binding that agreed cut: the sequencer position, the last committed
//! leader, the execution [`StateRoot`], and a digest of the sequencer
//! resume snapshot.
//!
//! A quorum of matching checkpoints at the same position is a transferable
//! proof of the state at that cut: a joining or long-offline validator
//! verifies the quorum signatures, checks the accompanying snapshots hash
//! to the certified roots, and resumes from the cut instead of replaying
//! history from genesis. The same quorum also makes write-ahead-log
//! truncation below the checkpointed frontier safe (see
//! `mahimahi-node`).

use crate::block::BlockRef;
use crate::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use crate::committee::Committee;
use crate::ids::AuthorityIndex;
use mahimahi_crypto::schnorr::{Keypair, Signature};
use mahimahi_crypto::Digest;
use std::fmt;

/// Domain separator for checkpoint signatures, so a checkpoint signature
/// can never be replayed as a block signature (or vice versa).
const CHECKPOINT_DOMAIN: &[u8] = b"mahimahi-checkpoint-v1";

/// The root of the execution state: a hash of the state machine's
/// canonical snapshot encoding. Two validators with equal roots hold
/// byte-identical state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateRoot(pub Digest);

impl StateRoot {
    /// The root of the empty (genesis) state snapshot.
    pub fn genesis() -> Self {
        StateRoot(Digest::ZERO)
    }

    /// The underlying digest.
    pub fn digest(&self) -> Digest {
        self.0
    }
}

impl fmt::Debug for StateRoot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateRoot({})", self.0)
    }
}

impl fmt::Display for StateRoot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Encode for StateRoot {
    fn encode(&self, encoder: &mut Encoder) {
        encoder.put_bytes(self.0.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        Digest::LENGTH
    }
}

impl Decode for StateRoot {
    fn decode(decoder: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(StateRoot(Digest::new(decoder.get_array::<32>()?)))
    }
}

/// One validator's signed attestation of the execution state at an agreed
/// cut of the commit sequence.
///
/// The signature covers `(position, leader, state_root, resume_digest)`
/// under a checkpoint-specific domain separator; the signing authority is
/// carried alongside so receivers can look up the verification key.
#[derive(Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The attesting validator.
    authority: AuthorityIndex,
    /// Number of sequencing decisions (commits and skips) covered: the
    /// checkpoint describes the state after decisions `0..position`.
    position: u64,
    /// The last committed leader at or before the cut (genesis-zero if the
    /// prefix committed nothing).
    leader: BlockRef,
    /// Root of the execution state after applying the covered prefix.
    state_root: StateRoot,
    /// Digest of the sequencer resume snapshot at the cut (emitted set,
    /// resume round/offset) — binds *where* to resume, not just the state.
    resume_digest: Digest,
    /// Schnorr signature over the domain-separated fields above.
    signature: Signature,
}

impl Checkpoint {
    /// Signs a checkpoint over the given cut.
    pub fn sign(
        authority: AuthorityIndex,
        position: u64,
        leader: BlockRef,
        state_root: StateRoot,
        resume_digest: Digest,
        keypair: &Keypair,
    ) -> Self {
        let message = Self::signing_message(position, &leader, &state_root, &resume_digest);
        Checkpoint {
            authority,
            position,
            leader,
            state_root,
            resume_digest,
            signature: keypair.sign(&message),
        }
    }

    /// The attesting validator.
    pub fn authority(&self) -> AuthorityIndex {
        self.authority
    }

    /// Number of sequencing decisions covered by this checkpoint.
    pub fn position(&self) -> u64 {
        self.position
    }

    /// The last committed leader at or before the cut.
    pub fn leader(&self) -> BlockRef {
        self.leader
    }

    /// Root of the execution state at the cut.
    pub fn state_root(&self) -> StateRoot {
        self.state_root
    }

    /// Digest of the sequencer resume snapshot at the cut.
    pub fn resume_digest(&self) -> Digest {
        self.resume_digest
    }

    /// Whether two checkpoints attest the same cut and state (everything
    /// except the attesting authority and its signature).
    pub fn attests_same(&self, other: &Checkpoint) -> bool {
        self.position == other.position
            && self.leader == other.leader
            && self.state_root == other.state_root
            && self.resume_digest == other.resume_digest
    }

    /// Verifies the signature against the authority's key in `committee`.
    ///
    /// # Errors
    ///
    /// Fails if the authority is unknown or the signature does not verify.
    pub fn verify(&self, committee: &Committee) -> Result<(), CheckpointError> {
        let public_key = committee
            .public_key(self.authority)
            .ok_or(CheckpointError::UnknownAuthority(self.authority))?;
        let message = Self::signing_message(
            self.position,
            &self.leader,
            &self.state_root,
            &self.resume_digest,
        );
        public_key
            .verify(&message, &self.signature)
            .map_err(|_| CheckpointError::InvalidSignature)
    }

    fn signing_message(
        position: u64,
        leader: &BlockRef,
        state_root: &StateRoot,
        resume_digest: &Digest,
    ) -> Vec<u8> {
        let mut encoder = Encoder::new();
        encoder.put_bytes(CHECKPOINT_DOMAIN);
        encoder.put_u64(position);
        leader.encode(&mut encoder);
        state_root.encode(&mut encoder);
        encoder.put_bytes(resume_digest.as_bytes());
        encoder.into_bytes()
    }
}

impl fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Checkpoint(#{} by {} root={} leader={})",
            self.position, self.authority, self.state_root, self.leader
        )
    }
}

impl Encode for Checkpoint {
    fn encode(&self, encoder: &mut Encoder) {
        encoder.put_u32(self.authority.0);
        encoder.put_u64(self.position);
        self.leader.encode(encoder);
        self.state_root.encode(encoder);
        encoder.put_bytes(self.resume_digest.as_bytes());
        encoder.put_bytes(&self.signature.to_bytes());
    }

    fn encoded_len(&self) -> usize {
        4 + 8 + self.leader.encoded_len() + Digest::LENGTH * 2 + Signature::LENGTH
    }
}

impl Decode for Checkpoint {
    fn decode(decoder: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let authority = AuthorityIndex(decoder.get_u32()?);
        let position = decoder.get_u64()?;
        let leader = BlockRef::decode(decoder)?;
        let state_root = StateRoot::decode(decoder)?;
        let resume_digest = Digest::new(decoder.get_array::<32>()?);
        let signature = Signature::from_bytes(&decoder.get_array::<16>()?)
            .ok_or(CodecError::InvalidValue("checkpoint signature"))?;
        Ok(Checkpoint {
            authority,
            position,
            leader,
            state_root,
            resume_digest,
            signature,
        })
    }
}

/// Errors from checkpoint verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The attesting authority is not in the committee.
    UnknownAuthority(AuthorityIndex),
    /// The signature does not verify against the authority's key.
    InvalidSignature,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::UnknownAuthority(authority) => {
                write!(f, "checkpoint from unknown authority {authority}")
            }
            CheckpointError::InvalidSignature => write!(f, "invalid checkpoint signature"),
        }
    }
}

impl std::error::Error for CheckpointError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::committee::TestCommittee;
    use mahimahi_crypto::blake2b::blake2b_256;

    fn sample(setup: &TestCommittee, authority: u32, position: u64) -> Checkpoint {
        let authority = AuthorityIndex(authority);
        Checkpoint::sign(
            authority,
            position,
            crate::block::Block::genesis(AuthorityIndex(0)).reference(),
            StateRoot(blake2b_256(b"state")),
            blake2b_256(b"resume"),
            setup.keypair(authority),
        )
    }

    #[test]
    fn sign_verify_round_trip() {
        let setup = TestCommittee::new(4, 3);
        let checkpoint = sample(&setup, 1, 32);
        assert!(checkpoint.verify(setup.committee()).is_ok());
        let bytes = checkpoint.to_bytes_vec();
        assert_eq!(bytes.len(), checkpoint.encoded_len());
        let decoded = Checkpoint::from_bytes_exact(&bytes).unwrap();
        assert_eq!(decoded, checkpoint);
        assert!(decoded.verify(setup.committee()).is_ok());
    }

    #[test]
    fn wrong_signer_rejected() {
        let setup = TestCommittee::new(4, 3);
        let authority = AuthorityIndex(2);
        // Signed with authority 1's key but claiming authority 2.
        let forged = Checkpoint::sign(
            authority,
            7,
            crate::block::Block::genesis(AuthorityIndex(0)).reference(),
            StateRoot(blake2b_256(b"state")),
            blake2b_256(b"resume"),
            setup.keypair(AuthorityIndex(1)),
        );
        assert_eq!(
            forged.verify(setup.committee()),
            Err(CheckpointError::InvalidSignature)
        );
    }

    #[test]
    fn unknown_authority_rejected() {
        let setup = TestCommittee::new(4, 3);
        let checkpoint = Checkpoint::sign(
            AuthorityIndex(99),
            7,
            crate::block::Block::genesis(AuthorityIndex(0)).reference(),
            StateRoot(blake2b_256(b"state")),
            blake2b_256(b"resume"),
            setup.keypair(AuthorityIndex(0)),
        );
        assert!(matches!(
            checkpoint.verify(setup.committee()),
            Err(CheckpointError::UnknownAuthority(_))
        ));
    }

    #[test]
    fn attests_same_ignores_signer() {
        let setup = TestCommittee::new(4, 3);
        let a = sample(&setup, 0, 32);
        let b = sample(&setup, 1, 32);
        assert!(a.attests_same(&b));
        let c = sample(&setup, 1, 64);
        assert!(!a.attests_same(&c));
    }

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_checkpoint_codec_round_trips(
            authority in 0u32..4,
            position in any::<u64>(),
            state_seed in any::<u64>(),
            resume_seed in any::<u64>(),
        ) {
            let setup = TestCommittee::new(4, 3);
            let checkpoint = Checkpoint::sign(
                AuthorityIndex(authority),
                position,
                crate::block::Block::genesis(AuthorityIndex(0)).reference(),
                StateRoot(blake2b_256(&state_seed.to_le_bytes())),
                blake2b_256(&resume_seed.to_le_bytes()),
                setup.keypair(AuthorityIndex(authority)),
            );
            let bytes = checkpoint.to_bytes_vec();
            prop_assert_eq!(bytes.len(), checkpoint.encoded_len());
            let decoded = Checkpoint::from_bytes_exact(&bytes).unwrap();
            prop_assert_eq!(&decoded, &checkpoint);
            prop_assert!(decoded.verify(setup.committee()).is_ok());
        }

        #[test]
        fn prop_tampered_checkpoints_are_rejected(
            position in any::<u64>(),
            index in 0usize..136,
            flip in 1u8..=255,
        ) {
            // Flipping any byte of the encoding — authority, position,
            // leader, state root, resume digest, or signature — must leave
            // a checkpoint that fails to decode or fails verification.
            // (Every field is either signature-covered or the signer's
            // committee identity itself.)
            let setup = TestCommittee::new(4, 3);
            let checkpoint = sample(&setup, 1, position);
            let mut bytes = checkpoint.to_bytes_vec();
            prop_assert_eq!(bytes.len(), 136);
            bytes[index] ^= flip;
            // A torn encoding is rejected at decode; anything that still
            // decodes must fail verification.
            if let Ok(tampered) = Checkpoint::from_bytes_exact(&bytes) {
                prop_assert!(
                    tampered.verify(setup.committee()).is_err(),
                    "tampered byte {} accepted", index
                );
            }
        }
    }
}
