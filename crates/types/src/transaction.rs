//! Client transactions.

use mahimahi_crypto::blake2b::blake2b_256;
use mahimahi_crypto::Digest;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An opaque client transaction.
///
/// The paper's benchmarks use arbitrary 512-byte payloads; the protocol
/// never interprets transaction contents, it only orders them.
///
/// # Example
///
/// ```
/// use mahimahi_types::Transaction;
///
/// let tx = Transaction::new(vec![1, 2, 3]);
/// assert_eq!(tx.len(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Transaction(Vec<u8>);

impl Transaction {
    /// The payload size used throughout the paper's benchmarks.
    pub const BENCHMARK_SIZE: usize = 512;

    /// Wraps a payload.
    pub fn new(payload: Vec<u8>) -> Self {
        Transaction(payload)
    }

    /// Creates a benchmark-style transaction: `BENCHMARK_SIZE` bytes whose
    /// prefix encodes `id` so every transaction is unique and traceable.
    pub fn benchmark(id: u64) -> Self {
        let mut payload = vec![0u8; Self::BENCHMARK_SIZE];
        payload[..8].copy_from_slice(&id.to_le_bytes());
        Transaction(payload)
    }

    /// The payload bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The content digest of the transaction.
    pub fn digest(&self) -> Digest {
        blake2b_256(&self.0)
    }

    /// Reads back the identifier written by [`Transaction::benchmark`].
    ///
    /// Returns `None` for payloads shorter than 8 bytes.
    pub fn benchmark_id(&self) -> Option<u64> {
        let bytes: [u8; 8] = self.0.get(..8)?.try_into().ok()?;
        Some(u64::from_le_bytes(bytes))
    }
}

impl From<Vec<u8>> for Transaction {
    fn from(payload: Vec<u8>) -> Self {
        Transaction(payload)
    }
}

impl AsRef<[u8]> for Transaction {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Transaction({} bytes)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_transactions_have_paper_size() {
        let tx = Transaction::benchmark(99);
        assert_eq!(tx.len(), 512);
        assert_eq!(tx.benchmark_id(), Some(99));
    }

    #[test]
    fn distinct_ids_give_distinct_digests() {
        assert_ne!(
            Transaction::benchmark(1).digest(),
            Transaction::benchmark(2).digest()
        );
    }

    #[test]
    fn empty_transaction() {
        let tx = Transaction::new(vec![]);
        assert!(tx.is_empty());
        assert_eq!(tx.benchmark_id(), None);
    }

    #[test]
    fn digest_is_stable() {
        let tx = Transaction::new(vec![7; 32]);
        assert_eq!(tx.digest(), Transaction::new(vec![7; 32]).digest());
    }
}
