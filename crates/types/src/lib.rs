//! Core protocol types for the Mahi-Mahi reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! - [`AuthorityIndex`] and [`Round`] identify positions in the DAG;
//! - [`Committee`] describes the validator set (`n = 3f + 1`, quorums);
//! - [`Block`] is the single message type of the protocol (Section 2.3 of
//!   the paper): a signed vertex carrying transactions, parent references,
//!   and a share of the global perfect coin;
//! - [`BlockRef`] is the hash reference linking blocks into the DAG;
//! - [`EquivocationProof`] packages two conflicting signed blocks by the
//!   same author and round as self-contained, transferable slashing
//!   evidence;
//! - [`Envelope`] is the transport-agnostic message vocabulary every
//!   validator driver (simulator, TCP node, test harnesses) speaks;
//! - [`codec`] provides the deterministic binary wire format used by the
//!   WAL and the TCP transport.
//!
//! # Example
//!
//! ```
//! use mahimahi_types::TestCommittee;
//!
//! let setup = TestCommittee::new(4, 7);
//! let committee = setup.committee();
//! assert_eq!(committee.size(), 4);
//! assert_eq!(committee.f(), 1);
//! assert_eq!(committee.quorum_threshold(), 3);
//! ```

pub mod block;
pub mod checkpoint;
pub mod codec;
pub mod committee;
pub mod dense;
pub mod envelope;
pub mod evidence;
pub mod ids;
pub mod receipt;
pub mod transaction;
pub mod verified;

pub use block::{Block, BlockBuilder, BlockRef, ValidationError};
pub use checkpoint::{Checkpoint, CheckpointError, StateRoot};
pub use codec::{CodecError, Decode, Decoder, Encode, Encoder};
pub use committee::{Committee, TestCommittee};
pub use dense::{
    AuthoritySet, CommitteeMap, DigestKeyHasher, DigestKeyed, InvalidAuthority,
    MAX_DENSE_AUTHORITIES,
};
pub use envelope::{Envelope, MAX_BATCH_TXS, MAX_TX_WIRE_BYTES};
pub use evidence::{EquivocationProof, EvidenceError};
pub use ids::{AuthorityIndex, Round, Slot};
pub use receipt::{TxReceipt, TxVerdict, MAX_RECEIPT_TAGS};
pub use transaction::Transaction;
pub use verified::Verified;
