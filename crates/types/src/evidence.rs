//! Fault-attribution evidence.
//!
//! An uncertified DAG *tolerates* equivocation by construction (the commit
//! rule commits at most one block per slot, Lemma 2), but tolerating
//! misbehavior is not the same as attributing it. Two signed blocks by the
//! same author at the same round with different digests are a
//! self-contained, transferable proof of equivocation: anyone holding the
//! committee's public keys can check both signatures and convict the
//! author, no trust in the reporter required. Production DAG systems
//! (Mysticeti, Bullshark deployments) expose exactly this evidence for
//! slashing; [`EquivocationProof`] is this workspace's equivalent.
//!
//! The proof is *canonical*: the block with the smaller digest is always
//! stored first, so two validators that observe the same conflicting pair
//! build byte-identical proofs and deduplication works across nodes.

use serde::{Deserialize, Serialize};
use std::error::Error as StdError;
use std::fmt;
use std::sync::Arc;

use crate::block::{Block, BlockRef, ValidationError};
use crate::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use crate::committee::Committee;
use crate::ids::{AuthorityIndex, Round, Slot};

/// Reasons a pair of blocks fails to form (or verify as) an
/// [`EquivocationProof`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvidenceError {
    /// The two blocks have different authors: not an equivocation.
    AuthorMismatch(AuthorityIndex, AuthorityIndex),
    /// The two blocks occupy different rounds: not an equivocation.
    RoundMismatch(Round, Round),
    /// The two blocks are the same block (identical digest).
    IdenticalBlocks(BlockRef),
    /// One of the blocks fails validation against the committee, so the
    /// proof does not demonstrate misbehavior by a committee member.
    InvalidBlock(ValidationError),
}

impl fmt::Display for EvidenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvidenceError::AuthorMismatch(a, b) => {
                write!(f, "blocks by different authors {a} and {b}")
            }
            EvidenceError::RoundMismatch(a, b) => {
                write!(f, "blocks from different rounds {a} and {b}")
            }
            EvidenceError::IdenticalBlocks(reference) => {
                write!(f, "both blocks are {reference}: no conflict")
            }
            EvidenceError::InvalidBlock(error) => {
                write!(f, "block fails validation: {error}")
            }
        }
    }
}

impl StdError for EvidenceError {}

/// A self-contained proof that an authority equivocated: two signed blocks
/// with the same `(author, round)` but different content digests.
///
/// Construction ([`EquivocationProof::new`]) checks the *structural*
/// conflict (same slot, distinct digests); [`EquivocationProof::verify`]
/// additionally validates both blocks against the committee — signatures,
/// parent structure, coin shares — making the proof safe to act on (slash)
/// even when relayed by an untrusted peer.
///
/// # Example
///
/// ```
/// use mahimahi_types::{AuthorityIndex, Block, BlockBuilder, EquivocationProof, TestCommittee, Transaction};
///
/// let setup = TestCommittee::new(4, 7);
/// let genesis = Block::all_genesis(4);
/// let mut parents = vec![genesis[1].reference()];
/// parents.extend(genesis.iter().map(Block::reference).filter(|r| r.author.0 != 1));
/// let one = BlockBuilder::new(AuthorityIndex(1), 1)
///     .parents(parents.clone())
///     .transaction(Transaction::benchmark(1))
///     .build(&setup)
///     .into_arc();
/// let two = BlockBuilder::new(AuthorityIndex(1), 1)
///     .parents(parents)
///     .transaction(Transaction::benchmark(2))
///     .build(&setup)
///     .into_arc();
///
/// let proof = EquivocationProof::new(one, two).expect("conflicting pair");
/// assert_eq!(proof.author(), AuthorityIndex(1));
/// assert!(proof.verify(setup.committee()).is_ok());
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EquivocationProof {
    /// The conflicting block with the smaller digest (canonical order).
    first: Arc<Block>,
    /// The conflicting block with the larger digest.
    second: Arc<Block>,
}

impl EquivocationProof {
    /// Assembles a proof from two conflicting blocks, normalizing their
    /// order so equal conflicts build equal proofs on every node.
    ///
    /// # Errors
    ///
    /// Returns an [`EvidenceError`] if the blocks do not share an author and
    /// round or do not actually conflict (same digest). Block *validity* is
    /// deliberately not checked here — detection sites (the DAG store) only
    /// hold pre-validated blocks; untrusted proofs are checked with
    /// [`EquivocationProof::verify`].
    pub fn new(a: Arc<Block>, b: Arc<Block>) -> Result<Self, EvidenceError> {
        if a.author() != b.author() {
            return Err(EvidenceError::AuthorMismatch(a.author(), b.author()));
        }
        if a.round() != b.round() {
            return Err(EvidenceError::RoundMismatch(a.round(), b.round()));
        }
        if a.digest() == b.digest() {
            return Err(EvidenceError::IdenticalBlocks(a.reference()));
        }
        let (first, second) = if a.digest().as_bytes() <= b.digest().as_bytes() {
            (a, b)
        } else {
            (b, a)
        };
        Ok(EquivocationProof { first, second })
    }

    /// The convicted authority.
    pub fn author(&self) -> AuthorityIndex {
        self.first.author()
    }

    /// The round both blocks occupy.
    pub fn round(&self) -> Round {
        self.first.round()
    }

    /// The slot both blocks occupy.
    pub fn slot(&self) -> Slot {
        self.first.slot()
    }

    /// The conflicting block with the smaller digest.
    pub fn first(&self) -> &Arc<Block> {
        &self.first
    }

    /// The conflicting block with the larger digest.
    pub fn second(&self) -> &Arc<Block> {
        &self.second
    }

    /// Stable identity of the conflict: the ordered pair of references.
    pub fn id(&self) -> (BlockRef, BlockRef) {
        (self.first.reference(), self.second.reference())
    }

    /// Full, self-contained verification against the committee: the blocks
    /// conflict structurally *and* both are valid signed blocks, so the
    /// author provably signed contradictory messages.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition as an [`EvidenceError`].
    pub fn verify(&self, committee: &Committee) -> Result<(), EvidenceError> {
        if self.first.author() != self.second.author() {
            return Err(EvidenceError::AuthorMismatch(
                self.first.author(),
                self.second.author(),
            ));
        }
        if self.first.round() != self.second.round() {
            return Err(EvidenceError::RoundMismatch(
                self.first.round(),
                self.second.round(),
            ));
        }
        if self.first.digest() == self.second.digest() {
            return Err(EvidenceError::IdenticalBlocks(self.first.reference()));
        }
        self.first
            .verify(committee)
            .map_err(EvidenceError::InvalidBlock)?;
        self.second
            .verify(committee)
            .map_err(EvidenceError::InvalidBlock)?;
        Ok(())
    }

    /// Total serialized size in bytes (bandwidth model).
    pub fn serialized_size(&self) -> usize {
        self.encoded_len()
    }

    /// Test support: a genuine conviction — two conflicting, validly
    /// signed round-1 blocks by `author` over `setup`'s genesis. Used
    /// across the workspace's test suites to exercise evidence paths
    /// without hand-rolling the pair in every crate.
    #[doc(hidden)]
    pub fn synthetic(setup: &crate::committee::TestCommittee, author: AuthorityIndex) -> Self {
        use crate::block::BlockBuilder;
        use crate::transaction::Transaction;
        let genesis = Block::all_genesis(setup.committee().size());
        let build = |tag: u64| {
            let mut parents = vec![genesis[author.as_usize()].reference()];
            parents.extend(
                genesis
                    .iter()
                    .map(Block::reference)
                    .filter(|reference| reference.author != author),
            );
            BlockBuilder::new(author, 1)
                .parents(parents)
                .transaction(Transaction::benchmark(tag))
                .build(setup)
                .into_arc()
        };
        EquivocationProof::new(build(1), build(2)).expect("distinct tags conflict")
    }
}

impl fmt::Display for EquivocationProof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Equivocation(v{}, round {}, {} vs {})",
            self.author().0,
            self.round(),
            self.first.reference(),
            self.second.reference()
        )
    }
}

impl fmt::Debug for EquivocationProof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl Encode for EquivocationProof {
    fn encode(&self, encoder: &mut Encoder) {
        self.first.encode(encoder);
        self.second.encode(encoder);
    }

    fn encoded_len(&self) -> usize {
        self.first.encoded_len() + self.second.encoded_len()
    }
}

impl Decode for EquivocationProof {
    fn decode(decoder: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let first = Block::decode(decoder)?.into_arc();
        let second = Block::decode(decoder)?.into_arc();
        // Re-impose the structural invariants: a decoded proof must be a
        // genuine canonical conflict, not merely two blocks.
        if first.author() != second.author() || first.round() != second.round() {
            return Err(CodecError::InvalidValue("equivocation proof slot"));
        }
        if first.digest() == second.digest() {
            return Err(CodecError::InvalidValue("equivocation proof digests"));
        }
        if first.digest().as_bytes() > second.digest().as_bytes() {
            return Err(CodecError::InvalidValue("equivocation proof order"));
        }
        Ok(EquivocationProof { first, second })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;
    use crate::committee::TestCommittee;
    use crate::transaction::Transaction;

    fn setup() -> TestCommittee {
        TestCommittee::new(4, 5)
    }

    fn parents_for(author: u32) -> Vec<BlockRef> {
        let genesis = Block::all_genesis(4);
        let mut parents = vec![genesis[author as usize].reference()];
        parents.extend(
            genesis
                .iter()
                .map(Block::reference)
                .filter(|reference| reference.author.0 != author),
        );
        parents
    }

    fn tagged_block(setup: &TestCommittee, author: u32, tag: u64) -> Arc<Block> {
        BlockBuilder::new(AuthorityIndex(author), 1)
            .parents(parents_for(author))
            .transaction(Transaction::benchmark(tag))
            .build(setup)
            .into_arc()
    }

    #[test]
    fn conflicting_pair_forms_a_verifying_proof() {
        let setup = setup();
        let one = tagged_block(&setup, 2, 1);
        let two = tagged_block(&setup, 2, 2);
        let proof = EquivocationProof::new(one.clone(), two.clone()).unwrap();
        assert_eq!(proof.author(), AuthorityIndex(2));
        assert_eq!(proof.round(), 1);
        assert_eq!(proof.slot(), one.slot());
        assert_eq!(proof.verify(setup.committee()), Ok(()));
    }

    #[test]
    fn proof_order_is_canonical() {
        let setup = setup();
        let one = tagged_block(&setup, 1, 1);
        let two = tagged_block(&setup, 1, 2);
        let forward = EquivocationProof::new(one.clone(), two.clone()).unwrap();
        let backward = EquivocationProof::new(two, one).unwrap();
        assert_eq!(forward, backward);
        assert_eq!(forward.id(), backward.id());
        assert!(forward.first().digest().as_bytes() <= forward.second().digest().as_bytes());
    }

    #[test]
    fn mismatched_pairs_rejected() {
        let setup = setup();
        let one = tagged_block(&setup, 0, 1);
        let other_author = tagged_block(&setup, 1, 1);
        assert!(matches!(
            EquivocationProof::new(one.clone(), other_author),
            Err(EvidenceError::AuthorMismatch(..))
        ));
        assert!(matches!(
            EquivocationProof::new(one.clone(), one.clone()),
            Err(EvidenceError::IdenticalBlocks(_))
        ));
        let genesis = Block::genesis(AuthorityIndex(0)).into_arc();
        assert!(matches!(
            EquivocationProof::new(one, genesis),
            Err(EvidenceError::RoundMismatch(1, 0))
        ));
    }

    #[test]
    fn tampered_block_fails_verification() {
        let setup = setup();
        let honest = tagged_block(&setup, 3, 1);
        // Sign the second block with the wrong keypair: structurally a
        // conflict, but not provably misbehavior by authority 3.
        let forged = BlockBuilder::new(AuthorityIndex(3), 1)
            .parents(parents_for(3))
            .transaction(Transaction::benchmark(2))
            .build_with(
                setup.keypair(AuthorityIndex(0)),
                setup.coin_secret(AuthorityIndex(3)),
            )
            .into_arc();
        let proof = EquivocationProof::new(honest, forged).unwrap();
        assert!(matches!(
            proof.verify(setup.committee()),
            Err(EvidenceError::InvalidBlock(
                ValidationError::InvalidSignature
            ))
        ));
    }

    #[test]
    fn proof_round_trips_through_codec() {
        let setup = setup();
        let proof =
            EquivocationProof::new(tagged_block(&setup, 2, 1), tagged_block(&setup, 2, 2)).unwrap();
        let bytes = proof.to_bytes_vec();
        assert_eq!(bytes.len(), proof.encoded_len());
        let decoded = EquivocationProof::from_bytes_exact(&bytes).unwrap();
        assert_eq!(decoded, proof);
        assert_eq!(decoded.verify(setup.committee()), Ok(()));
    }

    #[test]
    fn decode_rejects_non_conflicting_pairs() {
        let setup = setup();
        let block = tagged_block(&setup, 0, 1);
        // Same block twice: structurally not a conflict.
        let mut encoder = Encoder::new();
        block.encode(&mut encoder);
        block.encode(&mut encoder);
        assert!(EquivocationProof::from_bytes_exact(&encoder.into_bytes()).is_err());
        // Conflicting pair in the wrong (non-canonical) order.
        let other = tagged_block(&setup, 0, 2);
        let proof = EquivocationProof::new(block, other).unwrap();
        let mut encoder = Encoder::new();
        proof.second().encode(&mut encoder);
        proof.first().encode(&mut encoder);
        assert!(EquivocationProof::from_bytes_exact(&encoder.into_bytes()).is_err());
    }
}
