//! The validator set and its quorum arithmetic.

use mahimahi_crypto::coin::{CoinDealer, CoinPublic, CoinSecret};
use mahimahi_crypto::schnorr::{Keypair, PublicKey};
use serde::{Deserialize, Serialize};

use crate::ids::AuthorityIndex;

/// The static validator set of an epoch.
///
/// The paper assumes `n = 3f + 1` validators of which at most `f` are
/// Byzantine (Section 2.1). The committee exposes the two thresholds the
/// protocol uses everywhere: the *quorum* threshold `2f + 1` and the
/// *validity* threshold `f + 1`.
///
/// # Example
///
/// ```
/// use mahimahi_types::TestCommittee;
///
/// let committee = TestCommittee::new(10, 0).committee().clone();
/// assert_eq!(committee.f(), 3);
/// assert_eq!(committee.quorum_threshold(), 7);
/// assert_eq!(committee.validity_threshold(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Committee {
    /// Signing keys, indexed by [`AuthorityIndex`].
    public_keys: Vec<PublicKey>,
    /// Public parameters of the global perfect coin.
    coin_public: CoinPublic,
}

impl Committee {
    /// Builds a committee from per-authority public keys and the coin's
    /// public parameters.
    ///
    /// # Panics
    ///
    /// Panics if the committee is empty or if the coin was dealt for a
    /// different committee size or a threshold other than `2f + 1`.
    pub fn new(public_keys: Vec<PublicKey>, coin_public: CoinPublic) -> Self {
        assert!(!public_keys.is_empty(), "committee cannot be empty");
        assert_eq!(
            coin_public.total(),
            public_keys.len(),
            "coin dealt for a different committee size"
        );
        let f = (public_keys.len() - 1) / 3;
        assert_eq!(
            coin_public.threshold(),
            2 * f + 1,
            "coin threshold must equal the quorum threshold 2f + 1"
        );
        Committee {
            public_keys,
            coin_public,
        }
    }

    /// The committee size `n`.
    pub fn size(&self) -> usize {
        self.public_keys.len()
    }

    /// The maximum number of Byzantine validators `f = ⌊(n − 1) / 3⌋`.
    pub fn f(&self) -> usize {
        (self.size() - 1) / 3
    }

    /// The quorum threshold `2f + 1`.
    pub fn quorum_threshold(&self) -> usize {
        2 * self.f() + 1
    }

    /// The validity threshold `f + 1` (at least one honest validator).
    pub fn validity_threshold(&self) -> usize {
        self.f() + 1
    }

    /// Whether `authority` is a member.
    pub fn exists(&self, authority: AuthorityIndex) -> bool {
        authority.as_usize() < self.size()
    }

    /// The signing key of `authority`, or `None` for non-members.
    pub fn public_key(&self, authority: AuthorityIndex) -> Option<&PublicKey> {
        self.public_keys.get(authority.as_usize())
    }

    /// The coin's public parameters.
    pub fn coin_public(&self) -> &CoinPublic {
        &self.coin_public
    }

    /// Iterates over all authority indexes.
    pub fn authorities(&self) -> impl Iterator<Item = AuthorityIndex> + '_ {
        (0..self.size()).map(AuthorityIndex::from)
    }
}

/// A fully-provisioned test committee: the public [`Committee`] plus every
/// validator's secrets.
///
/// Production deployments provision each validator with only its own
/// [`Keypair`] and [`CoinSecret`]; simulations and tests need all of them in
/// one place. All material derives deterministically from `seed`.
#[derive(Debug, Clone)]
pub struct TestCommittee {
    committee: Committee,
    keypairs: Vec<Keypair>,
    coin_secrets: Vec<CoinSecret>,
}

impl TestCommittee {
    /// Provisions a committee of `size` validators from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize, seed: u64) -> Self {
        assert!(size > 0, "committee cannot be empty");
        let keypairs: Vec<Keypair> = (0..size as u64)
            .map(|index| Keypair::from_seed(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ index))
            .collect();
        let f = (size - 1) / 3;
        let (coin_secrets, coin_public) = CoinDealer::deal_seeded(size, 2 * f + 1, seed);
        let committee = Committee::new(
            keypairs.iter().map(|kp| *kp.public()).collect(),
            coin_public,
        );
        TestCommittee {
            committee,
            keypairs,
            coin_secrets,
        }
    }

    /// The public committee description.
    pub fn committee(&self) -> &Committee {
        &self.committee
    }

    /// The signing keypair of `authority`.
    ///
    /// # Panics
    ///
    /// Panics if `authority` is not a member.
    pub fn keypair(&self, authority: AuthorityIndex) -> &Keypair {
        &self.keypairs[authority.as_usize()]
    }

    /// The coin secret of `authority`.
    ///
    /// # Panics
    ///
    /// Panics if `authority` is not a member.
    pub fn coin_secret(&self, authority: AuthorityIndex) -> &CoinSecret {
        &self.coin_secrets[authority.as_usize()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_follow_n_equals_3f_plus_1() {
        for (n, f) in [(1, 0), (4, 1), (7, 2), (10, 3), (13, 4), (50, 16)] {
            let committee = TestCommittee::new(n, 1).committee().clone();
            assert_eq!(committee.size(), n);
            assert_eq!(committee.f(), f);
            assert_eq!(committee.quorum_threshold(), 2 * f + 1);
            assert_eq!(committee.validity_threshold(), f + 1);
        }
    }

    #[test]
    fn membership() {
        let committee = TestCommittee::new(4, 2).committee().clone();
        assert!(committee.exists(AuthorityIndex(0)));
        assert!(committee.exists(AuthorityIndex(3)));
        assert!(!committee.exists(AuthorityIndex(4)));
        assert!(committee.public_key(AuthorityIndex(4)).is_none());
    }

    #[test]
    fn authorities_iterates_in_order() {
        let committee = TestCommittee::new(4, 2).committee().clone();
        let all: Vec<_> = committee.authorities().collect();
        assert_eq!(
            all,
            vec![
                AuthorityIndex(0),
                AuthorityIndex(1),
                AuthorityIndex(2),
                AuthorityIndex(3)
            ]
        );
    }

    #[test]
    fn setup_is_deterministic() {
        let a = TestCommittee::new(4, 9);
        let b = TestCommittee::new(4, 9);
        assert_eq!(a.committee(), b.committee());
        let c = TestCommittee::new(4, 10);
        assert_ne!(a.committee(), c.committee());
    }

    #[test]
    fn keys_are_distinct() {
        let setup = TestCommittee::new(10, 1);
        let mut keys: Vec<_> = (0..10)
            .map(|i| *setup.keypair(AuthorityIndex(i)).public())
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 10);
    }

    #[test]
    fn coin_secrets_match_committee_coin() {
        let setup = TestCommittee::new(4, 3);
        let committee = setup.committee();
        let shares: Vec<_> = (0..4)
            .map(|i| setup.coin_secret(AuthorityIndex(i)).share_for_round(7))
            .collect();
        for share in &shares {
            assert!(committee.coin_public().verify_share(7, share).is_ok());
        }
        assert!(committee.coin_public().combine(7, &shares[..3]).is_ok());
    }

    #[test]
    #[should_panic(expected = "different committee size")]
    fn mismatched_coin_size_panics() {
        let keys: Vec<PublicKey> = (0..4).map(|i| *Keypair::from_seed(i).public()).collect();
        let (_, coin_public) = CoinDealer::deal_seeded(7, 5, 1);
        let _ = Committee::new(keys, coin_public);
    }

    #[test]
    #[should_panic(expected = "quorum threshold")]
    fn mismatched_coin_threshold_panics() {
        let keys: Vec<PublicKey> = (0..4).map(|i| *Keypair::from_seed(i).public()).collect();
        let (_, coin_public) = CoinDealer::deal_seeded(4, 2, 1);
        let _ = Committee::new(keys, coin_public);
    }
}
