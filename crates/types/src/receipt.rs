//! Client-ingress receipts: the acknowledgement vocabulary of the
//! transaction submission path.
//!
//! PR 5's ingress was fire-and-forget: a client wrote an
//! [`Envelope::TxBatch`] and learned about rejection only by timeout. A
//! [`TxReceipt`] closes the loop in two steps:
//!
//! 1. **Admission** — emitted synchronously for every received batch: the
//!    batch tag (the engine's receive time, which doubles as the commit
//!    correlation key) plus one [`TxVerdict`] per transaction, in
//!    submission order;
//! 2. **Committed** — emitted later, once every accepted transaction of
//!    the tagged batch has been sequenced into the total order (locally or
//!    at a peer the transaction was forwarded to).
//!
//! The receipt is transport-agnostic like every other [`Envelope`]
//! payload: the TCP node frames it back down the client's connection, the
//! loopback cluster records it on its virtual fabric, and the simulator
//! accounts it in the engine's ingress counters.
//!
//! [`Envelope::TxBatch`]: crate::envelope::Envelope::TxBatch
//! [`Envelope`]: crate::envelope::Envelope

use crate::codec::{CodecError, Decode, Decoder, Encode, Encoder};

/// Maximum batch tags carried by one [`TxReceipt::Committed`] frame.
pub const MAX_RECEIPT_TAGS: usize = 4096;

/// The admission outcome of a single transaction within a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxVerdict {
    /// Accepted into the mempool; a `Committed` receipt follows once the
    /// transaction is sequenced.
    Accepted,
    /// A transaction with the same digest was already accepted (replay
    /// protection); the earlier submission's lifecycle continues.
    Duplicate,
    /// The mempool is at capacity; resubmit after backing off.
    Full,
    /// The per-client token bucket is exhausted; resubmit after backing
    /// off. Only external clients are rate-limited, never committee peers.
    RateLimited,
}

impl TxVerdict {
    /// Whether the transaction entered the pool.
    pub fn is_accepted(self) -> bool {
        matches!(self, TxVerdict::Accepted)
    }

    fn tag(self) -> u8 {
        match self {
            TxVerdict::Accepted => 0,
            TxVerdict::Duplicate => 1,
            TxVerdict::Full => 2,
            TxVerdict::RateLimited => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        match tag {
            0 => Ok(TxVerdict::Accepted),
            1 => Ok(TxVerdict::Duplicate),
            2 => Ok(TxVerdict::Full),
            3 => Ok(TxVerdict::RateLimited),
            _ => Err(CodecError::InvalidValue("tx verdict")),
        }
    }
}

/// A receipt frame sent from a validator back to a submitting client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxReceipt {
    /// Per-transaction admission verdicts for one batch. `tag` is the
    /// engine's receive time for the batch — the key under which the later
    /// [`TxReceipt::Committed`] notification arrives.
    Admission {
        /// The batch tag (engine receive time, microseconds).
        tag: u64,
        /// One verdict per submitted transaction, in submission order.
        verdicts: Vec<TxVerdict>,
    },
    /// Every accepted transaction of each tagged batch has been sequenced
    /// into the committed total order.
    Committed {
        /// Tags of the completed batches, ascending.
        tags: Vec<u64>,
    },
}

impl TxReceipt {
    /// The number of accepted verdicts (0 for `Committed` frames).
    pub fn accepted(&self) -> usize {
        match self {
            TxReceipt::Admission { verdicts, .. } => {
                verdicts.iter().filter(|v| v.is_accepted()).count()
            }
            TxReceipt::Committed { .. } => 0,
        }
    }
}

const KIND_ADMISSION: u8 = 0;
const KIND_COMMITTED: u8 = 1;

impl Encode for TxReceipt {
    fn encode(&self, encoder: &mut Encoder) {
        match self {
            TxReceipt::Admission { tag, verdicts } => {
                encoder.put_u8(KIND_ADMISSION);
                encoder.put_u64(*tag);
                encoder.put_u32(u32::try_from(verdicts.len()).expect("verdict count fits u32"));
                for verdict in verdicts {
                    encoder.put_u8(verdict.tag());
                }
            }
            TxReceipt::Committed { tags } => {
                encoder.put_u8(KIND_COMMITTED);
                encoder.put_u32(u32::try_from(tags.len()).expect("tag count fits u32"));
                for tag in tags {
                    encoder.put_u64(*tag);
                }
            }
        }
    }
}

impl Decode for TxReceipt {
    fn decode(decoder: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match decoder.get_u8()? {
            KIND_ADMISSION => {
                let tag = decoder.get_u64()?;
                let count = decoder.get_u32()? as usize;
                if count == 0 {
                    return Err(CodecError::InvalidValue("empty receipt"));
                }
                if count > crate::envelope::MAX_BATCH_TXS {
                    return Err(CodecError::LengthOverflow(count as u64));
                }
                let mut verdicts = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    verdicts.push(TxVerdict::from_tag(decoder.get_u8()?)?);
                }
                Ok(TxReceipt::Admission { tag, verdicts })
            }
            KIND_COMMITTED => {
                let count = decoder.get_u32()? as usize;
                if count == 0 {
                    return Err(CodecError::InvalidValue("empty receipt"));
                }
                if count > MAX_RECEIPT_TAGS {
                    return Err(CodecError::LengthOverflow(count as u64));
                }
                let mut tags = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    tags.push(decoder.get_u64()?);
                }
                Ok(TxReceipt::Committed { tags })
            }
            _ => Err(CodecError::InvalidValue("receipt kind")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receipts_round_trip() {
        let receipts = [
            TxReceipt::Admission {
                tag: 12_345,
                verdicts: vec![
                    TxVerdict::Accepted,
                    TxVerdict::Duplicate,
                    TxVerdict::Full,
                    TxVerdict::RateLimited,
                ],
            },
            TxReceipt::Committed {
                tags: vec![1, 99, u64::MAX],
            },
        ];
        for receipt in receipts {
            let bytes = receipt.to_bytes_vec();
            assert_eq!(TxReceipt::from_bytes_exact(&bytes).unwrap(), receipt);
        }
    }

    #[test]
    fn malformed_receipts_rejected() {
        // Unknown kind byte.
        assert!(TxReceipt::from_bytes_exact(&[9]).is_err());
        // Unknown verdict byte inside an otherwise valid admission frame.
        let mut encoder = Encoder::new();
        encoder.put_u8(KIND_ADMISSION);
        encoder.put_u64(1);
        encoder.put_u32(1);
        encoder.put_u8(7);
        assert!(TxReceipt::from_bytes_exact(&encoder.into_bytes()).is_err());
        // Empty verdict and tag lists carry no information.
        let mut encoder = Encoder::new();
        encoder.put_u8(KIND_ADMISSION);
        encoder.put_u64(1);
        encoder.put_u32(0);
        assert!(TxReceipt::from_bytes_exact(&encoder.into_bytes()).is_err());
        let mut encoder = Encoder::new();
        encoder.put_u8(KIND_COMMITTED);
        encoder.put_u32(0);
        assert!(TxReceipt::from_bytes_exact(&encoder.into_bytes()).is_err());
        // Oversized counts are rejected before allocation.
        let mut encoder = Encoder::new();
        encoder.put_u8(KIND_COMMITTED);
        encoder.put_u32(MAX_RECEIPT_TAGS as u32 + 1);
        assert!(matches!(
            TxReceipt::from_bytes_exact(&encoder.into_bytes()),
            Err(CodecError::LengthOverflow(_)) | Err(CodecError::UnexpectedEnd)
        ));
    }

    #[test]
    fn accepted_counts_accepted_verdicts_only() {
        let receipt = TxReceipt::Admission {
            tag: 0,
            verdicts: vec![
                TxVerdict::Accepted,
                TxVerdict::RateLimited,
                TxVerdict::Accepted,
            ],
        };
        assert_eq!(receipt.accepted(), 2);
        assert_eq!(TxReceipt::Committed { tags: vec![1] }.accepted(), 0);
    }
}
