//! Deterministic binary wire format.
//!
//! Blocks travel over TCP and into the write-ahead log; both need a
//! canonical, self-delimiting byte encoding. The format is little-endian
//! with `u32` length prefixes for sequences — deliberately simple so that
//! the WAL recovery scan and the fuzz tests can reason about it.

use std::error::Error as StdError;
use std::fmt;

/// Errors raised while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The input ended before the value was complete.
    UnexpectedEnd,
    /// A length prefix exceeded the configured sanity limit.
    LengthOverflow(u64),
    /// An enum discriminant or constrained field had an invalid value.
    InvalidValue(&'static str),
    /// Trailing bytes remained after the top-level value was decoded.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "unexpected end of input"),
            CodecError::LengthOverflow(len) => write!(f, "length prefix too large: {len}"),
            CodecError::InvalidValue(what) => write!(f, "invalid encoded value: {what}"),
            CodecError::TrailingBytes(count) => {
                write!(f, "{count} trailing bytes after decoded value")
            }
        }
    }
}

impl StdError for CodecError {}

/// Maximum length accepted for any single length-prefixed sequence (64 MiB).
///
/// Prevents a corrupt or malicious length prefix from provoking huge
/// allocations before content validation runs.
pub const MAX_SEQUENCE_BYTES: u64 = 64 * 1024 * 1024;

/// Serializer: appends canonical bytes to a growable buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buffer: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buffer
    }

    /// Current number of encoded bytes.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buffer.push(value);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buffer.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buffer.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Appends a `u32`-length-prefixed byte string.
    pub fn put_var_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(u32::try_from(bytes.len()).expect("sequence fits in u32"));
        self.put_bytes(bytes);
    }
}

/// Deserializer: reads canonical bytes from a slice with bounds checking.
#[derive(Debug)]
pub struct Decoder<'a> {
    input: &'a [u8],
    position: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps an input slice.
    pub fn new(input: &'a [u8]) -> Self {
        Decoder { input, position: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.position
    }

    /// Number of bytes consumed so far.
    ///
    /// Pair with [`Decoder::consumed_since`] to recover the exact byte span
    /// a nested value was decoded from — e.g. to hash content in place
    /// instead of re-encoding it.
    pub fn position(&self) -> usize {
        self.position
    }

    /// The input bytes consumed between `start` (a prior [`Decoder::position`])
    /// and the current position.
    ///
    /// # Panics
    ///
    /// Panics if `start` is beyond the current position.
    pub fn consumed_since(&self, start: usize) -> &'a [u8] {
        &self.input[start..self.position]
    }

    /// Fails unless every input byte was consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, count: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < count {
            return Err(CodecError::UnexpectedEnd);
        }
        let slice = &self.input[self.position..self.position + count];
        self.position += count;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads exactly `count` raw bytes.
    pub fn get_bytes(&mut self, count: usize) -> Result<&'a [u8], CodecError> {
        self.take(count)
    }

    /// Reads a fixed-size array.
    pub fn get_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        Ok(self.take(N)?.try_into().expect("N bytes"))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn get_var_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u32()? as u64;
        if len > MAX_SEQUENCE_BYTES {
            return Err(CodecError::LengthOverflow(len));
        }
        self.take(len as usize)
    }
}

/// Types with a canonical binary encoding.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `encoder`.
    fn encode(&self, encoder: &mut Encoder);

    /// Convenience: encodes into a fresh byte vector.
    fn to_bytes_vec(&self) -> Vec<u8> {
        let mut encoder = Encoder::new();
        self.encode(&mut encoder);
        encoder.into_bytes()
    }

    /// The exact number of bytes [`Encode::encode`] will append.
    ///
    /// Used by the simulator's bandwidth model without materializing bytes.
    fn encoded_len(&self) -> usize {
        // Default: measure by encoding. Implementations on hot paths
        // override this with arithmetic.
        self.to_bytes_vec().len()
    }
}

/// Types that can be reconstructed from their canonical encoding.
pub trait Decode: Sized {
    /// Reads a value from `decoder`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the input is truncated or malformed.
    fn decode(decoder: &mut Decoder<'_>) -> Result<Self, CodecError>;

    /// Convenience: decodes a value that must span the whole input.
    fn from_bytes_exact(input: &[u8]) -> Result<Self, CodecError> {
        let mut decoder = Decoder::new(input);
        let value = Self::decode(&mut decoder)?;
        decoder.finish()?;
        Ok(value)
    }
}

impl Encode for u64 {
    fn encode(&self, encoder: &mut Encoder) {
        encoder.put_u64(*self);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for u64 {
    fn decode(decoder: &mut Decoder<'_>) -> Result<Self, CodecError> {
        decoder.get_u64()
    }
}

impl Encode for u32 {
    fn encode(&self, encoder: &mut Encoder) {
        encoder.put_u32(*self);
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl Decode for u32 {
    fn decode(decoder: &mut Decoder<'_>) -> Result<Self, CodecError> {
        decoder.get_u32()
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, encoder: &mut Encoder) {
        encoder.put_u32(u32::try_from(self.len()).expect("sequence fits in u32"));
        for item in self {
            item.encode(encoder);
        }
    }
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(decoder: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let count = decoder.get_u32()? as u64;
        if count > MAX_SEQUENCE_BYTES {
            return Err(CodecError::LengthOverflow(count));
        }
        // Avoid pre-allocating attacker-controlled capacities: cap the
        // initial reservation and let the vector grow organically.
        let mut items = Vec::with_capacity((count as usize).min(4096));
        for _ in 0..count {
            items.push(T::decode(decoder)?);
        }
        Ok(items)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, encoder: &mut Encoder) {
        match self {
            None => encoder.put_u8(0),
            Some(value) => {
                encoder.put_u8(1);
                value.encode(encoder);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::encoded_len)
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(decoder: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match decoder.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(decoder)?)),
            _ => Err(CodecError::InvalidValue("option discriminant")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn primitives_round_trip() {
        let mut encoder = Encoder::new();
        encoder.put_u8(7);
        encoder.put_u32(0xdead_beef);
        encoder.put_u64(u64::MAX);
        encoder.put_var_bytes(b"hello");
        let bytes = encoder.into_bytes();

        let mut decoder = Decoder::new(&bytes);
        assert_eq!(decoder.get_u8().unwrap(), 7);
        assert_eq!(decoder.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(decoder.get_u64().unwrap(), u64::MAX);
        assert_eq!(decoder.get_var_bytes().unwrap(), b"hello");
        assert!(decoder.finish().is_ok());
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut encoder = Encoder::new();
        encoder.put_u64(42);
        let bytes = encoder.into_bytes();
        for cut in 0..bytes.len() {
            let mut decoder = Decoder::new(&bytes[..cut]);
            assert_eq!(decoder.get_u64(), Err(CodecError::UnexpectedEnd));
        }
    }

    #[test]
    fn position_and_consumed_span_track_reads() {
        let mut encoder = Encoder::new();
        encoder.put_u32(7);
        encoder.put_u64(11);
        encoder.put_u8(13);
        let bytes = encoder.into_bytes();

        let mut decoder = Decoder::new(&bytes);
        assert_eq!(decoder.position(), 0);
        let _ = decoder.get_u32().unwrap();
        let start = decoder.position();
        assert_eq!(start, 4);
        let _ = decoder.get_u64().unwrap();
        assert_eq!(decoder.consumed_since(start), &bytes[4..12]);
        assert_eq!(decoder.consumed_since(decoder.position()), &[] as &[u8]);
    }

    #[test]
    fn trailing_bytes_detected() {
        let bytes = [0u8; 9];
        let mut decoder = Decoder::new(&bytes);
        let _ = decoder.get_u64().unwrap();
        assert_eq!(decoder.finish(), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut encoder = Encoder::new();
        encoder.put_u32(u32::MAX);
        let bytes = encoder.into_bytes();
        let mut decoder = Decoder::new(&bytes);
        assert_eq!(
            decoder.get_var_bytes(),
            Err(CodecError::LengthOverflow(u32::MAX as u64))
        );
    }

    #[test]
    fn vec_round_trip() {
        let values: Vec<u64> = vec![1, 2, 3, u64::MAX];
        let bytes = values.to_bytes_vec();
        assert_eq!(bytes.len(), values.encoded_len());
        assert_eq!(Vec::<u64>::from_bytes_exact(&bytes).unwrap(), values);
    }

    #[test]
    fn option_round_trip() {
        for value in [None, Some(17u64)] {
            let bytes = value.to_bytes_vec();
            assert_eq!(bytes.len(), value.encoded_len());
            assert_eq!(Option::<u64>::from_bytes_exact(&bytes).unwrap(), value);
        }
    }

    #[test]
    fn bad_option_discriminant_rejected() {
        assert_eq!(
            Option::<u64>::from_bytes_exact(&[2]),
            Err(CodecError::InvalidValue("option discriminant"))
        );
    }

    #[test]
    fn errors_display() {
        for error in [
            CodecError::UnexpectedEnd,
            CodecError::LengthOverflow(1),
            CodecError::InvalidValue("x"),
            CodecError::TrailingBytes(2),
        ] {
            assert!(!error.to_string().is_empty());
        }
    }

    proptest! {
        #[test]
        fn prop_vec_u64_round_trip(values in proptest::collection::vec(any::<u64>(), 0..64)) {
            let bytes = values.to_bytes_vec();
            prop_assert_eq!(bytes.len(), values.encoded_len());
            prop_assert_eq!(Vec::<u64>::from_bytes_exact(&bytes).unwrap(), values);
        }

        #[test]
        fn prop_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Whatever the input, decoding must return (not panic).
            let _ = Vec::<u64>::from_bytes_exact(&bytes);
            let _ = Option::<u64>::from_bytes_exact(&bytes);
        }
    }
}
