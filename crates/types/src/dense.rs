//! Committee-dense containers for hot-path authority bookkeeping.
//!
//! The consensus hot path tallies quorums, tracks which authorities voted,
//! and routes per-authority state on every message. Generic hash containers
//! (`HashMap<AuthorityIndex, T>`, `HashSet<AuthorityIndex>`) pay hashing and
//! per-insert allocation for keys that are small dense integers bounded by
//! the committee size. The two types here exploit that density:
//!
//! - [`CommitteeMap<T>`] is a map keyed by [`AuthorityIndex`] backed by a
//!   dense `Vec<Option<T>>` of exactly committee size: O(1) access with no
//!   hashing, and iteration in authority order (which keeps every consumer
//!   deterministic by construction).
//! - [`AuthoritySet`] is a fixed-width bitset over authority indexes:
//!   `Copy`, allocation-free, O(1) insert/remove/contains, popcount
//!   cardinality, and iteration in ascending index order.
//!
//! Both are drop-in replacements on the paths that used to rebuild hash
//! containers per round or per message; the proptest suite in
//! `tests/dense_proptest.rs` pins their behavior to the `HashMap`/`HashSet`
//! semantics they replace.

use crate::ids::AuthorityIndex;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// The widest committee the dense containers support.
///
/// [`AuthoritySet`] is a fixed `[u64; 4]` bitset so it stays `Copy` and
/// allocation-free on the hot path; 256 authorities is more than 5× the
/// paper's largest evaluated committee (n = 50).
pub const MAX_DENSE_AUTHORITIES: usize = 256;

const WORDS: usize = MAX_DENSE_AUTHORITIES / 64;

/// An authority index outside the committee, rejected at construction by
/// [`AuthorityIndex::checked`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct InvalidAuthority {
    /// The rejected raw index.
    pub index: u64,
    /// The committee size it was validated against.
    pub committee_size: usize,
}

impl fmt::Display for InvalidAuthority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "authority index {} out of committee bounds (n = {})",
            self.index, self.committee_size
        )
    }
}

impl fmt::Debug for InvalidAuthority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for InvalidAuthority {}

/// A set of authorities as a fixed-width bitset.
///
/// `Copy` and allocation-free: 32 bytes cover committees up to
/// [`MAX_DENSE_AUTHORITIES`]. Cardinality is a popcount, membership a single
/// bit test, and iteration yields members in ascending index order — so any
/// consumer that iterates a quorum tally is deterministic without sorting.
///
/// # Example
///
/// ```
/// use mahimahi_types::{AuthorityIndex, AuthoritySet};
///
/// let mut voters = AuthoritySet::new();
/// voters.insert(AuthorityIndex(2));
/// voters.insert(AuthorityIndex(0));
/// voters.insert(AuthorityIndex(2));
/// assert_eq!(voters.len(), 2);
/// assert!(voters.contains(AuthorityIndex(0)));
/// let in_order: Vec<_> = voters.iter().collect();
/// assert_eq!(in_order, vec![AuthorityIndex(0), AuthorityIndex(2)]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct AuthoritySet {
    words: [u64; WORDS],
}

impl AuthoritySet {
    /// Creates an empty set.
    pub const fn new() -> Self {
        AuthoritySet { words: [0; WORDS] }
    }

    /// Adds `authority`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if the index is ≥ [`MAX_DENSE_AUTHORITIES`].
    pub fn insert(&mut self, authority: AuthorityIndex) -> bool {
        let (word, bit) = Self::position(authority);
        let fresh = self.words[word] & bit == 0;
        self.words[word] |= bit;
        fresh
    }

    /// Removes `authority`; returns `true` if it was present.
    pub fn remove(&mut self, authority: AuthorityIndex) -> bool {
        let (word, bit) = Self::position(authority);
        let present = self.words[word] & bit != 0;
        self.words[word] &= !bit;
        present
    }

    /// Whether `authority` is a member.
    pub fn contains(&self, authority: AuthorityIndex) -> bool {
        let (word, bit) = Self::position(authority);
        self.words[word] & bit != 0
    }

    /// The number of members (a popcount — no iteration).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.words = [0; WORDS];
    }

    /// Iterates members in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = AuthorityIndex> + '_ {
        self.words.iter().enumerate().flat_map(|(word, &bits)| {
            BitIter { bits }.map(move |bit| AuthorityIndex((word * 64 + bit) as u32))
        })
    }

    /// The union of two sets.
    pub fn union(&self, other: &AuthoritySet) -> AuthoritySet {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
        AuthoritySet { words }
    }

    /// The intersection of two sets.
    pub fn intersection(&self, other: &AuthoritySet) -> AuthoritySet {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
        AuthoritySet { words }
    }

    /// Accumulates the total stake of the members.
    ///
    /// The reproduction's committees are unit-stake (`n = 3f + 1` counting),
    /// where this equals [`AuthoritySet::len`]; stake-weighted deployments
    /// pass their per-authority stake lookup.
    pub fn stake_weight<F: Fn(AuthorityIndex) -> u64>(&self, stake: F) -> u64 {
        self.iter().map(stake).sum()
    }

    fn position(authority: AuthorityIndex) -> (usize, u64) {
        let index = authority.as_usize();
        assert!(
            index < MAX_DENSE_AUTHORITIES,
            "authority index {index} exceeds the dense-set width {MAX_DENSE_AUTHORITIES}"
        );
        (index / 64, 1u64 << (index % 64))
    }
}

impl FromIterator<AuthorityIndex> for AuthoritySet {
    fn from_iter<I: IntoIterator<Item = AuthorityIndex>>(iter: I) -> Self {
        let mut set = AuthoritySet::new();
        for authority in iter {
            set.insert(authority);
        }
        set
    }
}

impl fmt::Debug for AuthoritySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

struct BitIter {
    bits: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.bits == 0 {
            return None;
        }
        let bit = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(bit)
    }
}

/// A multiply-xor table hasher for keys that already contain a
/// collision-resistant content digest (block references, slots).
///
/// The std `HashMap` default (SipHash with random keying) defends against
/// attacker-chosen keys; DAG references are keyed by a BLAKE-style digest
/// that the attacker cannot shape without breaking the hash function, so
/// the table hash only needs cheap mixing. This is the FxHash construction:
/// one rotate-xor-multiply per 8-byte word, roughly 5× cheaper than SipHash
/// on a 44-byte `BlockRef` — which is the dominant per-parent cost of block
/// admission at `n = 50` (every block carries ~n parent references).
///
/// Hashing is also *deterministic* (no per-process random state), which the
/// replay-exactness contract prefers: table layout, and therefore any
/// capacity-dependent behavior, is identical across runs.
#[derive(Clone, Copy, Default)]
pub struct DigestKeyHasher {
    hash: u64,
}

/// `BuildHasher` for [`DigestKeyHasher`]; plug into `HashMap`/`HashSet`
/// holding digest-keyed entries: `HashMap<BlockRef, T, DigestKeyed>`.
pub type DigestKeyed = BuildHasherDefault<DigestKeyHasher>;

const MIX: u64 = 0x517c_c1b7_2722_0a95;

impl DigestKeyHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(MIX);
    }
}

impl Hasher for DigestKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.mix(value as u64);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.mix(value as u64);
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.mix(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.mix(value as u64);
    }
}

/// A map keyed by [`AuthorityIndex`], backed by a dense vector of exactly
/// committee size.
///
/// Access is a bounds-checked vector index — no hashing — and iteration is
/// in ascending authority order, so consumers are deterministic without
/// collecting and sorting. Occupancy is tracked so [`CommitteeMap::len`]
/// stays O(1).
///
/// # Example
///
/// ```
/// use mahimahi_types::{AuthorityIndex, CommitteeMap};
///
/// let mut latest: CommitteeMap<u64> = CommitteeMap::new(4);
/// latest.insert(AuthorityIndex(3), 7);
/// latest.insert(AuthorityIndex(1), 5);
/// assert_eq!(latest.len(), 2);
/// assert_eq!(latest.get(AuthorityIndex(3)), Some(&7));
/// let keys: Vec<_> = latest.iter().map(|(a, _)| a).collect();
/// assert_eq!(keys, vec![AuthorityIndex(1), AuthorityIndex(3)]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CommitteeMap<T> {
    slots: Vec<Option<T>>,
    occupied: usize,
}

impl<T> CommitteeMap<T> {
    /// Creates an empty map for a committee of `committee_size` authorities.
    pub fn new(committee_size: usize) -> Self {
        let mut slots = Vec::with_capacity(committee_size);
        slots.resize_with(committee_size, || None);
        CommitteeMap { slots, occupied: 0 }
    }

    /// The committee size the map was created for (its key capacity).
    pub fn committee_size(&self) -> usize {
        self.slots.len()
    }

    /// The number of occupied entries (O(1)).
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether no entry is occupied.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Inserts `value` for `authority`, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `authority` is outside the committee the map was created
    /// for — dense maps do not grow.
    pub fn insert(&mut self, authority: AuthorityIndex, value: T) -> Option<T> {
        let slot = self.slot_mut(authority);
        let previous = slot.replace(value);
        if previous.is_none() {
            self.occupied += 1;
        }
        previous
    }

    /// Removes and returns the value for `authority`.
    pub fn remove(&mut self, authority: AuthorityIndex) -> Option<T> {
        let removed = self.slot_mut(authority).take();
        if removed.is_some() {
            self.occupied -= 1;
        }
        removed
    }

    /// The value for `authority`, if occupied.
    pub fn get(&self, authority: AuthorityIndex) -> Option<&T> {
        self.slots
            .get(authority.as_usize())
            .and_then(Option::as_ref)
    }

    /// Mutable access to the value for `authority`, if occupied.
    pub fn get_mut(&mut self, authority: AuthorityIndex) -> Option<&mut T> {
        self.slots
            .get_mut(authority.as_usize())
            .and_then(Option::as_mut)
    }

    /// Whether `authority` has an entry.
    pub fn contains_key(&self, authority: AuthorityIndex) -> bool {
        self.get(authority).is_some()
    }

    /// Returns the entry for `authority`, inserting `default()` first if it
    /// is vacant (the `HashMap::entry(..).or_insert_with(..)` idiom).
    pub fn get_or_insert_with<F: FnOnce() -> T>(
        &mut self,
        authority: AuthorityIndex,
        default: F,
    ) -> &mut T {
        let slot = self.slot_mut(authority);
        if slot.is_none() {
            *slot = Some(default());
            self.occupied += 1;
        }
        self.slots[authority.as_usize()]
            .as_mut()
            .expect("slot populated above")
    }

    /// Removes every entry, keeping the committee-sized backing storage.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.occupied = 0;
    }

    /// Iterates occupied entries in ascending authority order.
    pub fn iter(&self) -> impl Iterator<Item = (AuthorityIndex, &T)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (AuthorityIndex(i as u32), v)))
    }

    /// Iterates occupied values in ascending authority order.
    pub fn values(&self) -> impl Iterator<Item = &T> + '_ {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Iterates occupied values mutably, in ascending authority order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> + '_ {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }

    /// The occupied keys as an [`AuthoritySet`].
    pub fn keys(&self) -> AuthoritySet {
        self.iter().map(|(a, _)| a).collect()
    }

    fn slot_mut(&mut self, authority: AuthorityIndex) -> &mut Option<T> {
        let size = self.slots.len();
        self.slots.get_mut(authority.as_usize()).unwrap_or_else(|| {
            panic!(
                "authority {authority} outside the committee (n = {size}); \
                 dense maps do not grow"
            )
        })
    }
}

impl<T: fmt::Debug> fmt::Debug for CommitteeMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_insert_remove_contains_len() {
        let mut set = AuthoritySet::new();
        assert!(set.is_empty());
        assert!(set.insert(AuthorityIndex(5)));
        assert!(!set.insert(AuthorityIndex(5)), "reinsert reports stale");
        assert!(set.insert(AuthorityIndex(63)));
        assert!(set.insert(AuthorityIndex(64)), "crosses the word boundary");
        assert_eq!(set.len(), 3);
        assert!(set.contains(AuthorityIndex(64)));
        assert!(!set.contains(AuthorityIndex(6)));
        assert!(set.remove(AuthorityIndex(63)));
        assert!(!set.remove(AuthorityIndex(63)));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn set_iterates_in_ascending_order_regardless_of_insertion() {
        let set: AuthoritySet = [49u32, 0, 17, 3].into_iter().map(AuthorityIndex).collect();
        let order: Vec<u32> = set.iter().map(|a| a.0).collect();
        assert_eq!(order, vec![0, 3, 17, 49]);
    }

    #[test]
    fn set_union_intersection_and_stake() {
        let a: AuthoritySet = [0u32, 1, 2].into_iter().map(AuthorityIndex).collect();
        let b: AuthoritySet = [2u32, 3].into_iter().map(AuthorityIndex).collect();
        assert_eq!(a.union(&b).len(), 4);
        let both = a.intersection(&b);
        assert_eq!(both.iter().collect::<Vec<_>>(), vec![AuthorityIndex(2)]);
        // Unit stake: weight is the popcount. Weighted: sum of the lookup.
        assert_eq!(a.stake_weight(|_| 1), 3);
        assert_eq!(a.stake_weight(|v| v.as_u64() * 10), 30);
    }

    #[test]
    #[should_panic(expected = "dense-set width")]
    fn set_rejects_out_of_width_indexes() {
        let mut set = AuthoritySet::new();
        set.insert(AuthorityIndex(MAX_DENSE_AUTHORITIES as u32));
    }

    #[test]
    fn map_basic_operations() {
        let mut map: CommitteeMap<&str> = CommitteeMap::new(4);
        assert_eq!(map.committee_size(), 4);
        assert_eq!(map.insert(AuthorityIndex(2), "b"), None);
        assert_eq!(map.insert(AuthorityIndex(2), "c"), Some("b"));
        map.insert(AuthorityIndex(0), "a");
        assert_eq!(map.len(), 2);
        assert!(map.contains_key(AuthorityIndex(0)));
        assert_eq!(map.get(AuthorityIndex(2)), Some(&"c"));
        assert_eq!(map.remove(AuthorityIndex(2)), Some("c"));
        assert_eq!(map.remove(AuthorityIndex(2)), None);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn map_iterates_in_authority_order() {
        let mut map: CommitteeMap<u64> = CommitteeMap::new(10);
        map.insert(AuthorityIndex(7), 70);
        map.insert(AuthorityIndex(1), 10);
        map.insert(AuthorityIndex(4), 40);
        let entries: Vec<_> = map.iter().map(|(a, &v)| (a.0, v)).collect();
        assert_eq!(entries, vec![(1, 10), (4, 40), (7, 70)]);
        assert_eq!(map.keys().len(), 3);
        assert!(map.keys().contains(AuthorityIndex(4)));
    }

    #[test]
    fn map_entry_or_insert_idiom() {
        let mut map: CommitteeMap<Vec<u64>> = CommitteeMap::new(4);
        map.get_or_insert_with(AuthorityIndex(1), Vec::new).push(9);
        map.get_or_insert_with(AuthorityIndex(1), Vec::new).push(8);
        assert_eq!(map.get(AuthorityIndex(1)), Some(&vec![9, 8]));
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.committee_size(), 4, "clear keeps the backing storage");
    }

    #[test]
    #[should_panic(expected = "outside the committee")]
    fn map_rejects_out_of_committee_keys() {
        let mut map: CommitteeMap<u8> = CommitteeMap::new(4);
        map.insert(AuthorityIndex(4), 0);
    }

    #[test]
    fn digest_key_hasher_is_deterministic_and_spreads() {
        use std::hash::BuildHasher;
        let build = DigestKeyed::default();
        let hash = |bytes: &[u8]| build.hash_one(bytes);
        // Same input, same hash — across hasher instances (no random state).
        assert_eq!(hash(b"block-reference"), hash(b"block-reference"));
        // Different inputs (same length, one bit apart) diverge.
        assert_ne!(hash(&[0u8; 32]), hash(&[1u8; 32]));
        // Tail bytes beyond the last full word still contribute.
        assert_ne!(hash(&[7u8; 9]), hash(&[7u8; 10]));
        // Usable as a HashMap hasher.
        let mut map: std::collections::HashMap<u64, u64, DigestKeyed> =
            std::collections::HashMap::default();
        map.insert(3, 30);
        assert_eq!(map.get(&3), Some(&30));
    }
}
