//! The wire-agnostic message vocabulary of the protocol.
//!
//! Every validator driver — the deterministic simulator, the TCP node, the
//! loopback test harness — exchanges exactly these messages. The sans-I/O
//! validator engine (`mahimahi-core`) consumes and emits [`Envelope`]s
//! without knowing how they travel: the simulator passes them by value
//! through its virtual network, the node serializes them with the codec
//! below and frames them over TCP. Keeping one enum here (rather than a
//! per-driver message type) is what guarantees the drivers cannot drift
//! apart in what they can say.
//!
//! Uncertified protocols (Mahi-Mahi, Cordial Miners) use only
//! [`Envelope::Block`], [`Envelope::Request`], [`Envelope::Response`], and
//! [`Envelope::Evidence`]. Tusk's certified pipeline adds the
//! consistent-broadcast triple [`Envelope::Proposal`] → [`Envelope::Ack`] →
//! [`Envelope::Certificate`].

use crate::block::{Block, BlockRef};
use crate::checkpoint::Checkpoint;
use crate::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use crate::evidence::EquivocationProof;
use crate::ids::AuthorityIndex;
use crate::receipt::TxReceipt;
use crate::transaction::Transaction;
use std::sync::Arc;

/// Maximum transactions accepted in one [`Envelope::TxBatch`] frame.
/// Larger batches are rejected structurally at decode, before any copy of
/// their payload reaches the mempool.
pub const MAX_BATCH_TXS: usize = 16_384;

/// Maximum wire size of a single transaction payload (1 MiB). A frame
/// carrying a larger transaction is rejected at decode.
pub const MAX_TX_WIRE_BYTES: usize = 1024 * 1024;

/// Maximum checkpoints accepted in one [`Envelope::CheckpointResponse`]
/// frame — a full quorum never needs more than the committee size, and no
/// supported committee exceeds this.
pub const MAX_RESPONSE_CHECKPOINTS: usize = 1024;

/// One protocol message, independent of transport.
#[derive(Debug, Clone)]
pub enum Envelope {
    /// Best-effort block dissemination (uncertified DAGs).
    Block(Arc<Block>),
    /// Certified pipeline step 1: a block awaiting acknowledgements.
    Proposal(Arc<Block>),
    /// Certified pipeline step 2: a signed acknowledgement back to the
    /// author.
    Ack {
        /// The acknowledged block.
        reference: BlockRef,
        /// The acknowledging validator.
        voter: AuthorityIndex,
    },
    /// Certified pipeline step 3: the certificate releasing the block into
    /// the DAG. Carries the number of aggregated signatures (the
    /// simulator's CPU model charges per signature).
    Certificate {
        /// The certified block's reference (recipients hold the proposal).
        reference: BlockRef,
        /// Signatures aggregated in the certificate.
        signatures: usize,
    },
    /// Synchronizer: ask the peer for missing blocks.
    Request(Vec<BlockRef>),
    /// Synchronizer: blocks answering an [`Envelope::Request`].
    Response(Vec<Arc<Block>>),
    /// Fault attribution: a self-contained equivocation proof, gossiped so
    /// every honest validator converges on the same culprit set.
    Evidence(EquivocationProof),
    /// Client ingress: a batch of transactions submitted for inclusion.
    /// Structurally validated at decode — non-empty, at most
    /// [`MAX_BATCH_TXS`] transactions, each at most [`MAX_TX_WIRE_BYTES`]
    /// bytes. The receiving validator's mempool applies admission control
    /// (dedup, capacity) on top.
    TxBatch(Vec<Transaction>),
    /// Checkpointing: one validator's signed attestation of the execution
    /// state at an agreed cut of the commit sequence, gossiped every
    /// `checkpoint_interval` sequencing decisions. Receivers collect these
    /// per position; a quorum of matching attestations certifies the cut.
    Checkpoint(Checkpoint),
    /// State-sync step 1: ask a peer for its latest quorum-certified
    /// checkpoint (a joining or long-offline validator's first message).
    CheckpointRequest,
    /// State-sync step 2: the latest certified cut — a quorum of matching
    /// [`Envelope::Checkpoint`] attestations plus the execution and
    /// sequencer-resume snapshots whose hashes they certify. The receiver
    /// verifies every signature and both hashes before adopting.
    CheckpointResponse {
        /// Quorum of checkpoints attesting the same cut.
        checkpoints: Vec<Checkpoint>,
        /// Canonical execution-state snapshot (hashes to the state root).
        execution: Vec<u8>,
        /// Canonical sequencer resume snapshot (hashes to the resume
        /// digest).
        resume: Vec<u8>,
    },
    /// Client ingress acknowledgement: per-transaction admission verdicts
    /// for a received [`Envelope::TxBatch`], or the later notification that
    /// a batch's accepted transactions all committed. Sent from a validator
    /// back down the submitting client's connection.
    TxReceipt(TxReceipt),
    /// Validator→validator mempool forwarding: transactions that sat
    /// unproposed past the configured age at the sender, handed to a peer
    /// so any entry point eventually reaches a block. Digest-deduplicated
    /// at the receiver exactly like a client batch, and *removed* from the
    /// sender's pending pool, so a forwarded transaction is never proposed
    /// as "own" by two pools at once. Structurally validated at decode with
    /// the same bounds as [`Envelope::TxBatch`].
    TxForward(Vec<Transaction>),
}

const TAG_BLOCK: u8 = 1;
const TAG_REQUEST: u8 = 2;
const TAG_RESPONSE: u8 = 3;
const TAG_PROPOSAL: u8 = 4;
const TAG_ACK: u8 = 5;
const TAG_CERTIFICATE: u8 = 6;
const TAG_EVIDENCE: u8 = 7;
const TAG_TX_BATCH: u8 = 8;
const TAG_CHECKPOINT: u8 = 9;
const TAG_CHECKPOINT_REQUEST: u8 = 10;
const TAG_CHECKPOINT_RESPONSE: u8 = 11;
const TAG_TX_RECEIPT: u8 = 12;
const TAG_TX_FORWARD: u8 = 13;

impl Encode for Envelope {
    fn encode(&self, encoder: &mut Encoder) {
        match self {
            Envelope::Block(block) => {
                encoder.put_u8(TAG_BLOCK);
                block.as_ref().encode(encoder);
            }
            Envelope::Proposal(block) => {
                encoder.put_u8(TAG_PROPOSAL);
                block.as_ref().encode(encoder);
            }
            Envelope::Ack { reference, voter } => {
                encoder.put_u8(TAG_ACK);
                reference.encode(encoder);
                encoder.put_u32(voter.0);
            }
            Envelope::Certificate {
                reference,
                signatures,
            } => {
                encoder.put_u8(TAG_CERTIFICATE);
                reference.encode(encoder);
                encoder.put_u32(u32::try_from(*signatures).expect("signature count fits u32"));
            }
            Envelope::Request(references) => {
                encoder.put_u8(TAG_REQUEST);
                references.encode(encoder);
            }
            Envelope::Response(blocks) => {
                encoder.put_u8(TAG_RESPONSE);
                encoder.put_u32(u32::try_from(blocks.len()).expect("block count fits u32"));
                for block in blocks {
                    block.as_ref().encode(encoder);
                }
            }
            Envelope::Evidence(proof) => {
                encoder.put_u8(TAG_EVIDENCE);
                proof.encode(encoder);
            }
            Envelope::TxBatch(transactions) => {
                encoder.put_u8(TAG_TX_BATCH);
                encoder.put_u32(u32::try_from(transactions.len()).expect("batch count fits u32"));
                for transaction in transactions {
                    encoder.put_var_bytes(transaction.as_bytes());
                }
            }
            Envelope::Checkpoint(checkpoint) => {
                encoder.put_u8(TAG_CHECKPOINT);
                checkpoint.encode(encoder);
            }
            Envelope::CheckpointRequest => {
                encoder.put_u8(TAG_CHECKPOINT_REQUEST);
            }
            Envelope::CheckpointResponse {
                checkpoints,
                execution,
                resume,
            } => {
                encoder.put_u8(TAG_CHECKPOINT_RESPONSE);
                checkpoints.encode(encoder);
                encoder.put_var_bytes(execution);
                encoder.put_var_bytes(resume);
            }
            Envelope::TxReceipt(receipt) => {
                encoder.put_u8(TAG_TX_RECEIPT);
                receipt.encode(encoder);
            }
            Envelope::TxForward(transactions) => {
                encoder.put_u8(TAG_TX_FORWARD);
                encoder.put_u32(u32::try_from(transactions.len()).expect("batch count fits u32"));
                for transaction in transactions {
                    encoder.put_var_bytes(transaction.as_bytes());
                }
            }
        }
    }
}

impl Decode for Envelope {
    fn decode(decoder: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match decoder.get_u8()? {
            TAG_BLOCK => Ok(Envelope::Block(Block::decode(decoder)?.into_arc())),
            TAG_PROPOSAL => Ok(Envelope::Proposal(Block::decode(decoder)?.into_arc())),
            TAG_ACK => Ok(Envelope::Ack {
                reference: BlockRef::decode(decoder)?,
                voter: AuthorityIndex(decoder.get_u32()?),
            }),
            TAG_CERTIFICATE => Ok(Envelope::Certificate {
                reference: BlockRef::decode(decoder)?,
                signatures: decoder.get_u32()? as usize,
            }),
            TAG_REQUEST => Ok(Envelope::Request(Vec::<BlockRef>::decode(decoder)?)),
            TAG_RESPONSE => {
                let count = decoder.get_u32()? as usize;
                let mut blocks = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    blocks.push(Block::decode(decoder)?.into_arc());
                }
                Ok(Envelope::Response(blocks))
            }
            TAG_EVIDENCE => Ok(Envelope::Evidence(EquivocationProof::decode(decoder)?)),
            TAG_TX_BATCH => Ok(Envelope::TxBatch(decode_tx_list(decoder)?)),
            TAG_CHECKPOINT => Ok(Envelope::Checkpoint(Checkpoint::decode(decoder)?)),
            TAG_CHECKPOINT_REQUEST => Ok(Envelope::CheckpointRequest),
            TAG_CHECKPOINT_RESPONSE => {
                let checkpoints = Vec::<Checkpoint>::decode(decoder)?;
                if checkpoints.len() > MAX_RESPONSE_CHECKPOINTS {
                    return Err(CodecError::LengthOverflow(checkpoints.len() as u64));
                }
                let execution = decoder.get_var_bytes()?.to_vec();
                let resume = decoder.get_var_bytes()?.to_vec();
                Ok(Envelope::CheckpointResponse {
                    checkpoints,
                    execution,
                    resume,
                })
            }
            TAG_TX_RECEIPT => Ok(Envelope::TxReceipt(TxReceipt::decode(decoder)?)),
            TAG_TX_FORWARD => Ok(Envelope::TxForward(decode_tx_list(decoder)?)),
            _ => Err(CodecError::InvalidValue("envelope tag")),
        }
    }
}

/// Decodes the shared transaction-list body of [`Envelope::TxBatch`] and
/// [`Envelope::TxForward`] with full structural validation: non-empty, at
/// most [`MAX_BATCH_TXS`] transactions, each at most [`MAX_TX_WIRE_BYTES`]
/// bytes.
fn decode_tx_list(decoder: &mut Decoder<'_>) -> Result<Vec<Transaction>, CodecError> {
    let count = decoder.get_u32()? as usize;
    if count == 0 {
        return Err(CodecError::InvalidValue("empty tx batch"));
    }
    if count > MAX_BATCH_TXS {
        return Err(CodecError::LengthOverflow(count as u64));
    }
    let mut transactions = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let payload = decoder.get_var_bytes()?;
        if payload.len() > MAX_TX_WIRE_BYTES {
            return Err(CodecError::LengthOverflow(payload.len() as u64));
        }
        transactions.push(Transaction::new(payload.to_vec()));
    }
    Ok(transactions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::committee::TestCommittee;

    fn conflicting_pair(setup: &TestCommittee, author: u32) -> EquivocationProof {
        EquivocationProof::synthetic(setup, AuthorityIndex(author))
    }

    fn sample_checkpoint(setup: &TestCommittee, authority: u32) -> Checkpoint {
        use crate::checkpoint::StateRoot;
        use mahimahi_crypto::blake2b::blake2b_256;
        let authority = AuthorityIndex(authority);
        Checkpoint::sign(
            authority,
            32,
            Block::genesis(AuthorityIndex(0)).reference(),
            StateRoot(blake2b_256(b"state")),
            blake2b_256(b"resume"),
            setup.keypair(authority),
        )
    }

    #[test]
    fn all_variants_round_trip() {
        let setup = TestCommittee::new(4, 11);
        let genesis = Block::genesis(AuthorityIndex(1)).into_arc();
        let messages = vec![
            Envelope::Block(genesis.clone()),
            Envelope::Proposal(genesis.clone()),
            Envelope::Ack {
                reference: genesis.reference(),
                voter: AuthorityIndex(2),
            },
            Envelope::Certificate {
                reference: genesis.reference(),
                signatures: 3,
            },
            Envelope::Request(vec![genesis.reference()]),
            Envelope::Response(vec![genesis.clone()]),
            Envelope::Evidence(conflicting_pair(&setup, 1)),
            Envelope::TxBatch(vec![
                Transaction::benchmark(1),
                Transaction::new(vec![9; 3]),
            ]),
            Envelope::Checkpoint(sample_checkpoint(&setup, 0)),
            Envelope::CheckpointRequest,
            Envelope::CheckpointResponse {
                checkpoints: vec![
                    sample_checkpoint(&setup, 0),
                    sample_checkpoint(&setup, 1),
                    sample_checkpoint(&setup, 2),
                ],
                execution: vec![1, 2, 3],
                resume: vec![4, 5],
            },
            Envelope::TxReceipt(TxReceipt::Admission {
                tag: 77,
                verdicts: vec![
                    crate::receipt::TxVerdict::Accepted,
                    crate::receipt::TxVerdict::RateLimited,
                ],
            }),
            Envelope::TxReceipt(TxReceipt::Committed { tags: vec![77, 91] }),
            Envelope::TxForward(vec![
                Transaction::benchmark(3),
                Transaction::new(vec![8; 5]),
            ]),
        ];
        for message in messages {
            let bytes = message.to_bytes_vec();
            let decoded = Envelope::from_bytes_exact(&bytes).unwrap();
            match (&message, &decoded) {
                (Envelope::Block(a), Envelope::Block(b))
                | (Envelope::Proposal(a), Envelope::Proposal(b)) => {
                    assert_eq!(a.reference(), b.reference());
                }
                (
                    Envelope::Ack {
                        reference: a,
                        voter: x,
                    },
                    Envelope::Ack {
                        reference: b,
                        voter: y,
                    },
                ) => {
                    assert_eq!((a, x), (b, y));
                }
                (
                    Envelope::Certificate {
                        reference: a,
                        signatures: x,
                    },
                    Envelope::Certificate {
                        reference: b,
                        signatures: y,
                    },
                ) => {
                    assert_eq!((a, x), (b, y));
                }
                (Envelope::Request(a), Envelope::Request(b)) => assert_eq!(a, b),
                (Envelope::Response(a), Envelope::Response(b)) => {
                    assert_eq!(a.len(), b.len());
                    assert_eq!(a[0].reference(), b[0].reference());
                }
                (Envelope::Evidence(a), Envelope::Evidence(b)) => assert_eq!(a, b),
                (Envelope::TxBatch(a), Envelope::TxBatch(b))
                | (Envelope::TxForward(a), Envelope::TxForward(b)) => assert_eq!(a, b),
                (Envelope::TxReceipt(a), Envelope::TxReceipt(b)) => assert_eq!(a, b),
                (Envelope::Checkpoint(a), Envelope::Checkpoint(b)) => assert_eq!(a, b),
                (Envelope::CheckpointRequest, Envelope::CheckpointRequest) => {}
                (
                    Envelope::CheckpointResponse {
                        checkpoints: a,
                        execution: x,
                        resume: p,
                    },
                    Envelope::CheckpointResponse {
                        checkpoints: b,
                        execution: y,
                        resume: q,
                    },
                ) => {
                    assert_eq!((a, x, p), (b, y, q));
                }
                _ => panic!("variant changed in round trip"),
            }
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(Envelope::from_bytes_exact(&[0]).is_err());
        assert!(Envelope::from_bytes_exact(&[14]).is_err());
        assert!(Envelope::from_bytes_exact(&[255]).is_err());
    }

    #[test]
    fn tx_forward_shares_tx_batch_structural_validation() {
        // Empty forward frames are rejected like empty batches.
        let mut encoder = Encoder::new();
        encoder.put_u8(TAG_TX_FORWARD);
        encoder.put_u32(0);
        assert!(matches!(
            Envelope::from_bytes_exact(&encoder.into_bytes()),
            Err(CodecError::InvalidValue("empty tx batch"))
        ));
        // An oversized forwarded transaction is rejected at decode.
        let mut encoder = Encoder::new();
        encoder.put_u8(TAG_TX_FORWARD);
        encoder.put_u32(1);
        encoder.put_var_bytes(&vec![0u8; MAX_TX_WIRE_BYTES + 1]);
        assert!(matches!(
            Envelope::from_bytes_exact(&encoder.into_bytes()),
            Err(CodecError::LengthOverflow(_))
        ));
    }

    #[test]
    fn truncated_envelope_rejected() {
        let genesis = Block::genesis(AuthorityIndex(1)).into_arc();
        let bytes = Envelope::Block(genesis).to_bytes_vec();
        assert!(Envelope::from_bytes_exact(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn tx_batch_structural_validation_at_decode() {
        // Empty batches are rejected: the tag must not be usable as a
        // zero-cost keep-alive that still walks the ingress path.
        let mut encoder = Encoder::new();
        encoder.put_u8(TAG_TX_BATCH);
        encoder.put_u32(0);
        assert!(matches!(
            Envelope::from_bytes_exact(&encoder.into_bytes()),
            Err(CodecError::InvalidValue("empty tx batch"))
        ));
        // Oversized batch counts are rejected before any allocation of
        // that magnitude.
        let mut encoder = Encoder::new();
        encoder.put_u8(TAG_TX_BATCH);
        encoder.put_u32(MAX_BATCH_TXS as u32 + 1);
        assert!(matches!(
            Envelope::from_bytes_exact(&encoder.into_bytes()),
            Err(CodecError::LengthOverflow(_)) | Err(CodecError::UnexpectedEnd)
        ));
        // A single transaction above the wire cap is rejected.
        let mut encoder = Encoder::new();
        encoder.put_u8(TAG_TX_BATCH);
        encoder.put_u32(1);
        encoder.put_var_bytes(&vec![0u8; MAX_TX_WIRE_BYTES + 1]);
        assert!(matches!(
            Envelope::from_bytes_exact(&encoder.into_bytes()),
            Err(CodecError::LengthOverflow(_))
        ));
        // The boundary case passes.
        let batch = Envelope::TxBatch(vec![Transaction::new(vec![7; 128])]);
        let decoded = Envelope::from_bytes_exact(&batch.to_bytes_vec()).unwrap();
        assert!(matches!(decoded, Envelope::TxBatch(txs) if txs.len() == 1));
    }

    #[test]
    fn forged_evidence_is_rejected_at_decode() {
        // EquivocationProof::decode structurally re-validates: two blocks
        // that do not conflict must not decode into a proof.
        let setup = TestCommittee::new(4, 11);
        let proof = conflicting_pair(&setup, 2);
        let mut encoder = Encoder::new();
        encoder.put_u8(TAG_EVIDENCE);
        // Same block twice: author/round match but digests are equal.
        proof.first().as_ref().encode(&mut encoder);
        proof.first().as_ref().encode(&mut encoder);
        assert!(Envelope::from_bytes_exact(&encoder.into_bytes()).is_err());
    }
}
