//! Property tests pinning the committee-dense containers to the
//! `HashMap`/`HashSet` semantics they replaced on the hot path: random
//! operation sequences must produce identical observable state (membership,
//! cardinality, values, and sorted-order iteration), and validated index
//! construction must reject exactly the out-of-committee ids.

use mahimahi_types::{AuthorityIndex, AuthoritySet, CommitteeMap, MAX_DENSE_AUTHORITIES};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// The paper's largest evaluated committee — and the matrix scale row.
const COMMITTEE: u64 = 50;

/// Decodes one packed op: low bits select the authority, middle bits the
/// operation, high bits carry a payload value for map inserts.
fn decode(op: u64) -> (AuthorityIndex, u64, u64) {
    (
        AuthorityIndex((op % COMMITTEE) as u32),
        (op / COMMITTEE) % 4,
        op >> 32,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn authority_set_matches_hash_set_semantics(ops in vec(0u64..u64::MAX, 0..200)) {
        let mut dense = AuthoritySet::new();
        let mut model: HashSet<AuthorityIndex> = HashSet::new();
        for op in ops {
            let (authority, action, _) = decode(op);
            match action {
                0 | 3 => prop_assert_eq!(dense.insert(authority), model.insert(authority)),
                1 => prop_assert_eq!(dense.remove(authority), model.remove(&authority)),
                _ => prop_assert_eq!(dense.contains(authority), model.contains(&authority)),
            }
            prop_assert_eq!(dense.len(), model.len());
            prop_assert_eq!(dense.is_empty(), model.is_empty());
        }
        // Iteration is exactly the model in ascending index order.
        let mut expected: Vec<AuthorityIndex> = model.iter().copied().collect();
        expected.sort();
        prop_assert_eq!(dense.iter().collect::<Vec<_>>(), expected);
        // A round-trip through FromIterator is the identity.
        prop_assert_eq!(dense.iter().collect::<AuthoritySet>(), dense);
    }

    #[test]
    fn set_algebra_matches_hash_set_semantics(
        left in vec(0u64..COMMITTEE, 0..60),
        right in vec(0u64..COMMITTEE, 0..60),
    ) {
        let a: AuthoritySet = left.iter().map(|&i| AuthorityIndex(i as u32)).collect();
        let b: AuthoritySet = right.iter().map(|&i| AuthorityIndex(i as u32)).collect();
        let model_a: HashSet<AuthorityIndex> = a.iter().collect();
        let model_b: HashSet<AuthorityIndex> = b.iter().collect();
        let union: HashSet<AuthorityIndex> = a.union(&b).iter().collect();
        let intersection: HashSet<AuthorityIndex> = a.intersection(&b).iter().collect();
        prop_assert_eq!(&union, &model_a.union(&model_b).copied().collect::<HashSet<_>>());
        prop_assert_eq!(
            &intersection,
            &model_a.intersection(&model_b).copied().collect::<HashSet<_>>()
        );
        // Unit stake (the reproduction's committees) is the popcount.
        prop_assert_eq!(a.stake_weight(|_| 1), a.len() as u64);
    }

    #[test]
    fn committee_map_matches_hash_map_semantics(ops in vec(0u64..u64::MAX, 0..200)) {
        let mut dense: CommitteeMap<u64> = CommitteeMap::new(COMMITTEE as usize);
        let mut model: HashMap<AuthorityIndex, u64> = HashMap::new();
        for op in ops {
            let (authority, action, value) = decode(op);
            match action {
                0 => prop_assert_eq!(
                    dense.insert(authority, value),
                    model.insert(authority, value)
                ),
                1 => prop_assert_eq!(dense.remove(authority), model.remove(&authority)),
                2 => prop_assert_eq!(dense.get(authority), model.get(&authority)),
                _ => prop_assert_eq!(
                    *dense.get_or_insert_with(authority, || value),
                    *model.entry(authority).or_insert(value)
                ),
            }
            prop_assert_eq!(dense.len(), model.len());
            prop_assert_eq!(dense.is_empty(), model.is_empty());
            prop_assert_eq!(dense.contains_key(authority), model.contains_key(&authority));
        }
        // Iteration is exactly the model in ascending authority order.
        let mut expected: Vec<(AuthorityIndex, u64)> =
            model.iter().map(|(&k, &v)| (k, v)).collect();
        expected.sort();
        let entries: Vec<(AuthorityIndex, u64)> = dense.iter().map(|(k, &v)| (k, v)).collect();
        prop_assert_eq!(entries, expected);
        // The dense key view agrees with the model's key set.
        let keys: HashSet<AuthorityIndex> = dense.keys().iter().collect();
        prop_assert_eq!(&keys, &model.keys().copied().collect::<HashSet<_>>());
    }

    #[test]
    fn checked_construction_rejects_exactly_out_of_committee_ids(
        index in 0u64..(2 * MAX_DENSE_AUTHORITIES as u64),
        committee_size in 1usize..MAX_DENSE_AUTHORITIES,
    ) {
        match AuthorityIndex::checked(index, committee_size) {
            Ok(authority) => {
                prop_assert!((index as usize) < committee_size);
                prop_assert_eq!(authority, AuthorityIndex(index as u32));
            }
            Err(rejected) => {
                prop_assert!(index as usize >= committee_size);
                prop_assert_eq!(rejected.index, index);
                prop_assert_eq!(rejected.committee_size, committee_size);
            }
        }
    }
}
