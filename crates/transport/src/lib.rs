//! Length-prefixed TCP transport for networked validators.
//!
//! The paper's implementation "utilizes tokio for asynchronous networking
//! and employs raw TCP sockets for communication" (Section 4). tokio is not
//! in this reproduction's dependency budget; the same shape — one duplex
//! byte stream per peer pair, length-prefixed frames, automatic reconnect —
//! is built from `std::net` with a thread per connection and crossbeam
//! channels (DESIGN.md §3).
//!
//! Topology: every node binds one listener and opens one *outbound*
//! connection to every peer. A node's frames to a peer always travel over
//! its own outbound connection (two simplex connections per pair), which
//! keeps connection management trivial and preserves per-link FIFO.
//!
//! # Example
//!
//! ```
//! use mahimahi_transport::Transport;
//!
//! let a = Transport::bind(0, "127.0.0.1:0")?; // node 0, ephemeral port
//! let b = Transport::bind(1, "127.0.0.1:0")?;
//! a.connect(1, b.local_addr());
//! b.connect(0, a.local_addr());
//! a.send(1, b"hello".to_vec());
//! let (from, frame) = b.incoming().recv_timeout(std::time::Duration::from_secs(5)).unwrap();
//! assert_eq!((from, frame.as_slice()), (0, b"hello".as_ref()));
//! # Ok::<(), std::io::Error>(())
//! ```

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Maximum accepted frame size (64 MiB), mirroring the codec limit.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Identifies a peer (the validator's authority index).
pub type PeerId = u32;

/// A node's TCP endpoint: listener plus outbound peer connections.
pub struct Transport {
    id: PeerId,
    local_addr: SocketAddr,
    incoming_rx: Receiver<(PeerId, Vec<u8>)>,
    /// Kept alive so reader threads can clone it for new connections.
    _incoming_tx: Sender<(PeerId, Vec<u8>)>,
    peers: Arc<Mutex<HashMap<PeerId, Sender<Vec<u8>>>>>,
    shutdown: Arc<AtomicBool>,
}

impl Transport {
    /// Binds a listener for node `id` at `addr` (use port 0 for an
    /// ephemeral port) and starts the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind<A: ToSocketAddrs>(id: PeerId, addr: A) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (incoming_tx, incoming_rx) = unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_tx = incoming_tx.clone();
        let accept_shutdown = Arc::clone(&shutdown);
        thread::Builder::new()
            .name(format!("accept-{id}"))
            .spawn(move || accept_loop(listener, accept_tx, accept_shutdown))
            .expect("spawn accept thread");

        Ok(Transport {
            id,
            local_addr,
            incoming_rx,
            _incoming_tx: incoming_tx,
            peers: Arc::new(Mutex::new(HashMap::new())),
            shutdown,
        })
    }

    /// This node's identifier.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The bound listener address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The channel of received frames, tagged with the sending peer.
    pub fn incoming(&self) -> &Receiver<(PeerId, Vec<u8>)> {
        &self.incoming_rx
    }

    /// Registers `peer` at `addr` and starts its outbound sender (with
    /// automatic reconnect). Queued frames survive reconnects.
    pub fn connect(&self, peer: PeerId, addr: SocketAddr) {
        let (tx, rx) = unbounded::<Vec<u8>>();
        self.peers.lock().insert(peer, tx);
        let id = self.id;
        let shutdown = Arc::clone(&self.shutdown);
        thread::Builder::new()
            .name(format!("send-{id}-to-{peer}"))
            .spawn(move || sender_loop(id, addr, rx, shutdown))
            .expect("spawn sender thread");
    }

    /// Queues `frame` for `peer`. Silently ignores unknown peers (callers
    /// connect the full mesh at start-up).
    pub fn send(&self, peer: PeerId, frame: Vec<u8>) {
        if let Some(tx) = self.peers.lock().get(&peer) {
            let _ = tx.send(frame);
        }
    }

    /// Queues `frame` for every connected peer.
    pub fn broadcast(&self, frame: Vec<u8>) {
        let peers = self.peers.lock();
        for tx in peers.values() {
            let _ = tx.send(frame.clone());
        }
    }

    /// Signals all threads to stop. Subsequent sends are dropped.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.peers.lock().clear();
    }
}

impl Drop for Transport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    incoming: Sender<(PeerId, Vec<u8>)>,
    shutdown: Arc<AtomicBool>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let incoming = incoming.clone();
                let shutdown = Arc::clone(&shutdown);
                thread::Builder::new()
                    .name("reader".into())
                    .spawn(move || reader_loop(stream, incoming, shutdown))
                    .expect("spawn reader thread");
            }
            Err(ref error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Reads the peer's hello (its id), then frames, forwarding them upstream.
fn reader_loop(
    mut stream: TcpStream,
    incoming: Sender<(PeerId, Vec<u8>)>,
    shutdown: Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Some(hello) = read_frame_blocking(&mut stream, &shutdown) else {
        return;
    };
    if hello.len() != 4 {
        return;
    }
    let peer = PeerId::from_le_bytes(hello.try_into().expect("4 bytes"));
    while !shutdown.load(Ordering::SeqCst) {
        let Some(frame) = read_frame_blocking(&mut stream, &shutdown) else {
            return;
        };
        if incoming.send((peer, frame)).is_err() {
            return;
        }
    }
}

/// Reads one length-prefixed frame; `None` on disconnect, oversized frame,
/// or shutdown.
fn read_frame_blocking(stream: &mut TcpStream, shutdown: &AtomicBool) -> Option<Vec<u8>> {
    let mut header = [0u8; 4];
    read_exact_interruptible(stream, &mut header, shutdown)?;
    let length = u32::from_le_bytes(header);
    if length > MAX_FRAME_BYTES {
        return None;
    }
    let mut frame = vec![0u8; length as usize];
    read_exact_interruptible(stream, &mut frame, shutdown)?;
    Some(frame)
}

/// `read_exact` that re-checks the shutdown flag on read timeouts.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buffer: &mut [u8],
    shutdown: &AtomicBool,
) -> Option<()> {
    let mut filled = 0;
    while filled < buffer.len() {
        if shutdown.load(Ordering::SeqCst) {
            return None;
        }
        match stream.read(&mut buffer[filled..]) {
            Ok(0) => return None,
            Ok(read) => filled += read,
            Err(ref error)
                if error.kind() == std::io::ErrorKind::WouldBlock
                    || error.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return None,
        }
    }
    Some(())
}

/// Maintains the outbound connection: (re)connect with backoff, send the
/// hello, then drain the frame queue.
fn sender_loop(id: PeerId, addr: SocketAddr, frames: Receiver<Vec<u8>>, shutdown: Arc<AtomicBool>) {
    let mut backoff = Duration::from_millis(20);
    'reconnect: while !shutdown.load(Ordering::SeqCst) {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_secs(1));
            continue;
        };
        backoff = Duration::from_millis(20);
        let _ = stream.set_nodelay(true);
        if write_frame(&mut stream, &id.to_le_bytes()).is_err() {
            continue;
        }
        loop {
            match frames.recv_timeout(Duration::from_millis(200)) {
                Ok(frame) => {
                    if write_frame(&mut stream, &frame).is_err() {
                        // Connection lost; the frame is dropped (consensus
                        // recovers through the synchronizer).
                        continue 'reconnect;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(frame.len() as u32).to_le_bytes())?;
    stream.write_all(frame)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Transport, Transport) {
        let a = Transport::bind(0, "127.0.0.1:0").unwrap();
        let b = Transport::bind(1, "127.0.0.1:0").unwrap();
        a.connect(1, b.local_addr());
        b.connect(0, a.local_addr());
        (a, b)
    }

    #[test]
    fn frames_travel_both_ways() {
        let (a, b) = pair();
        a.send(1, vec![1, 2, 3]);
        b.send(0, vec![9]);
        let (from, frame) = b.incoming().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((from, frame), (0, vec![1, 2, 3]));
        let (from, frame) = a.incoming().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((from, frame), (1, vec![9]));
    }

    #[test]
    fn frames_preserve_order() {
        let (a, b) = pair();
        for i in 0..100u32 {
            a.send(1, i.to_le_bytes().to_vec());
        }
        for expected in 0..100u32 {
            let (_, frame) = b.incoming().recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(frame, expected.to_le_bytes().to_vec());
        }
    }

    #[test]
    fn broadcast_reaches_all_peers() {
        let a = Transport::bind(0, "127.0.0.1:0").unwrap();
        let b = Transport::bind(1, "127.0.0.1:0").unwrap();
        let c = Transport::bind(2, "127.0.0.1:0").unwrap();
        a.connect(1, b.local_addr());
        a.connect(2, c.local_addr());
        a.broadcast(vec![7; 10]);
        for receiver in [&b, &c] {
            let (from, frame) = receiver
                .incoming()
                .recv_timeout(Duration::from_secs(5))
                .unwrap();
            assert_eq!((from, frame), (0, vec![7; 10]));
        }
    }

    #[test]
    fn large_frames_round_trip() {
        let (a, b) = pair();
        let big = vec![0xabu8; 1_000_000];
        a.send(1, big.clone());
        let (_, frame) = b.incoming().recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(frame.len(), big.len());
        assert_eq!(frame, big);
    }

    #[test]
    fn queued_frames_survive_connect_before_peer_is_up() {
        // Send before the peer's listener address is connected: frames wait
        // in the queue and flush on connect.
        let a = Transport::bind(0, "127.0.0.1:0").unwrap();
        let b = Transport::bind(1, "127.0.0.1:0").unwrap();
        a.connect(1, b.local_addr());
        a.send(1, vec![42]);
        let (_, frame) = b.incoming().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(frame, vec![42]);
    }

    #[test]
    fn shutdown_stops_accepting_sends() {
        let (a, b) = pair();
        a.shutdown();
        a.send(1, vec![1]);
        assert!(b
            .incoming()
            .recv_timeout(Duration::from_millis(600))
            .is_err());
    }
}
