//! Length-prefixed TCP transport for networked validators.
//!
//! The paper's implementation "utilizes tokio for asynchronous networking
//! and employs raw TCP sockets for communication" (Section 4). tokio is not
//! in this reproduction's dependency budget; the same shape — one duplex
//! byte stream per peer pair, length-prefixed frames, automatic reconnect —
//! is built from `std::net` with a thread per connection and crossbeam
//! channels (DESIGN.md §3).
//!
//! Topology: every node binds one listener and opens one *outbound*
//! connection to every peer. A node's frames to a peer always travel over
//! its own outbound connection (two simplex connections per pair), which
//! keeps connection management trivial and preserves per-link FIFO.
//!
//! Client connections are the exception to the simplex rule: a client
//! (hello id [`CLIENT_HELLO`]) holds no listener to dial back, so its one
//! inbound connection is used duplex — the acceptor assigns it a fresh
//! id from the client range (starting at [`FIRST_CLIENT_ID`]), tags its
//! frames with that id, and spawns a writer over the same socket so
//! [`Transport::send`] to that id reaches the client (receipt frames).
//!
//! # Example
//!
//! ```
//! use mahimahi_transport::Transport;
//!
//! let a = Transport::bind(0, "127.0.0.1:0")?; // node 0, ephemeral port
//! let b = Transport::bind(1, "127.0.0.1:0")?;
//! a.connect(1, b.local_addr());
//! b.connect(0, a.local_addr());
//! a.send(1, b"hello".to_vec());
//! let (from, frame) = b.incoming().recv_timeout(std::time::Duration::from_secs(5)).unwrap();
//! assert_eq!((from, frame.as_slice()), (0, b"hello".as_ref()));
//! # Ok::<(), std::io::Error>(())
//! ```

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Maximum accepted frame size (64 MiB), mirroring the codec limit.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// The hello id client connections present: "I am not a validator,
/// assign me a connection id". Committee authority indexes are small, so
/// the maximum `u32` can never collide with one.
pub const CLIENT_HELLO: u32 = u32::MAX;

/// First id of the per-connection client range. Ids at or above this value
/// name accepted client connections (assigned in accept order); ids below
/// it name committee peers. `1 << 31` leaves room for two billion of each.
pub const FIRST_CLIENT_ID: u32 = 1 << 31;

/// Identifies a peer: the validator's authority index, or an assigned
/// client-connection id (`>=` [`FIRST_CLIENT_ID`]).
pub type PeerId = u32;

/// A node's TCP endpoint: listener plus outbound peer connections.
pub struct Transport {
    id: PeerId,
    local_addr: SocketAddr,
    incoming_rx: Receiver<(PeerId, Vec<u8>)>,
    /// Kept alive so reader threads can clone it for new connections.
    _incoming_tx: Sender<(PeerId, Vec<u8>)>,
    peers: Arc<Mutex<HashMap<PeerId, Sender<Vec<u8>>>>>,
    /// Writer queues of accepted client connections, keyed by their
    /// assigned ids — entries appear at client hello and vanish when the
    /// connection's reader exits.
    clients: Arc<Mutex<HashMap<PeerId, Sender<Vec<u8>>>>>,
    shutdown: Arc<AtomicBool>,
}

impl Transport {
    /// Binds a listener for node `id` at `addr` (use port 0 for an
    /// ephemeral port) and starts the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind<A: ToSocketAddrs>(id: PeerId, addr: A) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (incoming_tx, incoming_rx) = unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let clients = Arc::new(Mutex::new(HashMap::new()));

        let accept_tx = incoming_tx.clone();
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_clients = Arc::clone(&clients);
        thread::Builder::new()
            .name(format!("accept-{id}"))
            .spawn(move || accept_loop(listener, accept_tx, accept_clients, accept_shutdown))
            .expect("spawn accept thread");

        Ok(Transport {
            id,
            local_addr,
            incoming_rx,
            _incoming_tx: incoming_tx,
            peers: Arc::new(Mutex::new(HashMap::new())),
            clients,
            shutdown,
        })
    }

    /// This node's identifier.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The bound listener address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The channel of received frames, tagged with the sending peer.
    pub fn incoming(&self) -> &Receiver<(PeerId, Vec<u8>)> {
        &self.incoming_rx
    }

    /// Registers `peer` at `addr` and starts its outbound sender (with
    /// automatic reconnect). Queued frames survive reconnects.
    pub fn connect(&self, peer: PeerId, addr: SocketAddr) {
        let (tx, rx) = unbounded::<Vec<u8>>();
        self.peers.lock().insert(peer, tx);
        let id = self.id;
        let shutdown = Arc::clone(&self.shutdown);
        thread::Builder::new()
            .name(format!("send-{id}-to-{peer}"))
            .spawn(move || sender_loop(id, addr, rx, shutdown))
            .expect("spawn sender thread");
    }

    /// Queues `frame` for `peer` — a committee peer connected at start-up,
    /// or (ids `>=` [`FIRST_CLIENT_ID`]) an accepted client connection.
    /// Silently ignores unknown peers and clients that already hung up.
    pub fn send(&self, peer: PeerId, frame: Vec<u8>) {
        let registry = if peer >= FIRST_CLIENT_ID {
            &self.clients
        } else {
            &self.peers
        };
        if let Some(tx) = registry.lock().get(&peer) {
            let _ = tx.send(frame);
        }
    }

    /// Queues `frame` for every connected peer (committee only — client
    /// connections never receive consensus traffic).
    pub fn broadcast(&self, frame: Vec<u8>) {
        let peers = self.peers.lock();
        for tx in peers.values() {
            let _ = tx.send(frame.clone());
        }
    }

    /// Signals all threads to stop. Subsequent sends are dropped.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.peers.lock().clear();
        self.clients.lock().clear();
    }
}

impl Drop for Transport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    incoming: Sender<(PeerId, Vec<u8>)>,
    clients: Arc<Mutex<HashMap<PeerId, Sender<Vec<u8>>>>>,
    shutdown: Arc<AtomicBool>,
) {
    // Client-connection ids are assigned in accept order, per transport.
    let next_client = AtomicU32::new(FIRST_CLIENT_ID);
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let incoming = incoming.clone();
                let clients = Arc::clone(&clients);
                let shutdown = Arc::clone(&shutdown);
                let id = next_client.fetch_add(1, Ordering::Relaxed);
                thread::Builder::new()
                    .name("reader".into())
                    .spawn(move || reader_loop(stream, incoming, clients, id, shutdown))
                    .expect("spawn reader thread");
            }
            Err(ref error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Reads the peer's hello, then frames, forwarding them upstream.
///
/// A committee peer's hello carries its authority index, which tags every
/// subsequent frame. A [`CLIENT_HELLO`] instead claims `client_id`: the
/// frames are tagged with that assigned id, and a writer thread over the
/// same socket drains a registered queue so `send(client_id, ..)` reaches
/// the client — deregistered when the connection drops.
fn reader_loop(
    mut stream: TcpStream,
    incoming: Sender<(PeerId, Vec<u8>)>,
    clients: Arc<Mutex<HashMap<PeerId, Sender<Vec<u8>>>>>,
    client_id: PeerId,
    shutdown: Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Some(hello) = read_frame_blocking(&mut stream, &shutdown) else {
        return;
    };
    if hello.len() != 4 {
        return;
    }
    let mut peer = PeerId::from_le_bytes(hello.try_into().expect("4 bytes"));
    let mut registered = false;
    if peer == CLIENT_HELLO {
        peer = client_id;
        if let Ok(write_half) = stream.try_clone() {
            let (tx, rx) = unbounded::<Vec<u8>>();
            clients.lock().insert(client_id, tx);
            registered = true;
            let writer_shutdown = Arc::clone(&shutdown);
            thread::Builder::new()
                .name("client-writer".into())
                .spawn(move || client_writer_loop(write_half, rx, writer_shutdown))
                .expect("spawn client writer thread");
        }
    }
    while !shutdown.load(Ordering::SeqCst) {
        let Some(frame) = read_frame_blocking(&mut stream, &shutdown) else {
            break;
        };
        if incoming.send((peer, frame)).is_err() {
            break;
        }
    }
    if registered {
        // Dropping the queue sender disconnects the writer's receiver,
        // which exits the writer thread.
        clients.lock().remove(&client_id);
    }
}

/// Drains a client connection's send queue onto its socket (the duplex
/// write half). Exits on write failure, queue disconnect, or shutdown.
fn client_writer_loop(mut stream: TcpStream, frames: Receiver<Vec<u8>>, shutdown: Arc<AtomicBool>) {
    loop {
        match frames.recv_timeout(Duration::from_millis(200)) {
            Ok(frame) => {
                if write_frame(&mut stream, &frame).is_err() {
                    return;
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Reads one length-prefixed frame; `None` on disconnect, oversized frame,
/// or shutdown.
fn read_frame_blocking(stream: &mut TcpStream, shutdown: &AtomicBool) -> Option<Vec<u8>> {
    let mut header = [0u8; 4];
    read_exact_interruptible(stream, &mut header, shutdown)?;
    let length = u32::from_le_bytes(header);
    if length > MAX_FRAME_BYTES {
        return None;
    }
    let mut frame = vec![0u8; length as usize];
    read_exact_interruptible(stream, &mut frame, shutdown)?;
    Some(frame)
}

/// `read_exact` that re-checks the shutdown flag on read timeouts.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buffer: &mut [u8],
    shutdown: &AtomicBool,
) -> Option<()> {
    let mut filled = 0;
    while filled < buffer.len() {
        if shutdown.load(Ordering::SeqCst) {
            return None;
        }
        match stream.read(&mut buffer[filled..]) {
            Ok(0) => return None,
            Ok(read) => filled += read,
            Err(ref error)
                if error.kind() == std::io::ErrorKind::WouldBlock
                    || error.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return None,
        }
    }
    Some(())
}

/// Maintains the outbound connection: (re)connect with backoff, send the
/// hello, then drain the frame queue.
fn sender_loop(id: PeerId, addr: SocketAddr, frames: Receiver<Vec<u8>>, shutdown: Arc<AtomicBool>) {
    let mut backoff = Duration::from_millis(20);
    'reconnect: while !shutdown.load(Ordering::SeqCst) {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_secs(1));
            continue;
        };
        backoff = Duration::from_millis(20);
        let _ = stream.set_nodelay(true);
        if write_frame(&mut stream, &id.to_le_bytes()).is_err() {
            continue;
        }
        loop {
            match frames.recv_timeout(Duration::from_millis(200)) {
                Ok(frame) => {
                    if write_frame(&mut stream, &frame).is_err() {
                        // Connection lost; the frame is dropped (consensus
                        // recovers through the synchronizer).
                        continue 'reconnect;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(frame.len() as u32).to_le_bytes())?;
    stream.write_all(frame)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Transport, Transport) {
        let a = Transport::bind(0, "127.0.0.1:0").unwrap();
        let b = Transport::bind(1, "127.0.0.1:0").unwrap();
        a.connect(1, b.local_addr());
        b.connect(0, a.local_addr());
        (a, b)
    }

    #[test]
    fn frames_travel_both_ways() {
        let (a, b) = pair();
        a.send(1, vec![1, 2, 3]);
        b.send(0, vec![9]);
        let (from, frame) = b.incoming().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((from, frame), (0, vec![1, 2, 3]));
        let (from, frame) = a.incoming().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((from, frame), (1, vec![9]));
    }

    #[test]
    fn frames_preserve_order() {
        let (a, b) = pair();
        for i in 0..100u32 {
            a.send(1, i.to_le_bytes().to_vec());
        }
        for expected in 0..100u32 {
            let (_, frame) = b.incoming().recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(frame, expected.to_le_bytes().to_vec());
        }
    }

    #[test]
    fn broadcast_reaches_all_peers() {
        let a = Transport::bind(0, "127.0.0.1:0").unwrap();
        let b = Transport::bind(1, "127.0.0.1:0").unwrap();
        let c = Transport::bind(2, "127.0.0.1:0").unwrap();
        a.connect(1, b.local_addr());
        a.connect(2, c.local_addr());
        a.broadcast(vec![7; 10]);
        for receiver in [&b, &c] {
            let (from, frame) = receiver
                .incoming()
                .recv_timeout(Duration::from_secs(5))
                .unwrap();
            assert_eq!((from, frame), (0, vec![7; 10]));
        }
    }

    #[test]
    fn large_frames_round_trip() {
        let (a, b) = pair();
        let big = vec![0xabu8; 1_000_000];
        a.send(1, big.clone());
        let (_, frame) = b.incoming().recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(frame.len(), big.len());
        assert_eq!(frame, big);
    }

    #[test]
    fn queued_frames_survive_connect_before_peer_is_up() {
        // Send before the peer's listener address is connected: frames wait
        // in the queue and flush on connect.
        let a = Transport::bind(0, "127.0.0.1:0").unwrap();
        let b = Transport::bind(1, "127.0.0.1:0").unwrap();
        a.connect(1, b.local_addr());
        a.send(1, vec![42]);
        let (_, frame) = b.incoming().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(frame, vec![42]);
    }

    #[test]
    fn client_connections_get_ids_and_duplex_replies() {
        // A "client" dials in with the CLIENT_HELLO id: its frames arrive
        // tagged with an assigned id from the client range, and send() to
        // that id travels back down the same socket.
        let transport = Transport::bind(0, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(transport.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        write_frame(&mut stream, &CLIENT_HELLO.to_le_bytes()).unwrap();
        write_frame(&mut stream, &[7, 8, 9]).unwrap();
        let (from, frame) = transport
            .incoming()
            .recv_timeout(Duration::from_secs(5))
            .unwrap();
        assert!(from >= FIRST_CLIENT_ID, "client id out of range: {from}");
        assert_eq!(frame, vec![7, 8, 9]);

        transport.send(from, vec![42; 3]);
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut header = [0u8; 4];
        stream.read_exact(&mut header).unwrap();
        assert_eq!(u32::from_le_bytes(header), 3);
        let mut reply = [0u8; 3];
        stream.read_exact(&mut reply).unwrap();
        assert_eq!(reply, [42; 3]);
    }

    #[test]
    fn distinct_client_connections_get_distinct_ids() {
        let transport = Transport::bind(0, "127.0.0.1:0").unwrap();
        let mut first = TcpStream::connect(transport.local_addr()).unwrap();
        let mut second = TcpStream::connect(transport.local_addr()).unwrap();
        for stream in [&mut first, &mut second] {
            write_frame(stream, &CLIENT_HELLO.to_le_bytes()).unwrap();
            write_frame(stream, &[1]).unwrap();
        }
        let (a, _) = transport
            .incoming()
            .recv_timeout(Duration::from_secs(5))
            .unwrap();
        let (b, _) = transport
            .incoming()
            .recv_timeout(Duration::from_secs(5))
            .unwrap();
        assert_ne!(a, b);
        assert!(a >= FIRST_CLIENT_ID && b >= FIRST_CLIENT_ID);
    }

    #[test]
    fn shutdown_stops_accepting_sends() {
        let (a, b) = pair();
        a.shutdown();
        a.send(1, vec![1]);
        assert!(b
            .incoming()
            .recv_timeout(Duration::from_millis(600))
            .is_err());
    }
}
