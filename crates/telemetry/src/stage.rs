//! Commit-path stage tracing.
//!
//! Every transaction batch (and every block) crosses eight observable
//! pipeline boundaries on its way from a client socket to a commit receipt:
//!
//! ```text
//! ingress-received → verify-dequeued → verified → resequenced
//!     → engine-applied → sequenced → executed → receipt-sent
//! ```
//!
//! Each stage's histogram records the time an item spent *in* that stage —
//! the delta between the stage's boundary and the previous one — so the
//! per-stage p99s decompose the end-to-end latency. Stages that are
//! synchronous in the current architecture (execution applies inside the
//! same `handle` call that sequences, receipts are emitted immediately
//! after) record honest zeros; the histogram exists so an asynchronous
//! implementation lands with its instrumentation already wired.
//!
//! Drivers record the ingress/verify/resequence boundaries (they own the
//! clocks and the queues); the engine reports the sequenced/executed/
//! receipt boundaries through its `TelemetrySink` without ever reading a
//! clock itself.

use std::sync::Arc;

use crate::metrics::{Histogram, HistogramSnapshot};
use crate::registry::Registry;

/// Number of pipeline stages.
pub const STAGE_COUNT: usize = 8;

/// One commit-path pipeline stage (see the module docs for the sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// A frame or batch arrived at the validator (network or client edge).
    IngressReceived = 0,
    /// The item left the ingress queue and entered the verify stage.
    VerifyDequeued = 1,
    /// Signature/structure verification completed.
    Verified = 2,
    /// The item was released by the resequencer in submission order.
    Resequenced = 3,
    /// The sequential engine core applied the item.
    EngineApplied = 4,
    /// The transaction was linearized into the committed total order.
    Sequenced = 5,
    /// The execution layer applied the committed sub-DAG.
    Executed = 6,
    /// The commit receipt left for the submitting client.
    ReceiptSent = 7,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::IngressReceived,
        Stage::VerifyDequeued,
        Stage::Verified,
        Stage::Resequenced,
        Stage::EngineApplied,
        Stage::Sequenced,
        Stage::Executed,
        Stage::ReceiptSent,
    ];

    /// The stage's snake_case name (also its metric-name suffix).
    pub fn name(self) -> &'static str {
        match self {
            Stage::IngressReceived => "ingress_received",
            Stage::VerifyDequeued => "verify_dequeued",
            Stage::Verified => "verified",
            Stage::Resequenced => "resequenced",
            Stage::EngineApplied => "engine_applied",
            Stage::Sequenced => "sequenced",
            Stage::Executed => "executed",
            Stage::ReceiptSent => "receipt_sent",
        }
    }
}

/// Per-stage histogram metric names, in [`Stage::ALL`] order (static so the
/// registry's `&'static str` keys need no leaking or allocation).
const STAGE_METRIC_NAMES: [&str; STAGE_COUNT] = [
    "mahimahi_stage_ingress_received_seconds",
    "mahimahi_stage_verify_dequeued_seconds",
    "mahimahi_stage_verified_seconds",
    "mahimahi_stage_resequenced_seconds",
    "mahimahi_stage_engine_applied_seconds",
    "mahimahi_stage_sequenced_seconds",
    "mahimahi_stage_executed_seconds",
    "mahimahi_stage_receipt_sent_seconds",
];

const STAGE_METRIC_HELP: [&str; STAGE_COUNT] = [
    "Time from wire arrival to ingress pickup",
    "Time waiting in the ingress queue before the verify stage",
    "Time spent in signature/structure verification",
    "Time parked in the resequencer awaiting submission order",
    "Time from resequencer release to engine apply",
    "Time from engine apply to commit linearization",
    "Time from commit linearization to execution apply",
    "Time from execution apply to receipt emission",
];

/// One histogram per pipeline stage, registered in a [`Registry`].
///
/// Cloneable handle set: recording is lock-free through the shared
/// histogram `Arc`s, so a driver can hand one `StageStats` to its event
/// loop and another to the engine's telemetry sink.
#[derive(Clone)]
pub struct StageStats {
    histograms: [Arc<Histogram>; STAGE_COUNT],
}

impl StageStats {
    /// Registers the eight per-stage histograms in `registry` (get-or-create
    /// by name: several `StageStats` over one registry share histograms).
    pub fn new(registry: &Registry) -> Self {
        let histograms = std::array::from_fn(|index| {
            registry.histogram(STAGE_METRIC_NAMES[index], STAGE_METRIC_HELP[index])
        });
        StageStats { histograms }
    }

    /// Creates stats over a private throwaway registry (tests, default
    /// sinks that still want recording).
    pub fn detached() -> Self {
        StageStats::new(&Registry::new())
    }

    /// Records that an item spent `micros` in `stage`.
    pub fn record(&self, stage: Stage, micros: u64) {
        self.histograms[stage as usize].record(micros);
    }

    /// Point-in-time copy of all eight stage histograms.
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            stages: std::array::from_fn(|index| self.histograms[index].snapshot()),
        }
    }
}

impl std::fmt::Debug for StageStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageStats").finish_non_exhaustive()
    }
}

/// Immutable per-stage histogram snapshots, mergeable across validators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSnapshot {
    stages: [HistogramSnapshot; STAGE_COUNT],
}

impl Default for StageSnapshot {
    fn default() -> Self {
        StageSnapshot {
            stages: [HistogramSnapshot::default(); STAGE_COUNT],
        }
    }
}

impl StageSnapshot {
    /// The histogram snapshot for `stage`.
    pub fn stage(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage as usize]
    }

    /// Merges `other` stage-wise (associative, commutative).
    pub fn merge(&mut self, other: &StageSnapshot) {
        for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
            mine.merge(theirs);
        }
    }

    /// Whether every stage has at least one sample.
    pub fn all_stages_populated(&self) -> bool {
        self.stages.iter().all(|stage| !stage.is_empty())
    }

    /// Sum of the per-stage p99s in seconds — the stage-decomposed latency
    /// bound compared against the measured end-to-end p99.
    pub fn p99_sum_s(&self) -> f64 {
        self.stages.iter().map(HistogramSnapshot::p99_s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_record_into_their_own_histograms() {
        let registry = Registry::new();
        let stats = StageStats::new(&registry);
        for (index, stage) in Stage::ALL.iter().enumerate() {
            stats.record(*stage, (index as u64 + 1) * 1000);
        }
        let snapshot = stats.snapshot();
        assert!(snapshot.all_stages_populated());
        assert_eq!(snapshot.stage(Stage::IngressReceived).count(), 1);
        assert_eq!(snapshot.stage(Stage::ReceiptSent).sum_micros(), 8000);
        let p99_sum = snapshot.p99_sum_s();
        assert!(p99_sum > 0.0);
        // The registry rendered all eight series.
        let text = registry.render_prometheus();
        for name in STAGE_METRIC_NAMES {
            assert!(text.contains(name), "{name} missing from exposition");
        }
    }

    #[test]
    fn clones_share_the_underlying_histograms() {
        let registry = Registry::new();
        let a = StageStats::new(&registry);
        let b = a.clone();
        a.record(Stage::Sequenced, 10);
        b.record(Stage::Sequenced, 20);
        assert_eq!(a.snapshot().stage(Stage::Sequenced).count(), 2);
    }

    #[test]
    fn snapshots_merge_stage_wise() {
        let a = StageStats::detached();
        a.record(Stage::Verified, 100);
        let b = StageStats::detached();
        b.record(Stage::Verified, 200);
        b.record(Stage::Executed, 0);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.stage(Stage::Verified).count(), 2);
        assert_eq!(merged.stage(Stage::Executed).count(), 1);
        assert!(!merged.all_stages_populated());
    }
}
