//! Dependency-free, allocation-light metrics core.
//!
//! Every observable quantity in the system flows through this crate:
//!
//! - [`Counter`] — a monotonically increasing `u64` (events, bytes,
//!   transactions).
//! - [`Gauge`] — an instantaneous `u64` level (queue depths, pool
//!   occupancy).
//! - [`Histogram`] — a fixed-bucket log-scale (powers-of-two microseconds)
//!   latency distribution with an exact-maximum overflow bucket.
//! - [`LatencyStats`] / [`LatencySnapshot`] — the histogram's exact-sample
//!   sibling for offline reports where every sample fits in memory.
//! - [`Registry`] — the name → metric table behind the hand-rolled
//!   Prometheus text exposition ([`Registry::render_prometheus`]).
//! - [`Stage`] / [`StageStats`] — commit-path stage tracing: one histogram
//!   per pipeline stage, from client ingress to receipt emission.
//!
//! # Design constraints
//!
//! The hot path is a single relaxed atomic add: metric handles are `Arc`s
//! handed out once at registration ([`Registry::counter`] and friends take
//! a lock; recording never does). The crate has **no dependencies** and
//! never reads a clock — all durations are microsecond `u64`s supplied by
//! the caller, so the deterministic drivers (simulator, loopback cluster)
//! feed virtual time and the TCP node feeds wall time through the same
//! types. Nothing in here can perturb consensus: recording returns no
//! value a caller could branch on.

mod metrics;
mod registry;
mod stage;
mod stats;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use registry::Registry;
pub use stage::{Stage, StageSnapshot, StageStats, STAGE_COUNT};
pub use stats::{LatencySnapshot, LatencyStats};

/// Microseconds per second (the crate's only unit conversion; durations
/// are microsecond `u64`s everywhere, matching `mahimahi_net::time`).
pub const SECOND_MICROS: u64 = 1_000_000;

/// Renders a microsecond duration as fractional seconds.
pub fn as_secs_f64(micros: u64) -> f64 {
    micros as f64 / SECOND_MICROS as f64
}
