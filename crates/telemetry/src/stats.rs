//! Exact-sample latency statistics — the histogram's offline sibling.
//!
//! Where [`crate::Histogram`] trades resolution for a fixed footprint (the
//! live node must bound memory), [`LatencyStats`] keeps every sample and is
//! used by the offline harnesses (simulator reports, bench phases) where a
//! run's samples comfortably fit in memory and exact quantiles matter.
//!
//! Quantile queries go through an immutable [`LatencySnapshot`] taken with
//! [`LatencyStats::snapshot`]: the recorder itself never needs `&mut self`
//! for reads, so reports can be rendered from shared references without
//! mutating state (the previous design sorted in place behind `&mut self`,
//! which forced every read path to clone or take exclusive access).

/// Microsecond duration samples (client submission → commit, stage waits…).
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<u64>,
}

impl LatencyStats {
    /// Records one sample in microseconds.
    pub fn record(&mut self, micros: u64) {
        self.samples.push(micros);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean in seconds (0 when empty).
    ///
    /// Computed entirely in `f64`: averaging in integer microseconds first
    /// truncates (a sub-microsecond-resolved mean collapses toward 0 on
    /// small samples), which skewed every latency table.
    pub fn mean_s(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.samples.iter().map(|&s| s as f64).sum();
        sum / self.samples.len() as f64 / crate::SECOND_MICROS as f64
    }

    /// Maximum in seconds.
    pub fn max_s(&self) -> f64 {
        crate::as_secs_f64(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// An immutable sorted copy for quantile queries.
    pub fn snapshot(&self) -> LatencySnapshot {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        LatencySnapshot { sorted }
    }
}

/// An immutable, sorted sample set: all quantile math happens here, behind
/// `&self`, leaving the recording [`LatencyStats`] untouched.
#[derive(Debug, Clone, Default)]
pub struct LatencySnapshot {
    sorted: Vec<u64>,
}

impl LatencySnapshot {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Mean in seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.sorted.iter().map(|&s| s as f64).sum();
        sum / self.sorted.len() as f64 / crate::SECOND_MICROS as f64
    }

    /// The `q`-quantile in seconds (0 when empty), using the ceil
    /// nearest-rank convention: the smallest sample such that at least
    /// `q · n` samples are ≤ it (rank `⌈q · n⌉`). Interpolating
    /// conventions underestimate tail quantiles on small samples — e.g.
    /// p99 of 60 samples must be the maximum, not the 59th value.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_s(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.sorted.is_empty() {
            return 0.0;
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        let index = rank.saturating_sub(1).min(self.sorted.len() - 1);
        crate::as_secs_f64(self.sorted[index])
    }

    /// Median in seconds.
    pub fn p50_s(&self) -> f64 {
        self.quantile_s(0.5)
    }

    /// 99th percentile in seconds.
    pub fn p99_s(&self) -> f64 {
        self.quantile_s(0.99)
    }

    /// Maximum in seconds.
    pub fn max_s(&self) -> f64 {
        crate::as_secs_f64(self.sorted.last().copied().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000;

    #[test]
    fn stats_on_known_samples() {
        let mut stats = LatencyStats::default();
        for ms in [100u64, 200, 300, 400, 500] {
            stats.record(ms * MS);
        }
        assert_eq!(stats.len(), 5);
        assert!((stats.mean_s() - 0.3).abs() < 1e-9);
        let snapshot = stats.snapshot();
        assert!((snapshot.p50_s() - 0.3).abs() < 1e-9);
        assert!((snapshot.max_s() - 0.5).abs() < 1e-9);
        assert!((snapshot.quantile_s(0.0) - 0.1).abs() < 1e-9);
        assert!((snapshot.quantile_s(1.0) - 0.5).abs() < 1e-9);
        // Taking a snapshot does not disturb the recorder.
        assert_eq!(stats.len(), 5);
        assert!((stats.max_s() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn snapshot_is_readable_through_shared_references() {
        let mut stats = LatencyStats::default();
        stats.record(7 * MS);
        let snapshot = stats.snapshot();
        let by_ref: &LatencySnapshot = &snapshot;
        // Quantiles through `&self`: the point of the snapshot split.
        assert!((by_ref.p99_s() - 0.007).abs() < 1e-9);
        assert!((by_ref.mean_s() - 0.007).abs() < 1e-9);
    }

    #[test]
    fn mean_does_not_truncate_sub_unit_values() {
        let mut stats = LatencyStats::default();
        stats.record(0);
        stats.record(1); // 1 µs; integer mean of {0, 1} truncated to 0
        assert!((stats.mean_s() - 0.5e-6).abs() < 1e-12);
    }

    #[test]
    fn quantiles_use_ceil_nearest_rank() {
        let mut stats = LatencyStats::default();
        for ms in (1..=10u64).map(|i| i * 100) {
            stats.record(ms * MS);
        }
        let snapshot = stats.snapshot();
        // p99 rank = ⌈0.99 × 10⌉ = 10 → the maximum.
        assert!((snapshot.p99_s() - 1.0).abs() < 1e-9);
        // Nearest-rank p50 of 10 samples is the 5th sorted value.
        assert!((snapshot.p50_s() - 0.5).abs() < 1e-9);
        assert!((snapshot.quantile_s(0.1) - 0.1).abs() < 1e-9);

        // 60 samples: p99 rank = ⌈59.4⌉ = 60 → the maximum.
        let mut stats = LatencyStats::default();
        for ms in (1..=60u64).map(|i| i * 10) {
            stats.record(ms * MS);
        }
        assert!((stats.snapshot().p99_s() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = LatencyStats::default();
        assert!(stats.is_empty());
        assert_eq!(stats.mean_s(), 0.0);
        let snapshot = stats.snapshot();
        assert!(snapshot.is_empty());
        assert_eq!(snapshot.p99_s(), 0.0);
        assert_eq!(snapshot.max_s(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_bounds_checked() {
        let mut stats = LatencyStats::default();
        stats.record(1);
        let _ = stats.snapshot().quantile_s(1.5);
    }
}
