//! The three metric primitives: counters, gauges, log-scale histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
///
/// Recording is one relaxed atomic add; reads are relaxed loads. The
/// monotonicity contract is by convention ([`Counter::add`] only adds), not
/// enforcement — there is no `set`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, pool occupancy, round number).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the level.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the level to at least `value` (running high-water mark).
    pub fn set_max(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i < 31` counts samples in
/// `(2^(i-1), 2^i]` microseconds (bucket 0 is `[0, 1]`); bucket 31 is the
/// overflow bucket (`> 2^30 µs ≈ 17.9 min`), whose exact maximum is
/// tracked separately.
pub const BUCKET_COUNT: usize = 32;

const OVERFLOW: usize = BUCKET_COUNT - 1;

/// Fixed-bucket log-scale latency histogram.
///
/// Buckets are powers of two of microseconds — dependency-free, branch-light
/// (`leading_zeros`), and wide enough (1 µs … ~18 min) for every pipeline
/// stage. Recording is three relaxed atomic operations (bucket count, total
/// count + sum are folded into two adds plus a `fetch_max` for the exact
/// maximum). Aggregation happens on [`HistogramSnapshot`]s, never on the
/// live histogram.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

/// The bucket index holding `micros`.
fn bucket_index(micros: u64) -> usize {
    if micros <= 1 {
        0
    } else {
        ((64 - (micros - 1).leading_zeros()) as usize).min(OVERFLOW)
    }
}

/// The inclusive upper bound of finite bucket `index`, in microseconds.
fn bucket_upper_micros(index: usize) -> u64 {
    1 << index
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one duration sample in microseconds.
    pub fn record(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// An immutable point-in-time copy for quantile math and merging.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKET_COUNT];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// An immutable histogram copy: quantiles, merging, exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKET_COUNT],
    sum_micros: u64,
    max_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKET_COUNT],
            sum_micros: 0,
            max_micros: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sum of all samples in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros
    }

    /// Exact maximum sample in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Mean sample in seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum_micros as f64 / count as f64 / crate::SECOND_MICROS as f64
    }

    /// The `q`-quantile in seconds, estimated by ceil nearest-rank over the
    /// buckets with linear interpolation inside the selected bucket (the
    /// same estimator `histogram_quantile` uses). The overflow bucket
    /// interpolates toward the exact tracked maximum, so `quantile_s(1.0)`
    /// returns the true maximum.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_s(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut before = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            if bucket == 0 {
                before += bucket;
                continue;
            }
            if before + bucket >= rank {
                let lower = if index == 0 {
                    0
                } else {
                    bucket_upper_micros(index - 1)
                };
                let upper = if index == OVERFLOW {
                    self.max_micros.max(lower)
                } else {
                    bucket_upper_micros(index).min(self.max_micros)
                };
                let fraction = (rank - before) as f64 / bucket as f64;
                let micros = lower as f64 + fraction * (upper.saturating_sub(lower)) as f64;
                return micros / crate::SECOND_MICROS as f64;
            }
            before += bucket;
        }
        crate::as_secs_f64(self.max_micros)
    }

    /// Median in seconds.
    pub fn p50_s(&self) -> f64 {
        self.quantile_s(0.5)
    }

    /// 99th percentile in seconds.
    pub fn p99_s(&self) -> f64 {
        self.quantile_s(0.99)
    }

    /// Merges `other` into `self` (bucket-wise addition). Associative and
    /// commutative: merging per-validator snapshots in any order yields the
    /// same cluster-wide histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (slot, value) in self.buckets.iter_mut().zip(&other.buckets) {
            *slot += value;
        }
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// Cumulative `(upper_bound_seconds, count_le)` pairs for Prometheus
    /// exposition; the final pair is the `+Inf` bucket rendered as
    /// `f64::INFINITY`.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(BUCKET_COUNT);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            let le = if index == OVERFLOW {
                f64::INFINITY
            } else {
                crate::as_secs_f64(bucket_upper_micros(index))
            };
            out.push((le, cumulative));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Log-scale edges: value 2^k lands in the bucket whose upper bound
        // is 2^k (inclusive), value 2^k + 1 in the next one.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        for k in 1..30 {
            assert_eq!(bucket_index(1 << k), k, "2^{k} on its own edge");
            assert_eq!(bucket_index((1 << k) + 1), k + 1, "2^{k}+1 spills");
        }
    }

    #[test]
    fn overflow_bucket_catches_the_tail() {
        let histogram = Histogram::new();
        histogram.record(1 << 30); // last finite bucket edge
        histogram.record((1 << 30) + 1); // first overflow value
        histogram.record(u64::MAX); // extreme overflow
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count(), 3);
        assert_eq!(snapshot.max_micros(), u64::MAX);
        assert_eq!(snapshot.cumulative_buckets()[OVERFLOW].1, 3);
        assert_eq!(snapshot.cumulative_buckets()[OVERFLOW - 1].1, 1);
        assert!(snapshot.cumulative_buckets()[OVERFLOW].0.is_infinite());
        // The maximum quantile reports the exact tracked maximum.
        let max_s = snapshot.quantile_s(1.0);
        assert!((max_s - u64::MAX as f64 / 1e6).abs() / max_s < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let histogram = Histogram::new();
        for micros in 1..=1000u64 {
            histogram.record(micros * 100); // 100 µs … 100 ms, uniform
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count(), 1000);
        // With log-scale buckets the estimate is bucket-resolution bounded:
        // the true quantile and the estimate differ by at most 2× (one
        // bucket width), and interpolation keeps typical error far smaller.
        let p50 = snapshot.p50_s();
        assert!((0.025..=0.1).contains(&p50), "p50 {p50}");
        let p99 = snapshot.p99_s();
        assert!((0.05..=0.2).contains(&p99), "p99 {p99}");
        assert!(p50 < p99);
        // The mean is exact (sum / count), unaffected by bucketing.
        assert!((snapshot.mean_s() - 0.050_05).abs() < 1e-9);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let parts: Vec<HistogramSnapshot> = (0u64..3)
            .map(|part| {
                let histogram = Histogram::new();
                for i in 0..50 {
                    histogram.record((part + 1) * 1000 + i * 37);
                }
                histogram.snapshot()
            })
            .collect();
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) == c ⊕ a ⊕ b
        let mut left = parts[0];
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut right_inner = parts[1];
        right_inner.merge(&parts[2]);
        let mut right = parts[0];
        right.merge(&right_inner);
        let mut shuffled = parts[2];
        shuffled.merge(&parts[0]);
        shuffled.merge(&parts[1]);
        assert_eq!(left, right);
        assert_eq!(left, shuffled);
        assert_eq!(left.count(), 150);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let snapshot = Histogram::new().snapshot();
        assert!(snapshot.is_empty());
        assert_eq!(snapshot.mean_s(), 0.0);
        assert_eq!(snapshot.p99_s(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_bounds_checked() {
        let histogram = Histogram::new();
        histogram.record(5);
        let _ = histogram.snapshot().quantile_s(1.01);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let counter = Counter::new();
        counter.inc();
        counter.add(9);
        assert_eq!(counter.get(), 10);
        let gauge = Gauge::new();
        gauge.set(7);
        gauge.set_max(3); // lower: no effect
        assert_eq!(gauge.get(), 7);
        gauge.set_max(11);
        assert_eq!(gauge.get(), 11);
    }
}
