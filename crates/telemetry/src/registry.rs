//! The metric registry and the hand-rolled Prometheus text exposition.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram};

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    help: &'static str,
    metric: Metric,
}

/// The name → metric table.
///
/// Registration (`counter`/`gauge`/`histogram`) is get-or-create by name
/// under a mutex — a cold path run once per metric at startup. The returned
/// `Arc` handles are the hot path: recording through them is lock-free.
/// [`Registry::render_prometheus`] serializes every registered metric in
/// the Prometheus text format, sorted by name (the `BTreeMap` order), so
/// scrapes are deterministic.
///
/// # Example
///
/// ```
/// use mahimahi_telemetry::Registry;
///
/// let registry = Registry::new();
/// let commits = registry.counter("mahimahi_commits_total", "Committed leader slots");
/// commits.add(3);
/// let text = registry.render_prometheus();
/// assert!(text.contains("mahimahi_commits_total 3"));
/// ```
#[derive(Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<&'static str, Entry>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or registers the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let mut entries = self.entries.lock().expect("registry poisoned");
        let entry = entries.entry(name).or_insert_with(|| Entry {
            help,
            metric: Metric::Counter(Arc::new(Counter::new())),
        });
        match &entry.metric {
            Metric::Counter(counter) => counter.clone(),
            _ => panic!("metric {name} registered with a different kind"),
        }
    }

    /// Gets or registers the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let mut entries = self.entries.lock().expect("registry poisoned");
        let entry = entries.entry(name).or_insert_with(|| Entry {
            help,
            metric: Metric::Gauge(Arc::new(Gauge::new())),
        });
        match &entry.metric {
            Metric::Gauge(gauge) => gauge.clone(),
            _ => panic!("metric {name} registered with a different kind"),
        }
    }

    /// Gets or registers the histogram `name` (seconds-valued exposition,
    /// microsecond-valued recording).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        let mut entries = self.entries.lock().expect("registry poisoned");
        let entry = entries.entry(name).or_insert_with(|| Entry {
            help,
            metric: Metric::Histogram(Arc::new(Histogram::new())),
        });
        match &entry.metric {
            Metric::Histogram(histogram) => histogram.clone(),
            _ => panic!("metric {name} registered with a different kind"),
        }
    }

    /// Serializes every metric in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers, counters and gauges as
    /// bare samples, histograms as cumulative `_bucket{le=…}` series plus
    /// `_sum` (seconds) and `_count`.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, entry) in entries.iter() {
            match &entry.metric {
                Metric::Counter(counter) => {
                    out.push_str(&format!("# HELP {name} {}\n", entry.help));
                    out.push_str(&format!("# TYPE {name} counter\n"));
                    out.push_str(&format!("{name} {}\n", counter.get()));
                }
                Metric::Gauge(gauge) => {
                    out.push_str(&format!("# HELP {name} {}\n", entry.help));
                    out.push_str(&format!("# TYPE {name} gauge\n"));
                    out.push_str(&format!("{name} {}\n", gauge.get()));
                }
                Metric::Histogram(histogram) => {
                    let snapshot = histogram.snapshot();
                    out.push_str(&format!("# HELP {name} {}\n", entry.help));
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    for (le, cumulative) in snapshot.cumulative_buckets() {
                        if le.is_infinite() {
                            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                        } else {
                            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                        }
                    }
                    out.push_str(&format!(
                        "{name}_sum {}\n",
                        crate::as_secs_f64(snapshot.sum_micros())
                    ));
                    out.push_str(&format!("{name}_count {}\n", snapshot.count()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let registry = Registry::new();
        let a = registry.counter("x_total", "help");
        let b = registry.counter("x_total", "other help ignored");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_are_rejected() {
        let registry = Registry::new();
        let _ = registry.counter("x", "help");
        let _ = registry.gauge("x", "help");
    }

    #[test]
    fn exposition_renders_all_kinds_sorted() {
        let registry = Registry::new();
        registry.gauge("b_depth", "queue depth").set(4);
        registry.counter("a_total", "events").add(7);
        let histogram = registry.histogram("c_seconds", "latency");
        histogram.record(1_500); // 1.5 ms
        let text = registry.render_prometheus();
        let a = text.find("a_total 7").expect("counter sample");
        let b = text.find("b_depth 4").expect("gauge sample");
        let c = text.find("c_seconds_bucket").expect("histogram buckets");
        assert!(a < b && b < c, "sorted by name");
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("# TYPE b_depth gauge"));
        assert!(text.contains("# TYPE c_seconds histogram"));
        assert!(text.contains("c_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("c_seconds_count 1"));
        assert!(text.contains("c_seconds_sum 0.0015"));
    }
}
