//! Garbage collection: bounded memory without breaking agreement.
//!
//! Mysticeti-lineage systems bound DAG memory with a *GC depth*: a
//! committed leader at round `r` linearizes only blocks within `gc_depth`
//! rounds below it, and everything older is physically dropped. The
//! critical property is determinism — two validators compacting at
//! *different* times must still produce identical commit sequences, because
//! the exclusion is a function of the leader round, not of when `compact`
//! ran.

use mahimahi_core::{CommitDecision, CommitSequencer, Committer, CommitterOptions};
use mahimahi_dag::DagBuilder;
use mahimahi_types::{BlockRef, TestCommittee};

const GC_DEPTH: u64 = 8;

fn committer(setup: &TestCommittee) -> Committer {
    Committer::new(setup.committee().clone(), CommitterOptions::default())
}

fn leaders(decisions: &[CommitDecision]) -> Vec<Option<BlockRef>> {
    decisions
        .iter()
        .map(|decision| match decision {
            CommitDecision::Commit(sub_dag) => Some(sub_dag.leader),
            CommitDecision::Skip(..) => None,
        })
        .collect()
}

fn blocks(decisions: &[CommitDecision]) -> Vec<BlockRef> {
    decisions
        .iter()
        .filter_map(|decision| match decision {
            CommitDecision::Commit(sub_dag) => Some(sub_dag),
            CommitDecision::Skip(..) => None,
        })
        .flat_map(|sub_dag| sub_dag.blocks.iter().map(|block| block.reference()))
        .collect()
}

#[test]
fn compaction_does_not_change_the_commit_sequence() {
    let setup = TestCommittee::new(4, 77);

    // Validator A: never compacts. Validator B: compacts aggressively after
    // every batch. Both must sequence identical blocks.
    let mut dag_a = DagBuilder::new(setup.clone());
    let mut dag_b = DagBuilder::new(setup.clone());
    let mut seq_a = CommitSequencer::new(committer(&setup)).with_gc_depth(GC_DEPTH);
    let mut seq_b = CommitSequencer::new(committer(&setup)).with_gc_depth(GC_DEPTH);

    let mut all_a = Vec::new();
    let mut all_b = Vec::new();
    for _ in 0..6 {
        dag_a.add_full_rounds(5);
        dag_b.add_full_rounds(5);
        all_a.extend(seq_a.try_commit(dag_a.store()));
        all_b.extend(seq_b.try_commit(dag_b.store()));
        // B compacts right up to its GC floor.
        let floor = seq_b.gc_floor();
        dag_b.store_mut().compact(floor);
    }
    assert_eq!(leaders(&all_a), leaders(&all_b));
    assert_eq!(blocks(&all_a), blocks(&all_b));
    assert!(!blocks(&all_a).is_empty());
    // B's store is bounded; A's grows with the run.
    assert!(dag_b.store().len() < dag_a.store().len());
}

#[test]
fn gc_floor_tracks_progress_and_compact_reclaims() {
    let setup = TestCommittee::new(4, 78);
    let mut dag = DagBuilder::new(setup.clone());
    let mut sequencer = CommitSequencer::new(committer(&setup)).with_gc_depth(GC_DEPTH);
    assert_eq!(sequencer.gc_floor(), 0);

    dag.add_full_rounds(30);
    let decisions = sequencer.try_commit(dag.store());
    assert!(!decisions.is_empty());
    let floor = sequencer.gc_floor();
    assert!(floor > 0, "floor did not advance");

    let before = dag.store().len();
    let dropped = dag.store_mut().compact(floor);
    assert!(dropped > 0);
    assert_eq!(dag.store().len(), before - dropped);
    // Everything below the floor is gone; everything at/above remains.
    for round in 0..floor {
        assert!(dag.store().blocks_at_round(round).is_empty());
    }
    assert!(!dag.store().blocks_at_round(floor).is_empty());
}

#[test]
fn sequencing_continues_after_compaction() {
    let setup = TestCommittee::new(4, 79);
    let mut dag = DagBuilder::new(setup.clone());
    let mut sequencer = CommitSequencer::new(committer(&setup)).with_gc_depth(GC_DEPTH);

    dag.add_full_rounds(20);
    let first = sequencer.try_commit(dag.store());
    assert!(!first.is_empty());
    dag.store_mut().compact(sequencer.gc_floor());

    // The DAG keeps growing on the compacted store; commits keep flowing.
    dag.add_full_rounds(10);
    let second = sequencer.try_commit(dag.store());
    assert!(!second.is_empty());
    // Positions remain gapless across the compaction.
    let mut positions: Vec<u64> = first
        .iter()
        .chain(second.iter())
        .map(CommitDecision::position)
        .collect();
    let expected: Vec<u64> = (0..positions.len() as u64).collect();
    positions.sort_unstable();
    assert_eq!(positions, expected);
}

#[test]
fn deep_history_is_deterministically_excluded() {
    // A straggler block that is only ever referenced far above the GC
    // horizon must be excluded from linearization by BOTH a compacting and
    // a non-compacting validator.
    use mahimahi_dag::BlockSpec;
    let setup = TestCommittee::new(4, 80);
    let mut dag = DagBuilder::new(setup.clone());
    dag.add_full_round();
    // Author 3 produces round 2 but nobody references it until much later
    // (authors 0–2 reference only each other).
    let r2 = dag.add_round(vec![
        BlockSpec::new(0).with_parent_authors(vec![1, 2]),
        BlockSpec::new(1).with_parent_authors(vec![0, 2]),
        BlockSpec::new(2).with_parent_authors(vec![0, 1]),
        BlockSpec::new(3).with_parent_authors(vec![0, 1]),
    ]);
    let straggler = r2[3];
    for _ in 0..(GC_DEPTH as usize + 6) {
        dag.add_round(vec![
            BlockSpec::new(0).with_parent_authors(vec![1, 2]),
            BlockSpec::new(1).with_parent_authors(vec![0, 2]),
            BlockSpec::new(2).with_parent_authors(vec![0, 1]),
        ]);
    }
    // Author 0 finally references the straggler, far above the horizon.
    let current = dag.current_round();
    let mut parents = vec![dag.tip(0), dag.tip(1), dag.tip(2), straggler];
    parents.dedup();
    dag.add_round(vec![
        BlockSpec::new(0).with_explicit_parents(parents),
        BlockSpec::new(1).with_parent_authors(vec![0, 2]),
        BlockSpec::new(2).with_parent_authors(vec![0, 1]),
    ]);
    dag.add_full_rounds_producers(&[0, 1, 2], 6);

    let mut with_gc = CommitSequencer::new(committer(&setup)).with_gc_depth(GC_DEPTH);
    let sequenced = blocks(&with_gc.try_commit(dag.store()));
    assert!(
        !sequenced.contains(&straggler),
        "straggler below the GC horizon must not be linearized (round {current})"
    );
}
