//! Property-based tests of the commit rule over randomized DAGs.
//!
//! Strategy: grow DAGs with random per-round producer sets, random parent
//! subsets (always ≥ quorum, as validity demands), and random equivocations,
//! then check the invariants the paper proves:
//!
//! - **prefix consistency** (Lemmas 5–6): decisions never change as the DAG
//!   grows, and two committers over different prefixes agree;
//! - **slot uniqueness** (Lemma 2 / Observation 1): a slot never commits
//!   two different blocks, even under equivocation;
//! - **slot identity**: every committed block actually occupies its slot.

use mahimahi_core::{Committer, CommitterOptions, LeaderStatus};
use mahimahi_dag::{BlockSpec, DagBuilder};
use mahimahi_types::TestCommittee;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Grows `rounds` random rounds on top of the builder: every honest author
/// produces each round referencing a random quorum; `equivocator`
/// (optional) produces two variants on some rounds.
fn grow_random_dag(dag: &mut DagBuilder, rounds: u64, seed: u64, equivocator: Option<u32>) {
    let n = dag.setup().committee().size() as u32;
    let quorum = dag.setup().committee().quorum_threshold();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for round in 0..rounds {
        let mut specs = Vec::new();
        for author in 0..n {
            let mut others: Vec<u32> = (0..n).filter(|&a| a != author).collect();
            others.shuffle(&mut rng);
            others.truncate(quorum - 1);
            if Some(author) == equivocator && round % 3 == 1 {
                // Two equivocating variants with different reference sets.
                specs.push(
                    BlockSpec::new(author)
                        .with_parent_authors(others.clone())
                        .with_tag(round * 2 + 1),
                );
                let mut alt: Vec<u32> = (0..n).filter(|&a| a != author).collect();
                alt.shuffle(&mut rng);
                alt.truncate(quorum - 1);
                specs.push(
                    BlockSpec::new(author)
                        .with_parent_authors(alt)
                        .with_tag(round * 2 + 2),
                );
            } else {
                specs.push(BlockSpec::new(author).with_parent_authors(others));
            }
        }
        dag.add_round(specs);
    }
}

fn leaders_of(statuses: &[LeaderStatus]) -> Vec<String> {
    statuses
        .iter()
        .take_while(|status| status.is_decided())
        .map(|status| status.to_string())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Decisions are stable: the decided prefix after `k` rounds is a
    /// prefix of the decided sequence after `k + more` rounds.
    #[test]
    fn decisions_are_stable_under_growth(
        seed in 0u64..10_000,
        wave_length in 4u64..=5,
        leaders in 1usize..=2,
        initial_rounds in 8u64..14,
        more_rounds in 1u64..6,
        equivocate in proptest::bool::ANY,
    ) {
        let setup = TestCommittee::new(4, seed);
        let committee = setup.committee().clone();
        let mut dag = DagBuilder::new(setup);
        let equivocator = equivocate.then_some(1u32);
        grow_random_dag(&mut dag, initial_rounds, seed, equivocator);

        let committer = Committer::new(
            committee.clone(),
            CommitterOptions { wave_length, leaders_per_round: leaders },
        );
        let early = leaders_of(&committer.try_decide(dag.store(), 1));

        grow_random_dag(&mut dag, more_rounds, seed ^ 0xbeef, equivocator);
        // A *fresh* committer (no memo) over the longer DAG must agree.
        let fresh = Committer::new(
            committee,
            CommitterOptions { wave_length, leaders_per_round: leaders },
        );
        let late = leaders_of(&fresh.try_decide(dag.store(), 1));

        prop_assert!(late.len() >= early.len(),
            "decided prefix shrank: {} -> {}", early.len(), late.len());
        prop_assert_eq!(&late[..early.len()], &early[..],
            "decided prefix changed under growth");
    }

    /// Under equivocation, every committed slot holds exactly one block and
    /// that block belongs to the slot (author and round match).
    #[test]
    fn committed_blocks_match_their_slots(
        seed in 0u64..10_000,
        rounds in 10u64..16,
    ) {
        let setup = TestCommittee::new(4, seed);
        let committee = setup.committee().clone();
        let mut dag = DagBuilder::new(setup);
        grow_random_dag(&mut dag, rounds, seed, Some(2));

        let committer = Committer::new(committee, CommitterOptions::default());
        let statuses = committer.try_decide(dag.store(), 1);
        let mut committed_rounds = Vec::new();
        for status in &statuses {
            if let LeaderStatus::Commit(block) = status {
                // The block must occupy the coin-elected slot of its round.
                prop_assert_eq!(block.round(), status.round());
                committed_rounds.push((block.round(), block.author(), block.digest()));
            }
        }
        // No slot commits twice with different digests: (round, author)
        // pairs may repeat only for multi-leader rounds with ℓ > 1, which
        // elect *consecutive* authorities — same (round, author) twice
        // would mean the same slot decided two ways.
        let mut seen = std::collections::HashMap::new();
        for (round, author, digest) in committed_rounds {
            if let Some(previous) = seen.insert((round, author), digest) {
                prop_assert_eq!(previous, digest,
                    "slot ({}, {}) committed two different blocks", round, author);
            }
        }
    }

    /// Two committers over causally-consistent prefixes of the same DAG
    /// agree on every slot both decide (the cross-validator Lemma 6 at the
    /// committer level).
    #[test]
    fn different_views_never_contradict(
        seed in 0u64..10_000,
        rounds_a in 8u64..12,
        rounds_b in 12u64..18,
    ) {
        let setup = TestCommittee::new(4, seed);
        let committee = setup.committee().clone();

        // View A: a prefix. View B: the same prefix grown further (the
        // random growth is deterministic in `seed`, so A's DAG is a strict
        // subset of B's).
        let mut dag_a = DagBuilder::new(setup.clone());
        grow_random_dag(&mut dag_a, rounds_a, seed, None);
        let mut dag_b = DagBuilder::new(setup);
        grow_random_dag(&mut dag_b, rounds_a, seed, None);
        grow_random_dag(&mut dag_b, rounds_b - rounds_a, seed ^ 1, None);

        let options = CommitterOptions::default();
        let a = Committer::new(committee.clone(), options)
            .try_decide(dag_a.store(), 1);
        let b = Committer::new(committee, options).try_decide(dag_b.store(), 1);
        for (status_a, status_b) in a.iter().zip(b.iter()) {
            if status_a.is_decided() && status_b.is_decided() {
                prop_assert_eq!(
                    status_a.to_string(),
                    status_b.to_string(),
                    "views contradict at round {}", status_a.round()
                );
            }
        }
    }
}
