//! Conformance test for the Appendix B walkthrough (Figure 2 of the paper).
//!
//! The paper walks a validator through deciding the example DAG of Figure 2:
//! four validators, wave length 5, two leader slots per round, featuring
//! every case of the decision rules:
//!
//! - `L6b` — **direct commit** from `2f + 1` certificates;
//! - `L6a` — **direct skip** from `2f + 1` non-votes;
//! - `L5b` / `L5b′` — an **equivocation** where the first block gathers only
//!   one vote and is skipped while the second is certified and committed;
//! - `L1a` — directly undecidable (exactly one certificate, only one
//!   non-vote) and resolved by the **indirect rule** through its anchor
//!   `L6b`, whose causal history contains the certificate;
//! - every other slot — plain direct commits.
//!
//! The expected leader sequence is the paper's:
//! `[L1a, L1b, L2a, L2b, L3a, L3b, L4a, L4b, L5a, L5b′, (skip L6a), L6b]`.
//!
//! Leader elections are pinned with `FixedElector` (the paper's figure fixes
//! them implicitly); the DAG is built edge-by-edge so that every vote,
//! certificate, and omission matches the walkthrough.

use mahimahi_core::{
    CommitDecision, CommitSequencer, Committer, CommitterOptions, FixedElector, LeaderStatus,
};
use mahimahi_dag::{BlockSpec, DagBuilder};
use mahimahi_types::{AuthorityIndex, BlockRef, Slot, TestCommittee};
use std::sync::Arc;

/// Block references for the handcrafted DAG, indexed `[round][position]`.
struct FigureTwo {
    dag: DagBuilder,
    /// `rounds[r]` holds the refs produced at round `r + 1`, in spec order.
    rounds: Vec<Vec<BlockRef>>,
}

/// Builds the Figure 2 DAG up to `max_round` (1..=10). Round indices are
/// shifted: the paper's `R` is round 1 here (round 0 is genesis).
fn build_figure_two(max_round: u64) -> FigureTwo {
    let setup = TestCommittee::new(4, 2024);
    let mut dag = DagBuilder::new(setup);
    let mut rounds: Vec<Vec<BlockRef>> = Vec::new();

    // Round 1 (paper's R): all four validators, full references to genesis.
    rounds.push(dag.add_full_round());

    // Rounds 2–3 (R+1, R+2): v1, v2, v3 build a v0-free sub-DAG; v0 extends
    // its own chain referencing {v0, v1, v2}.
    for _ in 0..2 {
        if dag.current_round() >= max_round {
            return FigureTwo { dag, rounds };
        }
        rounds.push(dag.add_round(vec![
            BlockSpec::new(0).with_parent_authors(vec![1, 2]),
            BlockSpec::new(1).with_parent_authors(vec![2, 3]),
            BlockSpec::new(2).with_parent_authors(vec![1, 3]),
            BlockSpec::new(3).with_parent_authors(vec![1, 2]),
        ]));
    }

    // Round 4 (R+3, the Vote round of wave R): v2 and v3 re-join v0's chain,
    // v1 stays v0-free. Votes for L1a = v0@1: {v0, v2, v3}; non-vote: {v1}.
    if dag.current_round() >= max_round {
        return FigureTwo { dag, rounds };
    }
    rounds.push(dag.add_round(vec![
        BlockSpec::new(0).with_parent_authors(vec![1, 2]),
        BlockSpec::new(1).with_parent_authors(vec![2, 3]),
        BlockSpec::new(2).with_parent_authors(vec![1, 3, 0]),
        BlockSpec::new(3).with_parent_authors(vec![1, 2, 0]),
    ]));

    // Round 5 (R+4, the Certify round of wave R): exactly one certificate
    // for L1a (v3@5 references all three voters); v1 equivocates with
    // B1 = L5b and B2 = L5b′.
    if dag.current_round() >= max_round {
        return FigureTwo { dag, rounds };
    }
    rounds.push(dag.add_round(vec![
        BlockSpec::new(0).with_parent_authors(vec![1, 2]),
        BlockSpec::new(1).with_parent_authors(vec![0, 2]).with_tag(1), // B1 = L5b
        BlockSpec::new(1).with_parent_authors(vec![2, 3]).with_tag(2), // B2 = L5b′
        BlockSpec::new(2).with_parent_authors(vec![1, 0]),
        BlockSpec::new(3).with_parent_authors(vec![0, 2]), // the unique L1a certificate
    ]));

    // Round 6 (R+5): v0 references B1 (it will vote L5b); v1 extends B2 and
    // references v3@5 (putting the L1a certificate in L6b's history);
    // v2, v3 reference B2. From here on v1, v2, v3 exclude v0's chain so
    // that L6a = v0@6 gathers 2f + 1 non-votes.
    if dag.current_round() >= max_round {
        return FigureTwo { dag, rounds };
    }
    let r5 = rounds[4].clone();
    let (v0_5, b1, b2, v2_5, v3_5) = (r5[0], r5[1], r5[2], r5[3], r5[4]);
    rounds.push(dag.add_round(vec![
        BlockSpec::new(0).with_explicit_parents(vec![v0_5, b1, v2_5, v3_5]),
        BlockSpec::new(1).with_explicit_parents(vec![b2, v2_5, v3_5]),
        BlockSpec::new(2).with_explicit_parents(vec![v2_5, b2, v3_5]),
        BlockSpec::new(3).with_explicit_parents(vec![v3_5, b2, v2_5]),
    ]));

    // Rounds 7–8 (R+6, R+7): v1, v2, v3 keep excluding v0; v0 references
    // {v1, v2}. Round 8 is the Vote round for the round-5 slots (L5a, L5b)
    // and carries the 2f + 1 non-votes for L6a.
    for _ in 0..2 {
        if dag.current_round() >= max_round {
            return FigureTwo { dag, rounds };
        }
        rounds.push(dag.add_round(vec![
            BlockSpec::new(0).with_parent_authors(vec![1, 2]),
            BlockSpec::new(1).with_parent_authors(vec![2, 3]),
            BlockSpec::new(2).with_parent_authors(vec![1, 3]),
            BlockSpec::new(3).with_parent_authors(vec![1, 2]),
        ]));
    }

    // Round 9 (R+8): Certify round for the round-5 slots — every block is a
    // certificate for L5b′ — and Vote round for the round-6 slots.
    if dag.current_round() >= max_round {
        return FigureTwo { dag, rounds };
    }
    rounds.push(dag.add_round(vec![
        BlockSpec::new(0).with_parent_authors(vec![1, 2, 3]),
        BlockSpec::new(1).with_parent_authors(vec![2, 3]),
        BlockSpec::new(2).with_parent_authors(vec![1, 3]),
        BlockSpec::new(3).with_parent_authors(vec![1, 2]),
    ]));

    // Round 10 (R+9): Certify round for the round-6 slots — certificates
    // for L6b from v0, v1, v2 (and v3).
    if dag.current_round() >= max_round {
        return FigureTwo { dag, rounds };
    }
    rounds.push(dag.add_round(vec![
        BlockSpec::new(0).with_parent_authors(vec![1, 2]),
        BlockSpec::new(1).with_parent_authors(vec![2, 3]),
        BlockSpec::new(2).with_parent_authors(vec![1, 3]),
        BlockSpec::new(3).with_parent_authors(vec![1, 2]),
    ]));

    FigureTwo { dag, rounds }
}

/// The paper's (implicit) leader elections: two slots per round.
fn elector() -> Arc<FixedElector> {
    Arc::new(
        FixedElector::new()
            .assign(1, 0, 0) // L1a = v0@1
            .assign(1, 1, 1) // L1b = v1@1
            .assign(2, 0, 2) // L2a = v2@2
            .assign(2, 1, 3) // L2b = v3@2
            .assign(3, 0, 0) // L3a = v0@3
            .assign(3, 1, 1) // L3b = v1@3
            .assign(4, 0, 3) // L4a = v3@4
            .assign(4, 1, 0) // L4b = v0@4
            .assign(5, 0, 2) // L5a = v2@5
            .assign(5, 1, 1) // L5b / L5b′ = v1@5 (equivocating)
            .assign(6, 0, 0) // L6a = v0@6 (skipped)
            .assign(6, 1, 1), // L6b = v1@6 (anchor for L1a)
    )
}

fn committer(figure: &FigureTwo) -> Committer {
    Committer::with_elector(
        figure.dag.setup().committee().clone(),
        CommitterOptions {
            wave_length: 5,
            leaders_per_round: 2,
        },
        elector(),
    )
}

#[test]
fn appendix_b_slot_classification() {
    let figure = build_figure_two(10);
    let committer = committer(&figure);
    let statuses = committer.try_decide(figure.dag.store(), 1);
    assert_eq!(statuses.len(), 12, "rounds 1..=6, two slots each");

    let rounds = &figure.rounds;
    let b2 = rounds[4][2]; // L5b′
    let expected: Vec<(&str, Option<BlockRef>)> = vec![
        ("commit", Some(rounds[0][0])), // L1a = v0@1 (indirect)
        ("commit", Some(rounds[0][1])), // L1b = v1@1
        ("commit", Some(rounds[1][2])), // L2a = v2@2
        ("commit", Some(rounds[1][3])), // L2b = v3@2
        ("commit", Some(rounds[2][0])), // L3a = v0@3
        ("commit", Some(rounds[2][1])), // L3b = v1@3
        ("commit", Some(rounds[3][3])), // L4a = v3@4
        ("commit", Some(rounds[3][0])), // L4b = v0@4
        ("commit", Some(rounds[4][3])), // L5a = v2@5
        ("commit", Some(b2)),           // L5b′ — the certified equivocation
        ("skip", None),                 // L6a
        ("commit", Some(rounds[5][1])), // L6b = v1@6
    ];
    for (status, (kind, reference)) in statuses.iter().zip(&expected) {
        match (status, kind) {
            (LeaderStatus::Commit(block), &"commit") => {
                assert_eq!(Some(block.reference()), *reference, "wrong block: {status}");
            }
            (LeaderStatus::Skip(slot), &"skip") => {
                assert_eq!(
                    *slot,
                    Slot::new(6, AuthorityIndex(0)),
                    "wrong skip: {status}"
                );
            }
            _ => panic!("unexpected status {status}, expected {kind}"),
        }
    }
}

#[test]
fn appendix_b_equivocation_only_certified_block_commits() {
    let figure = build_figure_two(10);
    let committer = committer(&figure);
    let statuses = committer.try_decide(figure.dag.store(), 1);
    // Slot (5, offset 1) holds both equivocations; the committed one must be
    // B2 (= L5b′), never B1 (= L5b, which has 2f + 1 non-votes).
    let status = &statuses[9];
    let LeaderStatus::Commit(block) = status else {
        panic!("L5b slot must commit, got {status}");
    };
    assert_eq!(block.reference(), figure.rounds[4][2]);
    assert_ne!(block.reference(), figure.rounds[4][1]);
}

#[test]
fn appendix_b_l1a_is_undecided_without_its_anchor() {
    // With the DAG cut at round 9 the anchor slots of round 6 (certify round
    // 10) are undecided, so the indirect rule cannot resolve L1a: the
    // sequencer must not commit anything (ExtendCommitSequence stops at the
    // first undecided slot).
    let figure = build_figure_two(9);
    let committer = committer(&figure);
    let statuses = committer.try_decide(figure.dag.store(), 1);
    assert!(matches!(
        statuses[0],
        LeaderStatus::Undecided {
            round: 1,
            offset: 0
        }
    ));
    // L1b is still directly committed...
    assert!(matches!(&statuses[1], LeaderStatus::Commit(block)
        if block.reference() == figure.rounds[0][1]));
    // ...but the sequencer stops before it.
    let mut sequencer = CommitSequencer::new(committer);
    assert!(sequencer.try_commit(figure.dag.store()).is_empty());
}

#[test]
fn appendix_b_commit_sequence_matches_paper() {
    let figure = build_figure_two(10);
    let mut sequencer = CommitSequencer::new(committer(&figure));
    let decisions = sequencer.try_commit(figure.dag.store());
    assert_eq!(decisions.len(), 12);

    // Leader sequence: the paper's order with L6a skipped.
    let leaders: Vec<Option<BlockRef>> = decisions
        .iter()
        .map(|decision| match decision {
            CommitDecision::Commit(sub_dag) => Some(sub_dag.leader),
            CommitDecision::Skip(..) => None,
        })
        .collect();
    let rounds = &figure.rounds;
    assert_eq!(
        leaders,
        vec![
            Some(rounds[0][0]), // L1a
            Some(rounds[0][1]), // L1b
            Some(rounds[1][2]), // L2a
            Some(rounds[1][3]), // L2b
            Some(rounds[2][0]), // L3a
            Some(rounds[2][1]), // L3b
            Some(rounds[3][3]), // L4a
            Some(rounds[3][0]), // L4b
            Some(rounds[4][3]), // L5a
            Some(rounds[4][2]), // L5b′
            None,               // L6a skipped
            Some(rounds[5][1]), // L6b
        ]
    );

    // Total order sanity: every block at most once, causal order respected
    // (no block appears before one of its ancestors... i.e. parents first).
    let mut seen = std::collections::HashSet::new();
    let store = figure.dag.store();
    for decision in &decisions {
        let CommitDecision::Commit(sub_dag) = decision else {
            continue;
        };
        for block in &sub_dag.blocks {
            for parent in block.parents() {
                assert!(
                    seen.contains(parent),
                    "{} sequenced before its parent {parent}",
                    block.reference()
                );
            }
            assert!(seen.insert(block.reference()));
        }
        // The committed leader closes its own sub-DAG.
        assert_eq!(
            sub_dag.blocks.last().map(|b| b.reference()),
            Some(sub_dag.leader)
        );
    }
    // The skipped equivocation L5b is never linearized: it is in no
    // committed leader's causal history.
    assert!(!seen.contains(&rounds[4][1]));
    let _ = store;
}
