//! Leader slot classification.

use mahimahi_types::{Block, Round, Slot};
use std::fmt;
use std::sync::Arc;

/// The classification of one leader slot (Section 3.1: every slot is
/// `commit`, `skip`, or `undecided`).
#[derive(Clone, PartialEq, Eq)]
pub enum LeaderStatus {
    /// The slot commits this block (exactly one block per slot can ever be
    /// certified — Lemma 2).
    Commit(Arc<Block>),
    /// The slot is skipped: no block in it will ever be certified.
    Skip(Slot),
    /// The slot cannot be classified yet. The authority may be unknown
    /// (the coin for its round has not opened), so the slot is identified
    /// by `(round, offset)` rather than by authority.
    Undecided {
        /// The Propose round of the slot.
        round: Round,
        /// The leader offset within the round (`0 .. leaders_per_round`).
        offset: usize,
    },
}

impl LeaderStatus {
    /// The Propose round this status concerns.
    pub fn round(&self) -> Round {
        match self {
            LeaderStatus::Commit(block) => block.round(),
            LeaderStatus::Skip(slot) => slot.round,
            LeaderStatus::Undecided { round, .. } => *round,
        }
    }

    /// Whether the slot is decided (committed or skipped).
    pub fn is_decided(&self) -> bool {
        !matches!(self, LeaderStatus::Undecided { .. })
    }

    /// The committed block, if any.
    pub fn committed_block(&self) -> Option<&Arc<Block>> {
        match self {
            LeaderStatus::Commit(block) => Some(block),
            _ => None,
        }
    }
}

impl fmt::Display for LeaderStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeaderStatus::Commit(block) => write!(f, "Commit({})", block.reference()),
            LeaderStatus::Skip(slot) => write!(f, "Skip({slot})"),
            LeaderStatus::Undecided { round, offset } => {
                write!(f, "Undecided(round={round}, offset={offset})")
            }
        }
    }
}

impl fmt::Debug for LeaderStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_types::AuthorityIndex;

    #[test]
    fn accessors() {
        let block = Block::genesis(AuthorityIndex(1)).into_arc();
        let commit = LeaderStatus::Commit(block.clone());
        assert_eq!(commit.round(), 0);
        assert!(commit.is_decided());
        assert_eq!(commit.committed_block(), Some(&block));

        let skip = LeaderStatus::Skip(Slot::new(3, AuthorityIndex(2)));
        assert_eq!(skip.round(), 3);
        assert!(skip.is_decided());
        assert!(skip.committed_block().is_none());

        let undecided = LeaderStatus::Undecided {
            round: 5,
            offset: 1,
        };
        assert_eq!(undecided.round(), 5);
        assert!(!undecided.is_decided());
    }

    #[test]
    fn display_is_informative() {
        let undecided = LeaderStatus::Undecided {
            round: 5,
            offset: 1,
        };
        assert!(undecided.to_string().contains("round=5"));
        let skip = LeaderStatus::Skip(Slot::new(3, AuthorityIndex(2)));
        assert!(skip.to_string().contains("S(v2,3)"));
    }
}
