//! Client-ingress policy: per-client rate limiting and the ingress
//! accounting ledger.
//!
//! Admission control lives *inside* the sans-I/O engine, not in the
//! drivers, for one reason: determinism. The simulator, the loopback
//! harness, and the TCP node all feed the same `Input::TxBatchReceived`
//! events; because the token buckets tick on the engine's virtual time
//! (never a wall clock), all three drivers enforce byte-identical policy
//! and a recorded trace replays the exact same verdicts.
//!
//! Two mechanisms share this module:
//!
//! - [`IngressPolicy`] — a token bucket per client id, refilled from
//!   engine time at [`IngressConfig::rate_limit_per_client`] transactions
//!   per second up to [`IngressConfig::burst_per_client`]. Committee
//!   members are exempt (the engine checks `from < committee_size` before
//!   consulting the bucket): validator-to-validator traffic — forwarded
//!   transactions, the node's own submission channel — must never be shed
//!   at the edge.
//! - [`IngressReport`] — the receipt/forwarding ledger the
//!   `receipt-integrity` scenario oracle gates on: every received batch
//!   produced exactly one admission receipt, no commit notice fired
//!   without an opened note, and no forwarded transaction was observed
//!   committed more often than it was forwarded.
//!
//! The deficit-round-robin fair queue — the other half of the ingress
//! policy — lives in the [`Mempool`](crate::mempool::Mempool) itself,
//! where the per-client queues are.

use crate::engine::Time;
use std::collections::BTreeMap;

/// Micro-tokens per transaction: integer token-bucket accounting with
/// microsecond refill granularity and no floating point (floats would
/// threaten cross-platform replay determinism).
const TOKEN_SCALE: u64 = 1_000_000;

/// Client-ingress policy knobs of a validator engine. The default is
/// fully permissive — no rate limit, no forwarding — so existing drivers
/// and benchmarks are unaffected until they opt in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngressConfig {
    /// Sustained admission rate per external client, in transactions per
    /// second of engine time. `0` disables rate limiting entirely.
    /// Committee members (peer ids below the committee size) are always
    /// exempt.
    pub rate_limit_per_client: u64,
    /// Token-bucket depth per client, in transactions: the burst a client
    /// may submit instantly before the sustained rate applies. Clamped to
    /// at least 1 when rate limiting is enabled (a zero-depth bucket
    /// would shed everything).
    pub burst_per_client: u64,
    /// Age (microseconds of engine time) after which a transaction still
    /// pending in the mempool is forwarded to a peer's pool
    /// (`Envelope::TxForward`), so a submission to a slow or withholding
    /// validator still reaches a block. `None` disables forwarding.
    pub forward_age: Option<Time>,
    /// Maximum transactions moved per forward frame (bounds the frame
    /// size; the remainder forwards on the next timer).
    pub forward_max: usize,
}

impl Default for IngressConfig {
    fn default() -> Self {
        IngressConfig {
            rate_limit_per_client: 0,
            burst_per_client: 0,
            forward_age: None,
            forward_max: 512,
        }
    }
}

/// One client's token bucket.
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    /// Available credit, in micro-tokens ([`TOKEN_SCALE`] per
    /// transaction).
    credit: u64,
    /// Engine time of the last refill.
    refilled: Time,
}

/// Per-client token buckets over engine time. Deterministic by
/// construction: state advances only on [`IngressPolicy::admit`] calls,
/// whose `now` comes from the engine's virtual clock.
#[derive(Debug)]
pub struct IngressPolicy {
    config: IngressConfig,
    buckets: BTreeMap<usize, TokenBucket>,
}

impl IngressPolicy {
    /// A policy with the given knobs and no per-client state yet.
    pub fn new(config: IngressConfig) -> Self {
        IngressPolicy {
            config,
            buckets: BTreeMap::new(),
        }
    }

    /// Charges one transaction from `client`'s bucket at engine time
    /// `now`. Returns whether the transaction may proceed to admission.
    /// With rate limiting disabled this is always true and allocates
    /// nothing.
    pub fn admit(&mut self, client: usize, now: Time) -> bool {
        let rate = self.config.rate_limit_per_client;
        if rate == 0 {
            return true;
        }
        let depth = self
            .config
            .burst_per_client
            .max(1)
            .saturating_mul(TOKEN_SCALE);
        let bucket = self.buckets.entry(client).or_insert(TokenBucket {
            credit: depth,
            refilled: now,
        });
        // rate is tx/s and time is µs, so micro-tokens accrue at exactly
        // `rate` per microsecond: elapsed × rate, capped at the depth.
        let elapsed = now.saturating_sub(bucket.refilled);
        bucket.refilled = now;
        bucket.credit = bucket
            .credit
            .saturating_add(elapsed.saturating_mul(rate))
            .min(depth);
        if bucket.credit >= TOKEN_SCALE {
            bucket.credit -= TOKEN_SCALE;
            true
        } else {
            false
        }
    }
}

/// The ingress ledger of one validator: receipts, commit notices, and
/// forwarding, as counted by the engine (`ValidatorEngine::ingress_report`).
/// The `receipt-integrity` oracle holds every correct validator to
/// [`IngressReport::violations`] being empty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngressReport {
    /// Wire transaction batches received (`Input::TxBatchReceived`).
    pub batches_received: u64,
    /// Admission receipts emitted — must equal `batches_received`: zero
    /// receipt loss is the subsystem's core guarantee.
    pub receipts_emitted: u64,
    /// Batches with at least one accepted transaction, i.e. commit
    /// notifications opened and owed to a client.
    pub notes_opened: u64,
    /// Commit notifications delivered (`TxReceipt::Committed` tags).
    pub commit_notices: u64,
    /// Transactions moved to a peer's pool by age-based forwarding.
    pub forwarded: u64,
    /// Forwarded transactions later observed committed in the sequenced
    /// order (any author's block).
    pub forwarded_committed: u64,
    /// Transactions shed by the per-client token bucket.
    pub rate_limited: u64,
}

impl IngressReport {
    /// Every ingress-ledger violation, as human-readable descriptions
    /// (empty when the subsystem is sound). Shared by the
    /// `receipt-integrity` oracle and the load generator's gates.
    pub fn violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if self.receipts_emitted != self.batches_received {
            violations.push(format!(
                "receipt loss: {} batches received but {} admission receipts emitted",
                self.batches_received, self.receipts_emitted
            ));
        }
        if self.commit_notices > self.notes_opened {
            violations.push(format!(
                "{} commit notices delivered but only {} notes opened",
                self.commit_notices, self.notes_opened
            ));
        }
        if self.forwarded_committed > self.forwarded {
            violations.push(format!(
                "{} forwarded transactions observed committed but only {} forwarded",
                self.forwarded_committed, self.forwarded
            ));
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limited(rate: u64, burst: u64) -> IngressPolicy {
        IngressPolicy::new(IngressConfig {
            rate_limit_per_client: rate,
            burst_per_client: burst,
            ..IngressConfig::default()
        })
    }

    #[test]
    fn disabled_policy_admits_everything() {
        let mut policy = IngressPolicy::new(IngressConfig::default());
        for i in 0..10_000 {
            assert!(policy.admit(7, i));
        }
    }

    #[test]
    fn burst_then_refill_at_the_sustained_rate() {
        // 10 tx/s, burst of 3: three instant admissions, then one more
        // every 100 ms of engine time.
        let mut policy = limited(10, 3);
        for _ in 0..3 {
            assert!(policy.admit(1, 0));
        }
        assert!(!policy.admit(1, 0));
        assert!(!policy.admit(1, 50_000), "half a refill is not a token");
        assert!(policy.admit(1, 100_000));
        assert!(!policy.admit(1, 100_000));
        // A long idle period refills at most the burst depth.
        for _ in 0..3 {
            assert!(policy.admit(1, 60_000_000));
        }
        assert!(!policy.admit(1, 60_000_000));
    }

    #[test]
    fn buckets_are_independent_per_client() {
        let mut policy = limited(10, 1);
        assert!(policy.admit(1, 0));
        assert!(!policy.admit(1, 0));
        // Client 2's bucket is untouched by client 1's exhaustion.
        assert!(policy.admit(2, 0));
    }

    #[test]
    fn report_violations_catch_receipt_loss_and_overcounting() {
        let sound = IngressReport {
            batches_received: 5,
            receipts_emitted: 5,
            notes_opened: 4,
            commit_notices: 4,
            forwarded: 2,
            forwarded_committed: 2,
            rate_limited: 1,
        };
        assert!(sound.violations().is_empty());
        let lossy = IngressReport {
            receipts_emitted: 4,
            ..sound
        };
        assert_eq!(lossy.violations().len(), 1);
        let phantom = IngressReport {
            commit_notices: 9,
            forwarded_committed: 3,
            ..sound
        };
        assert_eq!(phantom.violations().len(), 2);
    }
}
