//! Deterministic execution over the commit stream.
//!
//! Consensus stops at a total order of blocks; a validator must also
//! *execute* that order. [`ExecutionState`] is the contract between the
//! sequencer and any state machine: the engine feeds every
//! [`CommittedSubDag`] — in commit order, exactly once — to
//! [`ExecutionState::apply`], and because the commit sequence is identical
//! at every correct validator, so is the resulting state.
//!
//! # Determinism contract
//!
//! `apply` must be a pure function of the sub-DAG sequence: no clocks, no
//! randomness, no iteration over unordered containers while folding into
//! the root. Two validators that applied the same sequence of sub-DAGs
//! must return byte-identical [`snapshot`](ExecutionState::snapshot)s and
//! therefore equal [`StateRoot`]s — the `state-root-agreement` oracle in
//! `mahimahi-scenarios` enforces exactly this across every matrix cell.
//!
//! The root must commit to the snapshot: `state_root() ==
//! H(snapshot())`. State-sync relies on it — a joining validator verifies
//! a quorum-certified root, then checks the snapshot it downloaded hashes
//! to that root before restoring.
//!
//! [`BalanceLedger`] is the reference implementation: a toy
//! account-balance machine that credits block authors and transaction
//! accounts, and gives `SlashingHook` real balances to slash.

use crate::sequencer::CommittedSubDag;
use mahimahi_crypto::blake2b::blake2b_256;
use mahimahi_types::codec::{CodecError, Decoder, Encoder};
use mahimahi_types::StateRoot;
use std::collections::BTreeMap;

/// A deterministic state machine driven by the commit stream.
///
/// Implementations are folded over every committed sub-DAG in commit
/// order (see the module docs for the determinism contract). The engine
/// checkpoints the machine every `checkpoint_interval` sequencing
/// decisions by hashing [`snapshot`](ExecutionState::snapshot) into a
/// signed `Checkpoint`; a state-syncing validator calls
/// [`restore`](ExecutionState::restore) with a snapshot whose hash
/// matches a quorum-certified root.
pub trait ExecutionState: Send {
    /// Applies one committed sub-DAG and returns the new state root.
    ///
    /// Must be deterministic: equal prior state + equal sub-DAG ⇒ equal
    /// root at every validator.
    fn apply(&mut self, sub_dag: &CommittedSubDag) -> StateRoot;

    /// The current state root. Must equal `H(self.snapshot())`.
    fn state_root(&self) -> StateRoot;

    /// Canonical byte encoding of the full state (for checkpoints and
    /// state-sync). Equal states must produce identical bytes.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the state with a previously captured snapshot.
    ///
    /// # Errors
    ///
    /// Fails (leaving the state unspecified but internally consistent) if
    /// the bytes are not a valid snapshot encoding.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError>;
}

/// Reward credited to a block's author for every block it lands in the
/// total order.
pub const BLOCK_REWARD: u64 = 1_000;

/// The reference [`ExecutionState`]: a deterministic account-balance
/// machine.
///
/// Accounts are opaque `u64` identifiers. Every committed block credits
/// its author's account (`u64` of the authority index) with
/// [`BLOCK_REWARD`]; every committed transaction credits the account
/// derived from its digest prefix with its payload length. Balances
/// saturate at `u64::MAX` — saturation is itself deterministic, so two
/// validators saturate identically.
///
/// The root is the BLAKE2b-256 hash of the canonical snapshot encoding
/// (account/balance pairs in ascending account order), so
/// `state_root() == H(snapshot())` as the trait requires.
///
/// Slashing ([`BalanceLedger::slash`]) burns an account's whole balance
/// and is intended for *hooks and operators*, not the consensus path:
/// evidence arrival timing differs across validators, so folding slashes
/// into the consensus root would break state-root agreement.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BalanceLedger {
    balances: BTreeMap<u64, u64>,
}

impl BalanceLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        BalanceLedger::default()
    }

    /// The balance of `account` (zero if untouched).
    pub fn balance(&self, account: u64) -> u64 {
        self.balances.get(&account).copied().unwrap_or(0)
    }

    /// Number of accounts with recorded balances.
    pub fn accounts(&self) -> usize {
        self.balances.len()
    }

    /// Burns and returns the whole balance of `account`.
    ///
    /// Exposed for `SlashingHook` integrations; deliberately *not* wired
    /// into [`ExecutionState::apply`] (see the type docs).
    pub fn slash(&mut self, account: u64) -> u64 {
        self.balances.remove(&account).unwrap_or(0)
    }

    fn credit(&mut self, account: u64, amount: u64) {
        let balance = self.balances.entry(account).or_insert(0);
        *balance = balance.saturating_add(amount);
    }
}

impl ExecutionState for BalanceLedger {
    fn apply(&mut self, sub_dag: &CommittedSubDag) -> StateRoot {
        for block in &sub_dag.blocks {
            self.credit(u64::from(block.author().0), BLOCK_REWARD);
            for transaction in block.transactions() {
                let amount = u64::try_from(transaction.len()).unwrap_or(u64::MAX);
                self.credit(transaction.digest().prefix_u64(), amount);
            }
        }
        self.state_root()
    }

    fn state_root(&self) -> StateRoot {
        StateRoot(blake2b_256(&self.snapshot()))
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut encoder = Encoder::new();
        let accounts = u64::try_from(self.balances.len()).expect("account count fits u64");
        encoder.put_u64(accounts);
        for (account, balance) in &self.balances {
            encoder.put_u64(*account);
            encoder.put_u64(*balance);
        }
        encoder.into_bytes()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut decoder = Decoder::new(bytes);
        let count = decoder.get_u64()?;
        let mut balances = BTreeMap::new();
        for _ in 0..count {
            let account = decoder.get_u64()?;
            let balance = decoder.get_u64()?;
            balances.insert(account, balance);
        }
        decoder.finish()?;
        self.balances = balances;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_dag::DagBuilder;
    use mahimahi_types::{TestCommittee, Transaction};
    use std::collections::HashSet;
    use std::sync::Arc;

    fn sample_sub_dag() -> CommittedSubDag {
        let setup = TestCommittee::new(4, 7);
        let mut dag = DagBuilder::new(setup);
        use mahimahi_dag::BlockSpec;
        dag.add_round(
            (0..4)
                .map(|author| {
                    BlockSpec::new(author)
                        .with_transactions(vec![Transaction::benchmark(author as u64)])
                })
                .collect(),
        );
        let blocks: Vec<Arc<_>> = dag
            .store()
            .iter()
            .filter(|b| b.round() == 1)
            .cloned()
            .collect();
        let leader = blocks.last().unwrap().reference();
        CommittedSubDag {
            position: 0,
            leader,
            blocks,
        }
    }

    #[test]
    fn apply_credits_authors_and_transactions() {
        let sub_dag = sample_sub_dag();
        let mut ledger = BalanceLedger::new();
        let root = ledger.apply(&sub_dag);
        for authority in 0..4u64 {
            assert_eq!(ledger.balance(authority), BLOCK_REWARD);
        }
        for block in &sub_dag.blocks {
            for transaction in block.transactions() {
                let account = transaction.digest().prefix_u64();
                assert_eq!(ledger.balance(account), transaction.len() as u64);
            }
        }
        assert_eq!(root, ledger.state_root());
        assert_ne!(root, BalanceLedger::new().state_root());
    }

    #[test]
    fn equal_sequences_give_equal_roots_and_snapshots() {
        let sub_dag = sample_sub_dag();
        let mut a = BalanceLedger::new();
        let mut b = BalanceLedger::new();
        a.apply(&sub_dag);
        b.apply(&sub_dag);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.state_root(), b.state_root());
    }

    #[test]
    fn root_commits_to_snapshot() {
        let mut ledger = BalanceLedger::new();
        ledger.apply(&sample_sub_dag());
        assert_eq!(
            ledger.state_root(),
            StateRoot(blake2b_256(&ledger.snapshot()))
        );
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut ledger = BalanceLedger::new();
        ledger.apply(&sample_sub_dag());
        let snapshot = ledger.snapshot();
        let mut restored = BalanceLedger::new();
        restored.restore(&snapshot).unwrap();
        assert_eq!(restored, ledger);
        assert_eq!(restored.state_root(), ledger.state_root());
        // Truncated and trailing-garbage snapshots are rejected.
        assert!(restored.restore(&snapshot[..snapshot.len() - 1]).is_err());
        let mut padded = snapshot.clone();
        padded.push(0);
        assert!(restored.restore(&padded).is_err());
    }

    #[test]
    fn slash_burns_the_whole_balance() {
        let mut ledger = BalanceLedger::new();
        ledger.apply(&sample_sub_dag());
        let before = ledger.state_root();
        assert_eq!(ledger.slash(2), BLOCK_REWARD);
        assert_eq!(ledger.balance(2), 0);
        assert_eq!(ledger.slash(2), 0, "already burned");
        assert_ne!(ledger.state_root(), before, "slashing changes the root");
    }

    #[test]
    fn distinct_blocks_fold_into_distinct_roots() {
        // Sanity: different committed content ⇒ different roots (no
        // accidental account collisions in the sample).
        let sub_dag = sample_sub_dag();
        let accounts: HashSet<u64> = sub_dag
            .blocks
            .iter()
            .flat_map(|b| b.transactions())
            .map(|tx| tx.digest().prefix_u64())
            .collect();
        assert_eq!(accounts.len(), 4);
    }
}
