//! The engine's telemetry boundary.
//!
//! The sans-I/O [`ValidatorEngine`](crate::ValidatorEngine) observes commit-
//! path boundaries no driver can see from outside — when a transaction is
//! linearized, when a sub-DAG is executed, when a commit receipt is owed —
//! and reports them through [`TelemetrySink`]. The sink is **record-only**:
//! it returns nothing, the engine never branches on it, and every duration
//! the engine reports is derived from its driver-fed clock (`Input::
//! TimerFired`), so attaching a recording sink cannot perturb consensus or
//! replay (`tests/engine_proptest.rs` proves byte-identical outputs with
//! and without one).

use mahimahi_telemetry::{Stage, StageStats};

/// A recipient for the engine's stage observations.
///
/// Implementations must be cheap (the engine calls this on the commit hot
/// path — one call per committed transaction) and must not panic.
pub trait TelemetrySink: Send + Sync {
    /// Records that a commit-path item spent `micros` in `stage`.
    fn record_stage(&self, stage: Stage, micros: u64);
}

/// The default sink: discards everything. Proven output-equivalent to any
/// recording sink by the sink-equivalence proptest.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn record_stage(&self, _stage: Stage, _micros: u64) {}
}

/// The standard recording sink: fold stage observations straight into the
/// per-stage histograms of a registry-backed [`StageStats`].
impl TelemetrySink for StageStats {
    fn record_stage(&self, stage: Stage, micros: u64) {
        self.record(stage, micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_stats_is_a_sink() {
        let stats = StageStats::detached();
        let sink: &dyn TelemetrySink = &stats;
        sink.record_stage(Stage::Sequenced, 1234);
        assert_eq!(stats.snapshot().stage(Stage::Sequenced).count(), 1);
    }
}
