//! Leader slot election.
//!
//! In the protocol proper, leader slots are elected *after the fact* by the
//! global perfect coin opened in the Certify round (Section 3.2, step 1) —
//! that is [`CoinElector`]. Tests that reproduce specific published
//! executions (the Figure 2 / Appendix B walkthrough) need to pin the
//! elections instead — that is [`FixedElector`]. Both implement
//! [`LeaderElector`], which the committer consults for every slot.

use mahimahi_dag::BlockStore;
use mahimahi_types::{AuthorityIndex, Committee, Round, Slot};
use std::collections::HashMap;
use std::fmt::Debug;

use crate::decider::CoinCache;

/// Strategy determining which authority owns a leader slot.
pub trait LeaderElector: Send + Sync + Debug {
    /// The authority elected for `(propose_round, offset)`, or `None` if the
    /// election cannot be determined yet (e.g. the coin has not opened).
    ///
    /// `certify_round` is the round whose blocks carry the relevant coin
    /// shares (`propose_round + wave_length − 1`).
    fn elect(
        &self,
        committee: &Committee,
        store: &BlockStore,
        certify_round: Round,
        propose_round: Round,
        offset: usize,
    ) -> Option<AuthorityIndex>;

    /// Convenience wrapper returning a full [`Slot`].
    fn elect_slot(
        &self,
        committee: &Committee,
        store: &BlockStore,
        certify_round: Round,
        propose_round: Round,
        offset: usize,
    ) -> Option<Slot> {
        self.elect(committee, store, certify_round, propose_round, offset)
            .map(|authority| Slot::new(propose_round, authority))
    }
}

/// The protocol's election: reconstruct the global perfect coin from the
/// shares in the Certify round, then map slot `offset` to authority
/// `(c + offset) mod n` (Algorithm 2, `LeaderBlock`).
#[derive(Debug, Default)]
pub struct CoinElector {
    coins: CoinCache,
}

impl CoinElector {
    /// Creates an elector with an empty coin cache.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LeaderElector for CoinElector {
    fn elect(
        &self,
        committee: &Committee,
        store: &BlockStore,
        certify_round: Round,
        _propose_round: Round,
        offset: usize,
    ) -> Option<AuthorityIndex> {
        let coin = self.coins.coin_for_round(committee, store, certify_round)?;
        Some(AuthorityIndex(
            coin.leader_slot(offset, committee.size()) as u32
        ))
    }
}

/// A deterministic, test-only election from an explicit table.
///
/// Slots not present in the table fall back to round-robin
/// (`(round + offset) mod n`) so long DAGs remain fully decidable.
#[derive(Debug, Default)]
pub struct FixedElector {
    assignments: HashMap<(Round, usize), AuthorityIndex>,
}

impl FixedElector {
    /// Creates an empty table (pure round-robin).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins `(round, offset)` to `authority`.
    pub fn assign(mut self, round: Round, offset: usize, authority: u32) -> Self {
        self.assignments
            .insert((round, offset), AuthorityIndex(authority));
        self
    }
}

impl LeaderElector for FixedElector {
    fn elect(
        &self,
        committee: &Committee,
        store: &BlockStore,
        certify_round: Round,
        propose_round: Round,
        offset: usize,
    ) -> Option<AuthorityIndex> {
        // Mirror the coin's availability condition so that fixed elections
        // do not leak decisions the protocol could not make yet.
        if store.authorities_at_round(certify_round).len() < committee.quorum_threshold() {
            return None;
        }
        Some(
            self.assignments
                .get(&(propose_round, offset))
                .copied()
                .unwrap_or_else(|| {
                    AuthorityIndex(((propose_round as usize + offset) % committee.size()) as u32)
                }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_dag::DagBuilder;
    use mahimahi_types::TestCommittee;

    #[test]
    fn coin_elector_matches_manual_combination() {
        let setup = TestCommittee::new(4, 33);
        let committee = setup.committee().clone();
        let mut dag = DagBuilder::new(setup.clone());
        dag.add_full_rounds(5);
        let elector = CoinElector::new();
        let elected = elector
            .elect(&committee, dag.store(), 5, 1, 0)
            .expect("coin available");
        // Manual combination of the same round's shares.
        let shares: Vec<_> = (0..4)
            .map(|i| setup.coin_secret(AuthorityIndex(i)).share_for_round(5))
            .collect();
        let value = committee.coin_public().combine(5, &shares).unwrap();
        assert_eq!(elected.as_u64(), value.leader_slot(0, 4));
        // Offsets walk consecutive authorities.
        let next = elector.elect(&committee, dag.store(), 5, 1, 1).unwrap();
        assert_eq!(next.as_u64(), (elected.as_u64() + 1) % 4);
    }

    #[test]
    fn coin_elector_unavailable_before_certify_round() {
        let setup = TestCommittee::new(4, 33);
        let committee = setup.committee().clone();
        let dag = DagBuilder::new(setup);
        let elector = CoinElector::new();
        assert!(elector.elect(&committee, dag.store(), 5, 1, 0).is_none());
    }

    #[test]
    fn fixed_elector_uses_table_then_round_robin() {
        let setup = TestCommittee::new(4, 33);
        let committee = setup.committee().clone();
        let mut dag = DagBuilder::new(setup);
        dag.add_full_rounds(5);
        let elector = FixedElector::new().assign(1, 0, 3);
        assert_eq!(
            elector.elect(&committee, dag.store(), 5, 1, 0),
            Some(AuthorityIndex(3))
        );
        // Unpinned slot: round-robin (round 1 + offset 1) % 4 = 2.
        assert_eq!(
            elector.elect(&committee, dag.store(), 5, 1, 1),
            Some(AuthorityIndex(2))
        );
        // Mirrors coin availability: certify round missing → None.
        assert_eq!(elector.elect(&committee, dag.store(), 9, 5, 0), None);
    }
}
