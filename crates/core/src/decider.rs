//! The wave decider: Algorithm 2 of the paper.
//!
//! One conceptual decider exists per `(wave offset, leader offset)` pair; in
//! this implementation [`WaveDecider`] is instantiated on demand for a given
//! Propose round and leader offset, which is equivalent (the wave offset is
//! `round % wave_length`) and keeps the committer stateless.

use mahimahi_crypto::coin::{CoinShare, CoinValue};
use mahimahi_dag::BlockStore;
#[cfg(test)]
use mahimahi_types::AuthorityIndex;
use mahimahi_types::{Block, Committee, Round, Slot};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared, memoized reconstruction of per-round coin values.
///
/// The combined value is independent of which `2f + 1` valid shares are
/// used (the threshold property), so caching by round is sound even as more
/// blocks arrive.
#[derive(Debug, Default)]
pub(crate) struct CoinCache {
    values: Mutex<HashMap<Round, CoinValue>>,
    /// Shares already verified per open round, by author index. Until a
    /// round's coin opens, `coin_for_round` is re-queried on every commit
    /// attempt; without this memo each query would redo the DLEQ
    /// verification (group exponentiations) for every share in view.
    /// Dropped once the round's value is cached.
    verified: Mutex<HashMap<Round, HashMap<u64, CoinShare>>>,
}

impl CoinCache {
    /// Reconstructs (or returns the cached) coin for `round` from the coin
    /// shares embedded in that round's blocks. `None` until blocks from
    /// `2f + 1` distinct authorities are present.
    pub fn coin_for_round(
        &self,
        committee: &Committee,
        store: &BlockStore,
        round: Round,
    ) -> Option<CoinValue> {
        if let Some(value) = self.values.lock().get(&round) {
            return Some(*value);
        }
        // Deduplicate by author (equivocating blocks carry the same share)
        // and keep only shares that verify: block validation normally
        // rejects bad shares upstream, but a stored block is Byzantine
        // input as far as this reconstruction is concerned — a malformed
        // share must be skipped, never allowed to panic the node or poison
        // the combination. Each author's share is verified at most once per
        // round (memoized across calls).
        let mut verified = self.verified.lock();
        let round_verified = verified.entry(round).or_default();
        for block in store.blocks_at_round(round) {
            if let Some(share) = block.coin_share() {
                if !round_verified.contains_key(&share.index())
                    && committee.coin_public().verify_share(round, share).is_ok()
                {
                    round_verified.insert(share.index(), *share);
                }
            }
        }
        if round_verified.len() < committee.coin_public().threshold() {
            return None;
        }
        let shares: Vec<CoinShare> = round_verified.values().copied().collect();
        drop(verified);
        // The shares were verified above, so this cannot fail; if it ever
        // does, an unopened coin (retry next call) beats a crashed node.
        let value = committee.coin_public().combine(round, &shares).ok()?;
        self.values.lock().insert(round, value);
        self.verified.lock().remove(&round);
        Some(value)
    }
}

/// The decision rules for one leader slot (Propose round + leader offset).
pub(crate) struct WaveDecider<'a> {
    committee: &'a Committee,
    store: &'a BlockStore,
    wave_length: u64,
    /// The Propose round of the wave under decision.
    propose_round: Round,
    /// This decider's leader offset (`leaderOffset` in Algorithm 2).
    leader_offset: usize,
}

/// Result of the direct or indirect rule, before slot identity is attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Decision {
    Commit(Arc<Block>),
    Skip,
    Undecided,
}

impl<'a> WaveDecider<'a> {
    pub fn new(
        committee: &'a Committee,
        store: &'a BlockStore,
        wave_length: u64,
        propose_round: Round,
        leader_offset: usize,
    ) -> Self {
        debug_assert!(wave_length >= 3);
        WaveDecider {
            committee,
            store,
            wave_length,
            propose_round,
            leader_offset,
        }
    }

    /// `VoteRound(w)`: Propose round + wave length − 2.
    pub fn vote_round(&self) -> Round {
        self.propose_round + self.wave_length - 2
    }

    /// `CertifyRound(w)`: Propose round + wave length − 1.
    pub fn certify_round(&self) -> Round {
        self.propose_round + self.wave_length - 1
    }

    /// The slot this decider classifies, as determined by the election
    /// strategy (the coin of the Certify round in the real protocol).
    /// `None` until the election can be determined.
    pub fn leader_slot(&self, elector: &dyn crate::election::LeaderElector) -> Option<Slot> {
        elector.elect_slot(
            self.committee,
            self.store,
            self.certify_round(),
            self.propose_round,
            self.leader_offset,
        )
    }

    /// `SkippedLeader`: `2f + 1` distinct vote-round authors have a block
    /// that does not vote for `leader`.
    fn skipped_leader(&self, leader: &Block) -> bool {
        let non_votes = self.store.authorities_with(self.vote_round(), |block| {
            !self.store.is_vote(&block.reference(), leader)
        });
        non_votes.len() >= self.committee.quorum_threshold()
    }

    /// `SupportedLeader`: `2f + 1` distinct certify-round authors have a
    /// block that certifies `leader`.
    fn supported_leader(&self, leader: &Block) -> bool {
        let certifiers = self.store.authorities_with(self.certify_round(), |block| {
            self.store.is_cert(block, leader)
        });
        certifiers.len() >= self.committee.quorum_threshold()
    }

    /// `TryDirectDecide` (Algorithm 2 lines 23–27), with the slot-level
    /// refinement of Appendix B: commit whichever candidate is certified
    /// (at most one can be — Lemma 2); skip the slot only when *every*
    /// candidate in view is skipped and `2f + 1` vote-round authors are
    /// present (which also rules out certification of candidates outside
    /// our view, because votes of blocks in a causally-complete DAG always
    /// point inside it).
    pub fn try_direct_decide(&self, slot: Slot) -> Decision {
        let candidates = self.store.blocks_in_slot(slot);
        for candidate in &candidates {
            if self.supported_leader(candidate) {
                return Decision::Commit(Arc::clone(candidate));
            }
        }
        let vote_round_authors = self.store.authorities_at_round(self.vote_round());
        if vote_round_authors.len() < self.committee.quorum_threshold() {
            return Decision::Undecided;
        }
        if candidates
            .iter()
            .all(|candidate| self.skipped_leader(candidate))
        {
            return Decision::Skip;
        }
        Decision::Undecided
    }

    /// `TryIndirectDecide` (Algorithm 2 lines 28–35), given the already
    /// classified `anchor` block of a later wave: commit the candidate with
    /// a certificate in the anchor's causal history; skip if there is none.
    ///
    /// The anchor's causal history is immutable, so this decision is stable.
    pub fn try_indirect_decide(&self, slot: Slot, anchor: &Block) -> Decision {
        let candidates = self.store.blocks_in_slot(slot);
        for candidate in &candidates {
            if self.is_certified_link(candidate, anchor) {
                return Decision::Commit(Arc::clone(candidate));
            }
        }
        Decision::Skip
    }

    /// `IsCertifiedLink(b_anchor, b_leader)`: a certify-round block of the
    /// leader's wave that certifies the leader *and* lies in the anchor's
    /// causal history.
    fn is_certified_link(&self, leader: &Block, anchor: &Block) -> bool {
        let anchor_ref = anchor.reference();
        for decision_block in self.store.blocks_at_round(self.certify_round()) {
            if self.store.is_cert(decision_block, leader)
                && self.store.is_link(&decision_block.reference(), &anchor_ref)
            {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_dag::{BlockSpec, DagBuilder};
    use mahimahi_types::TestCommittee;

    fn setup_dag(rounds: usize) -> (Committee, DagBuilder) {
        let setup = TestCommittee::new(4, 21);
        let committee = setup.committee().clone();
        let mut dag = DagBuilder::new(setup);
        dag.add_full_rounds(rounds);
        (committee, dag)
    }

    #[test]
    fn coin_cache_requires_quorum_of_shares() {
        let (committee, mut dag) = setup_dag(1);
        let coins = CoinCache::default();
        // Round 1 has 4 blocks with shares: coin opens.
        assert!(coins.coin_for_round(&committee, dag.store(), 1).is_some());
        // Round 2 has no blocks yet.
        assert!(coins.coin_for_round(&committee, dag.store(), 2).is_none());
        // Two blocks at round 2 (< 2f+1 = 3 shares): still closed.
        dag.add_round(vec![BlockSpec::new(0), BlockSpec::new(1)]);
        assert!(coins.coin_for_round(&committee, dag.store(), 2).is_none());
    }

    #[test]
    fn coin_value_is_stable_as_blocks_arrive() {
        let (committee, mut dag) = setup_dag(1);
        let coins = CoinCache::default();
        dag.add_round(vec![
            BlockSpec::new(0),
            BlockSpec::new(1),
            BlockSpec::new(2),
        ]);
        let early = coins.coin_for_round(&committee, dag.store(), 2).unwrap();
        // A fresh cache over the grown DAG must agree (threshold property).
        dag.add_round(vec![
            BlockSpec::new(0),
            BlockSpec::new(1),
            BlockSpec::new(2),
        ]);
        let fresh = CoinCache::default()
            .coin_for_round(&committee, dag.store(), 2)
            .unwrap();
        assert_eq!(early.as_bytes(), fresh.as_bytes());
    }

    #[test]
    fn malformed_coin_share_is_skipped_not_panicked() {
        use mahimahi_types::{Block, BlockBuilder, TestCommittee};

        let setup = TestCommittee::new(4, 21);
        let committee = setup.committee().clone();
        let mut store = BlockStore::new(4, 3);
        let genesis = Block::all_genesis(4);
        let parents_for = |author: u32| {
            let mut parents = vec![genesis[author as usize].reference()];
            parents.extend(
                genesis
                    .iter()
                    .map(Block::reference)
                    .filter(|reference| reference.author.0 != author),
            );
            parents
        };
        for author in 0..2u32 {
            let block = BlockBuilder::new(AuthorityIndex(author), 1)
                .parents(parents_for(author))
                .build(&setup)
                .into_arc();
            store.insert(block).unwrap();
        }
        // Authority 2 embeds a garbage share (valid for round 99, not 1)
        // in a correctly *signed* round-1 block — Byzantine input that a
        // validator may hold in its store (e.g. accepted before
        // validation-policy hardening, or injected via a buggy peer).
        let garbage = setup.coin_secret(AuthorityIndex(2)).share_for_round(99);
        let bad = BlockBuilder::new(AuthorityIndex(2), 1)
            .parents(parents_for(2))
            .coin_share(garbage)
            .build(&setup)
            .into_arc();
        assert!(bad.verify(&committee).is_err(), "share must be malformed");
        store.insert(bad).unwrap();

        let coins = CoinCache::default();
        // Three round-1 authors but only two *valid* shares: the coin stays
        // closed — and, the regression, the node does not panic.
        assert!(coins.coin_for_round(&committee, &store, 1).is_none());

        // A fourth, honest block reaches the threshold of valid shares; the
        // garbage share is skipped and the coin matches the clean value.
        let block = BlockBuilder::new(AuthorityIndex(3), 1)
            .parents(parents_for(3))
            .build(&setup)
            .into_arc();
        store.insert(block).unwrap();
        let value = coins
            .coin_for_round(&committee, &store, 1)
            .expect("threshold of valid shares present");
        let clean: Vec<CoinShare> = [0u32, 1, 3]
            .iter()
            .map(|&author| setup.coin_secret(AuthorityIndex(author)).share_for_round(1))
            .collect();
        let expected = committee.coin_public().combine(1, &clean).unwrap();
        assert_eq!(value.as_bytes(), expected.as_bytes());
    }

    #[test]
    fn wave_arithmetic() {
        let (committee, dag) = setup_dag(1);
        let decider = WaveDecider::new(&committee, dag.store(), 5, 10, 0);
        assert_eq!(decider.vote_round(), 13);
        assert_eq!(decider.certify_round(), 14);
        let decider = WaveDecider::new(&committee, dag.store(), 4, 10, 1);
        assert_eq!(decider.vote_round(), 12);
        assert_eq!(decider.certify_round(), 13);
        let decider = WaveDecider::new(&committee, dag.store(), 3, 10, 0);
        assert_eq!(decider.vote_round(), 11);
        assert_eq!(decider.certify_round(), 12);
    }

    #[test]
    fn full_dag_direct_commits_every_slot() {
        let (committee, dag) = setup_dag(6);
        let coins = crate::election::CoinElector::new();
        for wave_length in [3u64, 4, 5] {
            let propose = 1;
            for offset in 0..2 {
                let decider =
                    WaveDecider::new(&committee, dag.store(), wave_length, propose, offset);
                let slot = decider.leader_slot(&coins).expect("coin available");
                assert_eq!(slot.round, propose);
                let decision = decider.try_direct_decide(slot);
                assert!(
                    matches!(&decision, Decision::Commit(block) if block.slot() == slot),
                    "wave {wave_length} offset {offset}: {decision:?}"
                );
            }
        }
    }

    #[test]
    fn crashed_leader_is_directly_skipped() {
        let setup = TestCommittee::new(4, 21);
        let committee = setup.committee().clone();
        let mut dag = DagBuilder::new(setup);
        dag.add_full_round();
        // Author 3 crashes after round 1: rounds 2.. have 3 producers.
        for _ in 0..6 {
            dag.add_round_producers(&[0, 1, 2]);
        }
        let coins = crate::election::CoinElector::new();
        // Find a round whose elected leader (offset 0) is the crashed v3.
        let mut exercised = false;
        for propose in 2..=4u64 {
            let decider = WaveDecider::new(&committee, dag.store(), 5, propose, 0);
            let Some(slot) = decider.leader_slot(&coins) else {
                continue;
            };
            let decision = decider.try_direct_decide(slot);
            if slot.authority == AuthorityIndex(3) {
                assert_eq!(decision, Decision::Skip, "crashed leader at {slot}");
                exercised = true;
            } else {
                assert!(
                    matches!(decision, Decision::Commit(_)),
                    "live leader {slot}"
                );
            }
        }
        // With 3 rounds × 1 offset and a uniform coin the crashed author is
        // elected with probability 1 − (3/4)³ ≈ 58%; if the seed elected
        // only live leaders, check explicitly via offsets.
        if !exercised {
            for propose in 2..=4u64 {
                for offset in 1..4 {
                    let decider = WaveDecider::new(&committee, dag.store(), 5, propose, offset);
                    let Some(slot) = decider.leader_slot(&coins) else {
                        continue;
                    };
                    if slot.authority == AuthorityIndex(3) {
                        assert_eq!(decider.try_direct_decide(slot), Decision::Skip);
                        exercised = true;
                    }
                }
            }
        }
        assert!(exercised, "no slot elected the crashed leader");
    }

    #[test]
    fn insufficient_vote_round_leaves_undecided() {
        let setup = TestCommittee::new(4, 21);
        let committee = setup.committee().clone();
        let mut dag = DagBuilder::new(setup);
        dag.add_full_rounds(5);
        // Extend so the certify round of propose=3 (w=5 → round 7) exists
        // but its *vote* round 6 has only 2 authors... impossible: blocks at
        // round 7 need 2f+1 parents at round 6. Instead test the genuinely
        // reachable case: certify round present with quorum, vote round
        // full, but the leader's slot undecidable because votes are split
        // by equivocation — covered in committer tests. Here: certify round
        // absent entirely.
        let decider = WaveDecider::new(&committee, dag.store(), 5, 4, 0);
        let coins = crate::election::CoinElector::new();
        // Certify round 8 has no blocks: no coin, no slot.
        assert!(decider.leader_slot(&coins).is_none());
    }

    #[test]
    fn indirect_decide_through_anchor() {
        let (committee, mut dag) = setup_dag(7);
        let coins = crate::election::CoinElector::new();
        let slot = WaveDecider::new(&committee, dag.store(), 5, 1, 0)
            .leader_slot(&coins)
            .unwrap();
        // Any round-6 block serves as a committed anchor stand-in; the full
        // DAG guarantees a certificate for the slot inside its history.
        let r6 = dag.add_full_round();
        let anchor = dag.store().get(&r6[0]).unwrap().clone();
        let decider = WaveDecider::new(&committee, dag.store(), 5, 1, 0);
        let decision = decider.try_indirect_decide(slot, &anchor);
        assert!(matches!(decision, Decision::Commit(_)));
    }
}
