//! Algorithm 1's `TryDecide`: classify every leader slot from the last
//! committed round up to the highest decidable round.

use mahimahi_dag::BlockStore;
use mahimahi_types::{Committee, Round};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::decider::{Decision, WaveDecider};
use crate::election::{CoinElector, LeaderElector};
use crate::status::LeaderStatus;

/// Protocol parameters of the committer (Algorithm 1 lines 1–2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitterOptions {
    /// Rounds per wave: 5 (max asynchronous resilience), 4 (the paper's
    /// latency-optimized configuration), or 3 (safety only — Appendix C).
    pub wave_length: u64,
    /// Leader slots per round (`ℓ`); the paper evaluates 1–3 and defaults
    /// to 2 (Section 5.1).
    pub leaders_per_round: usize,
}

impl Default for CommitterOptions {
    fn default() -> Self {
        CommitterOptions {
            wave_length: 5,
            leaders_per_round: 2,
        }
    }
}

impl CommitterOptions {
    /// The paper's `Mahi-Mahi-5` configuration.
    pub fn mahi_mahi_5(leaders_per_round: usize) -> Self {
        CommitterOptions {
            wave_length: 5,
            leaders_per_round,
        }
    }

    /// The paper's `Mahi-Mahi-4` configuration.
    pub fn mahi_mahi_4(leaders_per_round: usize) -> Self {
        CommitterOptions {
            wave_length: 4,
            leaders_per_round,
        }
    }
}

/// The Mahi-Mahi committer: a pure function from a local DAG to a sequence
/// of slot classifications. Stateless apart from memoized coin values and
/// decided slots, so calls are idempotent and cheap to repeat as the DAG
/// grows.
pub struct Committer {
    committee: Committee,
    options: CommitterOptions,
    elector: Arc<dyn LeaderElector>,
    /// Memoized decided slots. Sound because the decision rules are stable
    /// over a growing causally-complete DAG (a slot classified commit or
    /// skip never changes — see the stability tests). Undecided slots are
    /// recomputed on every call.
    decided: Mutex<BTreeMap<(Round, usize), LeaderStatus>>,
}

impl Committer {
    /// Creates a committer for `committee` with the given options, electing
    /// leaders through the global perfect coin ([`CoinElector`]).
    ///
    /// # Panics
    ///
    /// Panics if `wave_length < 3` or if `leaders_per_round` is zero or
    /// exceeds the committee size.
    pub fn new(committee: Committee, options: CommitterOptions) -> Self {
        Self::with_elector(committee, options, Arc::new(CoinElector::new()))
    }

    /// Creates a committer with a custom election strategy (conformance
    /// tests pin elections with [`crate::FixedElector`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Committer::new`].
    pub fn with_elector(
        committee: Committee,
        options: CommitterOptions,
        elector: Arc<dyn LeaderElector>,
    ) -> Self {
        assert!(options.wave_length >= 3, "waves need at least 3 rounds");
        assert!(
            options.leaders_per_round >= 1 && options.leaders_per_round <= committee.size(),
            "leaders per round must be in 1..=committee size"
        );
        Committer {
            committee,
            options,
            elector,
            decided: Mutex::new(BTreeMap::new()),
        }
    }

    /// The committee this committer decides for.
    pub fn committee(&self) -> &Committee {
        &self.committee
    }

    /// The configured options.
    pub fn options(&self) -> CommitterOptions {
        self.options
    }

    /// The highest Propose round whose Certify round can exist in `store`.
    pub fn highest_decidable_round(&self, store: &BlockStore) -> Round {
        store
            .highest_round()
            .saturating_sub(self.options.wave_length - 1)
    }

    /// `TryDecide(r_committed, r_highest)` (Algorithm 1 lines 11–23):
    /// classifies every leader slot of rounds `from_round ..= highest
    /// decidable`, returned in ascending `(round, leader offset)` order.
    ///
    /// Slots are processed from the highest down so that the indirect rule
    /// can consult the (already computed) statuses of later slots when
    /// searching for an anchor.
    pub fn try_decide(&self, store: &BlockStore, from_round: Round) -> Vec<LeaderStatus> {
        let from_round = from_round.max(1);
        let highest = self.highest_decidable_round(store);
        if highest < from_round {
            return Vec::new();
        }
        // (round, offset) → status, filled from the top down. Previously
        // decided slots come from the memo; only undecided ones recompute.
        let mut statuses: BTreeMap<(Round, usize), LeaderStatus> = BTreeMap::new();
        let mut decided = self.decided.lock();
        for round in (from_round..=highest).rev() {
            for offset in (0..self.options.leaders_per_round).rev() {
                let status = match decided.get(&(round, offset)) {
                    Some(status) => status.clone(),
                    None => {
                        let status = self.decide_slot(store, round, offset, &statuses);
                        if status.is_decided() {
                            decided.insert((round, offset), status.clone());
                        }
                        status
                    }
                };
                statuses.insert((round, offset), status);
            }
        }
        statuses.into_values().collect()
    }

    /// Classifies a single slot using the direct rule, falling back to the
    /// indirect rule (Algorithm 1 lines 19–21).
    fn decide_slot(
        &self,
        store: &BlockStore,
        round: Round,
        offset: usize,
        later: &BTreeMap<(Round, usize), LeaderStatus>,
    ) -> LeaderStatus {
        let decider = WaveDecider::new(
            &self.committee,
            store,
            self.options.wave_length,
            round,
            offset,
        );
        let Some(slot) = decider.leader_slot(self.elector.as_ref()) else {
            // The coin for this round has not opened: the slot's authority
            // is still unknown.
            return LeaderStatus::Undecided { round, offset };
        };
        match decider.try_direct_decide(slot) {
            Decision::Commit(block) => return LeaderStatus::Commit(block),
            Decision::Skip => return LeaderStatus::Skip(slot),
            Decision::Undecided => {}
        }
        // Indirect rule: find the anchor — the earliest slot of a later
        // wave (round > certify round) not classified as skip.
        let anchor_floor = round + self.options.wave_length;
        let anchor = later
            .range((anchor_floor, 0)..)
            .map(|(_, status)| status)
            .find(|status| !matches!(status, LeaderStatus::Skip(_)));
        match anchor {
            Some(LeaderStatus::Commit(anchor_block)) => {
                match decider.try_indirect_decide(slot, anchor_block) {
                    Decision::Commit(block) => LeaderStatus::Commit(block),
                    Decision::Skip => LeaderStatus::Skip(slot),
                    Decision::Undecided => unreachable!("indirect rule always decides"),
                }
            }
            // Anchor undecided or not found: stay undecided (line 35).
            _ => LeaderStatus::Undecided { round, offset },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_dag::DagBuilder;
    use mahimahi_types::{AuthorityIndex, TestCommittee};

    fn committer(setup: &TestCommittee, wave_length: u64, leaders: usize) -> Committer {
        Committer::new(
            setup.committee().clone(),
            CommitterOptions {
                wave_length,
                leaders_per_round: leaders,
            },
        )
    }

    #[test]
    fn empty_dag_decides_nothing() {
        let setup = TestCommittee::new(4, 3);
        let committer = committer(&setup, 5, 2);
        let dag = DagBuilder::new(setup);
        assert!(committer.try_decide(dag.store(), 1).is_empty());
    }

    #[test]
    fn full_dag_commits_everything_decidable() {
        let setup = TestCommittee::new(4, 3);
        for wave_length in [4u64, 5] {
            for leaders in [1usize, 2, 3] {
                let committer = committer(&setup, wave_length, leaders);
                let mut dag = DagBuilder::new(setup.clone());
                dag.add_full_rounds(10);
                let statuses = committer.try_decide(dag.store(), 1);
                let decidable = 10 - (wave_length - 1);
                assert_eq!(statuses.len(), decidable as usize * leaders);
                for status in &statuses {
                    assert!(
                        matches!(status, LeaderStatus::Commit(_)),
                        "w={wave_length} l={leaders}: {status}"
                    );
                }
                // Ascending round order, each round exactly `leaders` times.
                let rounds: Vec<Round> = statuses.iter().map(LeaderStatus::round).collect();
                let mut expected = Vec::new();
                for round in 1..=decidable {
                    for _ in 0..leaders {
                        expected.push(round);
                    }
                }
                assert_eq!(rounds, expected);
            }
        }
    }

    #[test]
    fn committed_blocks_match_their_slots() {
        let setup = TestCommittee::new(4, 3);
        let committer = committer(&setup, 5, 2);
        let mut dag = DagBuilder::new(setup);
        dag.add_full_rounds(8);
        for status in committer.try_decide(dag.store(), 1) {
            let LeaderStatus::Commit(block) = status else {
                panic!("full dag must commit");
            };
            // The block's author must be the coin-elected authority: verify
            // determinism by re-deciding.
            let again = committer.try_decide(dag.store(), block.round());
            assert!(again.iter().any(|s| s.committed_block() == Some(&block)));
        }
    }

    #[test]
    fn from_round_skips_lower_rounds() {
        let setup = TestCommittee::new(4, 3);
        let committer = committer(&setup, 5, 1);
        let mut dag = DagBuilder::new(setup);
        dag.add_full_rounds(10);
        let statuses = committer.try_decide(dag.store(), 4);
        assert_eq!(statuses.first().map(LeaderStatus::round), Some(4));
        assert_eq!(statuses.len(), 3); // rounds 4, 5, 6
    }

    #[test]
    fn crashed_leaders_skip_live_leaders_commit() {
        let setup = TestCommittee::new(4, 3);
        let committer = committer(&setup, 5, 2);
        let mut dag = DagBuilder::new(setup);
        dag.add_full_round();
        for _ in 0..9 {
            dag.add_round_producers(&[0, 1, 2]);
        }
        let statuses = committer.try_decide(dag.store(), 1);
        assert!(!statuses.is_empty());
        let mut skips = 0;
        let mut commits = 0;
        for status in &statuses {
            match status {
                LeaderStatus::Commit(block) => {
                    assert_ne!(block.author(), AuthorityIndex(3));
                    commits += 1;
                }
                LeaderStatus::Skip(slot) => {
                    assert_eq!(slot.authority, AuthorityIndex(3));
                    skips += 1;
                }
                LeaderStatus::Undecided { .. } => {}
            }
        }
        assert!(commits > 0, "live leaders must commit");
        assert!(skips > 0, "crashed leader slots must be skipped promptly");
    }

    #[test]
    fn undecided_tail_when_certify_round_missing() {
        let setup = TestCommittee::new(4, 3);
        let committer = committer(&setup, 5, 1);
        let mut dag = DagBuilder::new(setup);
        dag.add_full_rounds(5);
        // Round 1 is decidable (certify round 5 exists); nothing above.
        let statuses = committer.try_decide(dag.store(), 1);
        assert_eq!(statuses.len(), 1);
        assert!(statuses[0].is_decided());
    }

    #[test]
    fn decisions_are_stable_as_dag_grows() {
        let setup = TestCommittee::new(4, 3);
        let committer = committer(&setup, 4, 2);
        let mut dag = DagBuilder::new(setup);
        dag.add_full_round();
        for _ in 0..8 {
            dag.add_round_producers(&[0, 1, 2]);
        }
        let early: Vec<String> = committer
            .try_decide(dag.store(), 1)
            .iter()
            .filter(|s| s.is_decided())
            .map(|s| s.to_string())
            .collect();
        dag.add_round_producers(&[0, 1, 2]);
        dag.add_round_producers(&[0, 1, 2]);
        let late: Vec<String> = committer
            .try_decide(dag.store(), 1)
            .iter()
            .filter(|s| s.is_decided())
            .map(|s| s.to_string())
            .collect();
        // Previously decided slots keep their decisions.
        assert!(late.len() >= early.len());
        for (early_status, late_status) in early.iter().zip(&late) {
            assert_eq!(early_status, late_status);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3 rounds")]
    fn rejects_tiny_waves() {
        let setup = TestCommittee::new(4, 3);
        let _ = Committer::new(
            setup.committee().clone(),
            CommitterOptions {
                wave_length: 2,
                leaders_per_round: 1,
            },
        );
    }

    #[test]
    #[should_panic(expected = "leaders per round")]
    fn rejects_zero_leaders() {
        let setup = TestCommittee::new(4, 3);
        let _ = Committer::new(
            setup.committee().clone(),
            CommitterOptions {
                wave_length: 5,
                leaders_per_round: 0,
            },
        );
    }

    #[test]
    fn wave_3_is_safe_but_commits_less() {
        // Appendix C note: w = 3 satisfies safety; liveness is not
        // guaranteed. On a full DAG it still commits (the common-core
        // failure needs adversarial scheduling).
        let setup = TestCommittee::new(4, 3);
        let committer = committer(&setup, 3, 1);
        let mut dag = DagBuilder::new(setup);
        dag.add_full_rounds(6);
        let statuses = committer.try_decide(dag.store(), 1);
        assert!(statuses.iter().all(LeaderStatus::is_decided));
    }
}
