//! The bounded client-transaction mempool.
//!
//! Production DAG systems treat payload ingestion as a first-class
//! subsystem: Narwhal batches transactions into a certified mempool that
//! Bullshark orders by reference, while Mysticeti includes payloads
//! directly in uncertified DAG blocks under an explicit per-block budget.
//! This reproduction follows the Mysticeti shape — transactions ride in
//! the blocks themselves — so the mempool's job is admission control, not
//! dissemination:
//!
//! - **bounded occupancy**: capacities in transactions *and* bytes
//!   ([`MempoolConfig::capacity_txs`], [`MempoolConfig::capacity_bytes`]);
//!   a full pool rejects with [`SubmitResult::Full`] instead of growing —
//!   the backpressure signal clients and load generators key off;
//! - **digest-based dedup**: every accepted transaction's content digest is
//!   remembered; resubmissions (client retries, duplicate gossip) come back
//!   as [`SubmitResult::Duplicate`] and are never included twice;
//! - **per-block payload budget**: [`Mempool::next_payload`] drains at most
//!   [`MempoolConfig::max_block_txs`] transactions and
//!   [`MempoolConfig::max_block_bytes`] payload bytes per produced block,
//!   so one burst cannot monopolize a block or blow up its wire size;
//! - **per-client fairness**: pending transactions are held in one FIFO
//!   queue *per client id*, and [`Mempool::next_payload`] drains them with
//!   deficit round-robin (quantum = the block byte budget): each active
//!   client is served in rotation, so a single greedy connection cannot
//!   starve every other client out of block inclusion;
//! - **age-based forwarding**: [`Mempool::take_aged`] pops transactions
//!   that sat unproposed past a cutoff so the engine can hand them to a
//!   peer ([`Envelope::TxForward`]); the digests stay in the dedup set, so
//!   the forwarded transaction can never re-enter this pool and be
//!   proposed as "own" by two validators at once.
//!
//! The pool is transport-free and clock-free, like the engine that owns
//! it (callers pass in the engine's virtual time): determinism (same
//! submissions ⇒ same payloads) is what lets the recorded-trace replay and
//! driver-equivalence tests cover the ingestion path end to end.
//!
//! [`Envelope::TxForward`]: mahimahi_types::Envelope::TxForward

use mahimahi_crypto::Digest;
use mahimahi_types::Transaction;
use std::collections::{BTreeMap, HashSet, VecDeque};

/// The outcome of one transaction submission — the backpressure signal
/// surfaced to clients (and, through `Output::TxReceipt`, to drivers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitResult {
    /// The transaction entered the pool and will be included in a future
    /// own block.
    Accepted,
    /// A transaction with the same content digest was already accepted
    /// (pending, in flight, or committed); the submission is dropped.
    Duplicate,
    /// The pool is at capacity (in transactions or bytes); the client
    /// should back off and retry. One case is permanent: a single
    /// transaction larger than [`MempoolConfig::capacity_bytes`] can
    /// never be admitted, so a client seeing `Full` for the same
    /// transaction across an otherwise-draining pool should give up
    /// rather than retry forever.
    Full,
}

impl SubmitResult {
    /// Whether the submission was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, SubmitResult::Accepted)
    }
}

/// Capacity and per-block budget knobs of a [`Mempool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MempoolConfig {
    /// Maximum transactions held pending. Submissions past this bound are
    /// rejected with [`SubmitResult::Full`].
    pub capacity_txs: usize,
    /// Maximum pending payload bytes. Submissions that would exceed it are
    /// rejected with [`SubmitResult::Full`].
    pub capacity_bytes: usize,
    /// Maximum transactions drained into one produced block.
    pub max_block_txs: usize,
    /// Maximum payload bytes drained into one produced block. A single
    /// transaction larger than the budget is still included alone (the
    /// budget bounds batching, it must not wedge the queue). Doubles as
    /// the deficit-round-robin quantum of the per-client fair drain.
    pub max_block_bytes: usize,
}

impl Default for MempoolConfig {
    fn default() -> Self {
        MempoolConfig {
            capacity_txs: 100_000,
            capacity_bytes: 128 * 1024 * 1024,
            max_block_txs: 2_000,
            max_block_bytes: 4 * 1024 * 1024,
        }
    }
}

impl MempoolConfig {
    /// A small pool for unit tests: `capacity` transactions, generous byte
    /// bounds, blocks of at most `max_block_txs` transactions.
    pub fn test(capacity: usize, max_block_txs: usize) -> Self {
        MempoolConfig {
            capacity_txs: capacity,
            capacity_bytes: usize::MAX / 2,
            max_block_txs,
            max_block_bytes: usize::MAX / 2,
        }
    }
}

/// One pending transaction with its admission metadata.
#[derive(Debug)]
struct PoolTx {
    transaction: Transaction,
    /// Opaque client tag (submission/receive time) returned at inclusion.
    tag: u64,
    /// The submitting client id, threaded through to inclusion so commit
    /// notifications can find their way back.
    client: usize,
    /// Engine time at admission — what age-based forwarding keys off.
    enqueued: u64,
    /// Whether [`Mempool::take_aged`] may move this transaction to a peer.
    /// False for transactions that were themselves forwarded here: exactly
    /// one pool owns a transaction at a time, and a second hop could route
    /// it back to its origin, whose dedup set would silently drop it.
    forwardable: bool,
}

/// A bounded transaction pool with digest dedup, per-block payload
/// budgeting, and a deficit-round-robin fair drain across client queues.
/// See the [module docs](self) for the design.
#[derive(Debug)]
pub struct Mempool {
    config: MempoolConfig,
    /// Pending transactions, one FIFO queue per client id.
    queues: BTreeMap<usize, VecDeque<PoolTx>>,
    /// Deficit-round-robin service order over clients with pending
    /// transactions.
    rotation: VecDeque<usize>,
    /// Per-client byte deficits carried between service turns.
    deficits: BTreeMap<usize, usize>,
    /// Total pending transactions (sum over `queues`).
    txs: usize,
    /// Total pending payload bytes (sum over `queues`).
    bytes: usize,
    /// Digests of every transaction ever accepted (pending, in flight,
    /// forwarded, or committed). Grows with the accepted set — replay
    /// protection is retention, exactly like a nonce ledger.
    seen: HashSet<Digest>,
    accepted: u64,
    rejected_duplicate: u64,
    rejected_full: u64,
    rejected_rate_limited: u64,
    forwarded: u64,
    peak_txs: usize,
    peak_bytes: usize,
}

impl Mempool {
    /// An empty pool with the given bounds.
    pub fn new(config: MempoolConfig) -> Self {
        Mempool {
            config,
            queues: BTreeMap::new(),
            rotation: VecDeque::new(),
            deficits: BTreeMap::new(),
            txs: 0,
            bytes: 0,
            seen: HashSet::new(),
            accepted: 0,
            rejected_duplicate: 0,
            rejected_full: 0,
            rejected_rate_limited: 0,
            forwarded: 0,
            peak_txs: 0,
            peak_bytes: 0,
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> &MempoolConfig {
        &self.config
    }

    /// Whether a transaction with this digest was ever accepted here —
    /// the scope of the exactly-once commit guarantee (an equivocating
    /// *peer* can get its own spam payload linearized under two block
    /// digests; transactions accepted by this validator cannot).
    pub fn was_accepted(&self, digest: &Digest) -> bool {
        self.seen.contains(digest)
    }

    /// Admits one transaction from `client`. `tag` is opaque client
    /// metadata carried alongside (submission time) and returned with the
    /// payload at inclusion; `now` is the engine's virtual time, recorded
    /// for age-based forwarding.
    pub fn submit(
        &mut self,
        transaction: Transaction,
        tag: u64,
        client: usize,
        now: u64,
    ) -> SubmitResult {
        self.admit(transaction, tag, client, now, true)
    }

    /// Admits a transaction forwarded from a peer's pool
    /// (`Envelope::TxForward`). Identical to [`Mempool::submit`] except
    /// the transaction is never forwarded again — one hop only, so
    /// exactly one pool owns it and it cannot bounce back into its
    /// origin's dedup set.
    pub fn submit_forwarded(
        &mut self,
        transaction: Transaction,
        tag: u64,
        client: usize,
        now: u64,
    ) -> SubmitResult {
        self.admit(transaction, tag, client, now, false)
    }

    fn admit(
        &mut self,
        transaction: Transaction,
        tag: u64,
        client: usize,
        now: u64,
        forwardable: bool,
    ) -> SubmitResult {
        let digest = transaction.digest();
        if self.seen.contains(&digest) {
            self.rejected_duplicate += 1;
            return SubmitResult::Duplicate;
        }
        if self.txs >= self.config.capacity_txs
            || self.bytes + transaction.len() > self.config.capacity_bytes
        {
            self.rejected_full += 1;
            return SubmitResult::Full;
        }
        self.seen.insert(digest);
        self.bytes += transaction.len();
        self.txs += 1;
        let queue = self.queues.entry(client).or_default();
        if queue.is_empty() {
            self.rotation.push_back(client);
        }
        queue.push_back(PoolTx {
            transaction,
            tag,
            client,
            enqueued: now,
            forwardable,
        });
        self.accepted += 1;
        self.peak_txs = self.peak_txs.max(self.txs);
        self.peak_bytes = self.peak_bytes.max(self.bytes);
        SubmitResult::Accepted
    }

    /// Counts a submission the engine's ingress policy turned away before
    /// it reached admission (per-client token bucket exhausted).
    pub fn note_rate_limited(&mut self) {
        self.rejected_rate_limited += 1;
    }

    /// Drains the next block payload with deficit round-robin across the
    /// active client queues: at most [`MempoolConfig::max_block_txs`]
    /// transactions and [`MempoolConfig::max_block_bytes`] bytes (always
    /// at least one transaction when the pool is non-empty). Each active
    /// client is served at most one quantum (= the block byte budget) per
    /// call and the rotation persists across calls, so sustained load from
    /// one client cannot starve the others. Returns the transactions and
    /// their `(tag, client)` pairs, index-parallel.
    pub fn next_payload(&mut self) -> (Vec<Transaction>, Vec<(u64, usize)>) {
        let mut transactions = Vec::new();
        let mut tags = Vec::new();
        let mut payload_bytes = 0usize;
        let active = self.rotation.len();
        if active == 0 {
            return (transactions, tags);
        }
        // Each service visit grants one quantum of bytes and one equal
        // share of the block's transaction budget; with a single active
        // client this degenerates to the plain FIFO drain.
        let quantum = (self.config.max_block_bytes / active).max(1);
        let tx_share = (self.config.max_block_txs / active).max(1);
        loop {
            let mut took_this_cycle = false;
            let mut turns = self.rotation.len();
            while turns > 0 && transactions.len() < self.config.max_block_txs {
                turns -= 1;
                let Some(client) = self.rotation.pop_front() else {
                    break;
                };
                // Deficits carry over uncapped while the client stays
                // backlogged, so a transaction larger than one quantum is
                // eventually served instead of starving behind smaller
                // clients; an emptied queue drops its credit (classic
                // DRR: nothing accrues while inactive).
                let mut deficit = self
                    .deficits
                    .remove(&client)
                    .unwrap_or(0)
                    .saturating_add(quantum);
                let mut block_full = false;
                let mut took = 0usize;
                let queue = self
                    .queues
                    .get_mut(&client)
                    .expect("rotation entries have queues");
                while transactions.len() < self.config.max_block_txs {
                    let Some(front) = queue.front() else {
                        break;
                    };
                    let len = front.transaction.len();
                    // The budgets never wedge the queue: the block's first
                    // transaction is always included, whatever its size.
                    if !transactions.is_empty() && payload_bytes + len > self.config.max_block_bytes
                    {
                        block_full = true;
                        break;
                    }
                    if !transactions.is_empty() && (deficit < len || took >= tx_share) {
                        break;
                    }
                    let entry = queue.pop_front().expect("peeked front");
                    deficit = deficit.saturating_sub(len);
                    payload_bytes += len;
                    self.bytes -= len;
                    self.txs -= 1;
                    transactions.push(entry.transaction);
                    tags.push((entry.tag, entry.client));
                    took += 1;
                    took_this_cycle = true;
                }
                if self.queues.get(&client).is_some_and(VecDeque::is_empty) {
                    self.queues.remove(&client);
                    self.deficits.remove(&client);
                } else {
                    self.rotation.push_back(client);
                    self.deficits.insert(client, deficit);
                }
                if block_full {
                    return (transactions, tags);
                }
            }
            // Keep cycling while the block has room and progress is being
            // made (leftover budget redistributes to still-backlogged
            // clients); a barren cycle ends the drain.
            if !took_this_cycle
                || transactions.len() >= self.config.max_block_txs
                || self.rotation.is_empty()
            {
                return (transactions, tags);
            }
        }
    }

    /// Pops every pending transaction enqueued at or before `cutoff`, up
    /// to `max`, marking them forwarded. The digests remain in the dedup
    /// set — a forwarded transaction can never be re-admitted here, which
    /// is the exactly-once half of the forwarding contract. Returns
    /// `(transaction, tag, client)` triples in client-id order.
    pub fn take_aged(&mut self, cutoff: u64, max: usize) -> Vec<(Transaction, u64, usize)> {
        let mut taken = Vec::new();
        let clients: Vec<usize> = self.queues.keys().copied().collect();
        for client in clients {
            if taken.len() >= max {
                break;
            }
            let queue = self.queues.get_mut(&client).expect("listed client");
            while taken.len() < max {
                // Per-client FIFO + monotone engine time: the front entry
                // is the oldest of its queue. A non-forwardable front
                // (itself forwarded here) ends the queue's scan — FIFO
                // order is preserved even for the forwarding path.
                match queue.front() {
                    Some(entry) if entry.enqueued <= cutoff && entry.forwardable => {
                        let entry = queue.pop_front().expect("peeked front");
                        self.bytes -= entry.transaction.len();
                        self.txs -= 1;
                        self.forwarded += 1;
                        taken.push((entry.transaction, entry.tag, entry.client));
                    }
                    _ => break,
                }
            }
            if queue.is_empty() {
                self.queues.remove(&client);
                self.rotation.retain(|&active| active != client);
                self.deficits.remove(&client);
            }
        }
        taken
    }

    /// The enqueue time of the oldest pending *forwardable* transaction,
    /// if any — what the engine schedules its next forwarding wake-up
    /// from.
    pub fn oldest_enqueued(&self) -> Option<u64> {
        self.queues
            .values()
            .filter_map(|queue| {
                queue
                    .front()
                    .filter(|entry| entry.forwardable)
                    .map(|entry| entry.enqueued)
            })
            .min()
    }

    /// Pending transactions for one client id.
    pub fn pending_for(&self, client: usize) -> usize {
        self.queues.get(&client).map_or(0, VecDeque::len)
    }

    /// Pending transactions.
    pub fn len(&self) -> usize {
        self.txs
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.txs == 0
    }

    /// Pending payload bytes.
    pub fn pending_bytes(&self) -> usize {
        self.bytes
    }

    /// Highest pending-transaction count ever observed.
    pub fn peak_txs(&self) -> usize {
        self.peak_txs
    }

    /// Highest pending-byte count ever observed.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Transactions accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Submissions rejected as duplicates so far.
    pub fn rejected_duplicate(&self) -> u64 {
        self.rejected_duplicate
    }

    /// Submissions rejected for capacity so far.
    pub fn rejected_full(&self) -> u64 {
        self.rejected_full
    }

    /// Submissions turned away by the per-client rate limit so far.
    pub fn rejected_rate_limited(&self) -> u64 {
        self.rejected_rate_limited
    }

    /// Transactions handed to a peer by age-based forwarding so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

/// A point-in-time accounting of one validator's transaction pipeline,
/// produced by `ValidatorEngine::tx_integrity`.
///
/// For a correct (honest-proposing) validator the pipeline conserves
/// transactions: everything accepted is either still pending in the pool,
/// in flight inside a produced-but-uncommitted own block, forwarded to a
/// peer's pool, or committed —
/// [`TxIntegrityReport::conserves_transactions`]. The `tx-integrity`
/// scenario oracle holds every correct validator to that conservation law,
/// to a zero duplicate-commit count, and to bounded pool occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxIntegrityReport {
    /// Transactions accepted into the pool.
    pub accepted: u64,
    /// Submissions rejected as digest duplicates.
    pub rejected_duplicate: u64,
    /// Submissions rejected for capacity ([`SubmitResult::Full`]).
    pub rejected_full: u64,
    /// Submissions turned away by the per-client token bucket before
    /// admission (`TxVerdict::RateLimited`).
    pub rejected_rate_limited: u64,
    /// Transactions still pending in the pool.
    pub pending: u64,
    /// Transactions drained into own blocks that have not committed yet.
    pub in_flight: u64,
    /// Own accepted transactions that committed.
    pub own_committed: u64,
    /// Accepted transactions handed to a peer by age-based forwarding —
    /// the peer's pool owns their inclusion from then on, so they leave
    /// this validator's pending/in-flight/committed accounting but stay in
    /// the conservation law.
    pub forwarded: u64,
    /// Transactions committed twice across this validator's *own* blocks
    /// — the exactly-once guarantee of the local pipeline (accept → drain
    /// once → include once → commit once); must be zero everywhere,
    /// always. Scoped to own blocks because they are unforgeable: a
    /// Byzantine peer can copy any observed payload into blocks it signs
    /// itself, which is its misbehavior (attributed by the evidence
    /// subsystem), not a defect of this validator's pipeline.
    pub duplicate_committed: u64,
    /// Peak pool occupancy in transactions.
    pub peak_occupancy_txs: u64,
    /// Peak pool occupancy in bytes.
    pub peak_occupancy_bytes: u64,
    /// Configured pool capacity in transactions.
    pub capacity_txs: u64,
    /// Configured pool capacity in bytes.
    pub capacity_bytes: u64,
}

impl TxIntegrityReport {
    /// No accepted transaction was lost: accepted = pending + in flight +
    /// committed + forwarded. Holds for every honest-proposing validator
    /// (Byzantine strategies deliberately build several block variants
    /// over one drain, which double-counts their in-flight tags).
    pub fn conserves_transactions(&self) -> bool {
        self.accepted == self.pending + self.in_flight + self.own_committed + self.forwarded
    }

    /// The pool never outgrew its configured bounds.
    pub fn occupancy_bounded(&self) -> bool {
        self.peak_occupancy_txs <= self.capacity_txs
            && self.peak_occupancy_bytes <= self.capacity_bytes
    }

    /// Every integrity violation in this report, as human-readable
    /// descriptions (empty when the pipeline is sound). One shared
    /// definition of "sound" — the `tx-integrity` scenario oracle and the
    /// load generator's gates both build on this, so the checks cannot
    /// drift apart.
    pub fn violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if self.duplicate_committed != 0 {
            violations.push(format!(
                "{} accepted transaction(s) committed more than once across own blocks",
                self.duplicate_committed
            ));
        }
        if !self.conserves_transactions() {
            violations.push(format!(
                "transactions lost: accepted {} != pending {} + in-flight {} + committed {} \
                 + forwarded {}",
                self.accepted, self.pending, self.in_flight, self.own_committed, self.forwarded
            ));
        }
        if !self.occupancy_bounded() {
            violations.push(format!(
                "mempool outgrew its bounds: peak {}txs/{}B over capacity {}txs/{}B",
                self.peak_occupancy_txs,
                self.peak_occupancy_bytes,
                self.capacity_txs,
                self.capacity_bytes
            ));
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(id: u64) -> Transaction {
        Transaction::new(id.to_le_bytes().to_vec())
    }

    /// Single-client submission shorthand (client 0, enqueued at `tag`).
    fn put(pool: &mut Mempool, transaction: Transaction, tag: u64) -> SubmitResult {
        pool.submit(transaction, tag, 0, tag)
    }

    #[test]
    fn fifo_order_and_tags_are_preserved() {
        let mut pool = Mempool::new(MempoolConfig::test(10, 2));
        for id in 0..3u64 {
            assert_eq!(put(&mut pool, tx(id), 100 + id), SubmitResult::Accepted);
        }
        let (txs, tags) = pool.next_payload();
        assert_eq!(txs, vec![tx(0), tx(1)]);
        assert_eq!(tags, vec![(100, 0), (101, 0)]);
        let (txs, tags) = pool.next_payload();
        assert_eq!(txs, vec![tx(2)]);
        assert_eq!(tags, vec![(102, 0)]);
        assert!(pool.is_empty());
    }

    #[test]
    fn duplicates_are_rejected_even_after_inclusion() {
        let mut pool = Mempool::new(MempoolConfig::test(10, 10));
        assert_eq!(put(&mut pool, tx(7), 0), SubmitResult::Accepted);
        assert_eq!(put(&mut pool, tx(7), 1), SubmitResult::Duplicate);
        let _ = pool.next_payload();
        // Drained into a block: a retry must still be deduplicated, or the
        // transaction would commit twice.
        assert_eq!(put(&mut pool, tx(7), 2), SubmitResult::Duplicate);
        assert_eq!(pool.rejected_duplicate(), 2);
    }

    #[test]
    fn tx_capacity_bounds_occupancy() {
        let mut pool = Mempool::new(MempoolConfig::test(2, 10));
        assert_eq!(put(&mut pool, tx(0), 0), SubmitResult::Accepted);
        assert_eq!(put(&mut pool, tx(1), 0), SubmitResult::Accepted);
        assert_eq!(put(&mut pool, tx(2), 0), SubmitResult::Full);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.peak_txs(), 2);
        assert_eq!(pool.rejected_full(), 1);
        // Draining frees capacity.
        let _ = pool.next_payload();
        assert_eq!(put(&mut pool, tx(2), 0), SubmitResult::Accepted);
    }

    #[test]
    fn byte_capacity_bounds_occupancy() {
        let config = MempoolConfig {
            capacity_txs: 100,
            capacity_bytes: 20,
            max_block_txs: 100,
            max_block_bytes: 1_000,
        };
        let mut pool = Mempool::new(config);
        assert_eq!(put(&mut pool, tx(0), 0), SubmitResult::Accepted); // 8 bytes
        assert_eq!(put(&mut pool, tx(1), 0), SubmitResult::Accepted); // 16 bytes
        assert_eq!(put(&mut pool, tx(2), 0), SubmitResult::Full); // would be 24
        assert_eq!(pool.pending_bytes(), 16);
        assert_eq!(pool.peak_bytes(), 16);
    }

    #[test]
    fn block_byte_budget_splits_payloads() {
        let config = MempoolConfig {
            capacity_txs: 100,
            capacity_bytes: 10_000,
            max_block_txs: 100,
            max_block_bytes: 20,
        };
        let mut pool = Mempool::new(config);
        for id in 0..4u64 {
            put(&mut pool, tx(id), id);
        }
        // 8-byte transactions, 20-byte budget: two per block.
        let (txs, _) = pool.next_payload();
        assert_eq!(txs.len(), 2);
        let (txs, _) = pool.next_payload();
        assert_eq!(txs.len(), 2);
    }

    #[test]
    fn oversized_transaction_is_included_alone() {
        let config = MempoolConfig {
            capacity_txs: 100,
            capacity_bytes: 10_000,
            max_block_txs: 100,
            max_block_bytes: 10,
        };
        let mut pool = Mempool::new(config);
        put(&mut pool, Transaction::new(vec![1; 64]), 0);
        put(&mut pool, tx(1), 1);
        // Larger than the whole block budget: still drained (alone), never
        // wedged at the head of the queue.
        let (txs, _) = pool.next_payload();
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].len(), 64);
        let (txs, _) = pool.next_payload();
        assert_eq!(txs, vec![tx(1)]);
    }

    #[test]
    fn drain_round_robins_across_clients() {
        // Client 9 floods 50 transactions before clients 1 and 2 submit
        // one each; a 4-transaction block must still include both of the
        // small clients' transactions, not four of the flooder's.
        let mut pool = Mempool::new(MempoolConfig::test(100, 4));
        for id in 0..50u64 {
            pool.submit(tx(id), id, 9, 0);
        }
        pool.submit(tx(100), 100, 1, 0);
        pool.submit(tx(200), 200, 2, 0);
        let (txs, tags) = pool.next_payload();
        assert_eq!(txs.len(), 4);
        let clients: Vec<usize> = tags.iter().map(|&(_, client)| client).collect();
        assert!(clients.contains(&1), "client 1 starved: {clients:?}");
        assert!(clients.contains(&2), "client 2 starved: {clients:?}");
    }

    #[test]
    fn rotation_persists_across_payloads() {
        // Two clients with two transactions each, one-transaction blocks:
        // service alternates instead of draining one client first.
        let mut pool = Mempool::new(MempoolConfig::test(100, 1));
        for id in 0..2u64 {
            pool.submit(tx(id), id, 5, 0);
            pool.submit(tx(10 + id), 10 + id, 6, 0);
        }
        let mut served = Vec::new();
        for _ in 0..4 {
            let (_, tags) = pool.next_payload();
            served.push(tags[0].1);
        }
        assert_eq!(served, vec![5, 6, 5, 6]);
        assert!(pool.is_empty());
    }

    #[test]
    fn take_aged_pops_only_old_transactions_and_keeps_dedup() {
        let mut pool = Mempool::new(MempoolConfig::test(100, 10));
        pool.submit(tx(1), 1, 0, 1_000);
        pool.submit(tx(2), 2, 3, 2_000);
        pool.submit(tx(3), 3, 3, 9_000);
        let aged = pool.take_aged(2_000, 16);
        assert_eq!(aged.len(), 2);
        assert_eq!(aged[0].0, tx(1));
        assert_eq!((aged[0].1, aged[0].2), (1, 0));
        assert_eq!((aged[1].1, aged[1].2), (2, 3));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.forwarded(), 2);
        // Forwarded digests stay seen: re-submission is a duplicate, so
        // the transaction can never be proposed by two pools as "own".
        assert_eq!(pool.submit(tx(1), 9, 7, 9_500), SubmitResult::Duplicate);
        assert_eq!(pool.oldest_enqueued(), Some(9_000));
        // Conservation bookkeeping: accepted = pending + forwarded here.
        assert_eq!(pool.accepted(), 3);
        assert_eq!(pool.len() as u64 + pool.forwarded(), 3);
    }

    #[test]
    fn forwarded_in_transactions_never_forward_again() {
        let mut pool = Mempool::new(MempoolConfig::test(100, 10));
        pool.submit_forwarded(tx(1), 1, 2, 0);
        // One hop only: however stale, a forwarded-in transaction is never
        // moved to yet another pool.
        assert!(pool.take_aged(u64::MAX / 2, 16).is_empty());
        assert_eq!(pool.oldest_enqueued(), None);
        assert_eq!(pool.forwarded(), 0);
        // It is still included in blocks normally.
        let (txs, tags) = pool.next_payload();
        assert_eq!(txs, vec![tx(1)]);
        assert_eq!(tags, vec![(1, 2)]);
    }

    #[test]
    fn integrity_report_checks() {
        let report = TxIntegrityReport {
            accepted: 10,
            rejected_duplicate: 1,
            rejected_full: 2,
            pending: 3,
            in_flight: 3,
            own_committed: 3,
            forwarded: 1,
            duplicate_committed: 0,
            peak_occupancy_txs: 5,
            peak_occupancy_bytes: 100,
            capacity_txs: 8,
            capacity_bytes: 1_000,
            ..TxIntegrityReport::default()
        };
        assert!(report.conserves_transactions());
        assert!(report.occupancy_bounded());
        let lossy = TxIntegrityReport {
            own_committed: 2,
            ..report
        };
        assert!(!lossy.conserves_transactions());
        let overgrown = TxIntegrityReport {
            peak_occupancy_txs: 9,
            ..report
        };
        assert!(!overgrown.occupancy_bounded());
    }
}
