//! The bounded client-transaction mempool.
//!
//! Production DAG systems treat payload ingestion as a first-class
//! subsystem: Narwhal batches transactions into a certified mempool that
//! Bullshark orders by reference, while Mysticeti includes payloads
//! directly in uncertified DAG blocks under an explicit per-block budget.
//! This reproduction follows the Mysticeti shape — transactions ride in
//! the blocks themselves — so the mempool's job is admission control, not
//! dissemination:
//!
//! - **bounded occupancy**: capacities in transactions *and* bytes
//!   ([`MempoolConfig::capacity_txs`], [`MempoolConfig::capacity_bytes`]);
//!   a full pool rejects with [`SubmitResult::Full`] instead of growing —
//!   the backpressure signal clients and load generators key off;
//! - **digest-based dedup**: every accepted transaction's content digest is
//!   remembered; resubmissions (client retries, duplicate gossip) come back
//!   as [`SubmitResult::Duplicate`] and are never included twice;
//! - **per-block payload budget**: [`Mempool::next_payload`] drains at most
//!   [`MempoolConfig::max_block_txs`] transactions and
//!   [`MempoolConfig::max_block_bytes`] payload bytes per produced block,
//!   FIFO, so one burst cannot monopolize a block or blow up its wire size.
//!
//! The pool is transport-free and clock-free, like the engine that owns
//! it: determinism (same submissions ⇒ same payloads) is what lets the
//! recorded-trace replay and driver-equivalence tests cover the ingestion
//! path end to end.

use mahimahi_crypto::Digest;
use mahimahi_types::Transaction;
use std::collections::{HashSet, VecDeque};

/// The outcome of one transaction submission — the backpressure signal
/// surfaced to clients (and, through `Output::TxRejected`, to drivers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitResult {
    /// The transaction entered the pool and will be included in a future
    /// own block.
    Accepted,
    /// A transaction with the same content digest was already accepted
    /// (pending, in flight, or committed); the submission is dropped.
    Duplicate,
    /// The pool is at capacity (in transactions or bytes); the client
    /// should back off and retry. One case is permanent: a single
    /// transaction larger than [`MempoolConfig::capacity_bytes`] can
    /// never be admitted, so a client seeing `Full` for the same
    /// transaction across an otherwise-draining pool should give up
    /// rather than retry forever.
    Full,
}

impl SubmitResult {
    /// Whether the submission was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, SubmitResult::Accepted)
    }
}

/// Capacity and per-block budget knobs of a [`Mempool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MempoolConfig {
    /// Maximum transactions held pending. Submissions past this bound are
    /// rejected with [`SubmitResult::Full`].
    pub capacity_txs: usize,
    /// Maximum pending payload bytes. Submissions that would exceed it are
    /// rejected with [`SubmitResult::Full`].
    pub capacity_bytes: usize,
    /// Maximum transactions drained into one produced block.
    pub max_block_txs: usize,
    /// Maximum payload bytes drained into one produced block. A single
    /// transaction larger than the budget is still included alone (the
    /// budget bounds batching, it must not wedge the queue).
    pub max_block_bytes: usize,
}

impl Default for MempoolConfig {
    fn default() -> Self {
        MempoolConfig {
            capacity_txs: 100_000,
            capacity_bytes: 128 * 1024 * 1024,
            max_block_txs: 2_000,
            max_block_bytes: 4 * 1024 * 1024,
        }
    }
}

impl MempoolConfig {
    /// A small pool for unit tests: `capacity` transactions, generous byte
    /// bounds, blocks of at most `max_block_txs` transactions.
    pub fn test(capacity: usize, max_block_txs: usize) -> Self {
        MempoolConfig {
            capacity_txs: capacity,
            capacity_bytes: usize::MAX / 2,
            max_block_txs,
            max_block_bytes: usize::MAX / 2,
        }
    }
}

/// A bounded FIFO transaction pool with digest dedup and per-block payload
/// budgeting. See the [module docs](self) for the design.
#[derive(Debug)]
pub struct Mempool {
    config: MempoolConfig,
    /// Pending transactions with their opaque client tags, FIFO.
    queue: VecDeque<(Transaction, u64)>,
    /// Pending payload bytes (sum over `queue`).
    bytes: usize,
    /// Digests of every transaction ever accepted (pending, in flight, or
    /// committed). Grows with the accepted set — replay protection is
    /// retention, exactly like a nonce ledger.
    seen: HashSet<Digest>,
    accepted: u64,
    rejected_duplicate: u64,
    rejected_full: u64,
    peak_txs: usize,
    peak_bytes: usize,
}

impl Mempool {
    /// An empty pool with the given bounds.
    pub fn new(config: MempoolConfig) -> Self {
        Mempool {
            config,
            queue: VecDeque::new(),
            bytes: 0,
            seen: HashSet::new(),
            accepted: 0,
            rejected_duplicate: 0,
            rejected_full: 0,
            peak_txs: 0,
            peak_bytes: 0,
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> &MempoolConfig {
        &self.config
    }

    /// Whether a transaction with this digest was ever accepted here —
    /// the scope of the exactly-once commit guarantee (an equivocating
    /// *peer* can get its own spam payload linearized under two block
    /// digests; transactions accepted by this validator cannot).
    pub fn was_accepted(&self, digest: &Digest) -> bool {
        self.seen.contains(digest)
    }

    /// Admits one transaction. `tag` is opaque client metadata carried
    /// alongside (submission time, client id) and returned with the
    /// payload at inclusion.
    pub fn submit(&mut self, transaction: Transaction, tag: u64) -> SubmitResult {
        let digest = transaction.digest();
        if self.seen.contains(&digest) {
            self.rejected_duplicate += 1;
            return SubmitResult::Duplicate;
        }
        if self.queue.len() >= self.config.capacity_txs
            || self.bytes + transaction.len() > self.config.capacity_bytes
        {
            self.rejected_full += 1;
            return SubmitResult::Full;
        }
        self.seen.insert(digest);
        self.bytes += transaction.len();
        self.queue.push_back((transaction, tag));
        self.accepted += 1;
        self.peak_txs = self.peak_txs.max(self.queue.len());
        self.peak_bytes = self.peak_bytes.max(self.bytes);
        SubmitResult::Accepted
    }

    /// Drains the next block payload: FIFO, at most
    /// [`MempoolConfig::max_block_txs`] transactions and
    /// [`MempoolConfig::max_block_bytes`] bytes (always at least one
    /// transaction when the pool is non-empty). Returns the transactions
    /// and their tags, index-parallel.
    pub fn next_payload(&mut self) -> (Vec<Transaction>, Vec<u64>) {
        let mut transactions = Vec::new();
        let mut tags = Vec::new();
        let mut payload_bytes = 0usize;
        while transactions.len() < self.config.max_block_txs {
            let Some((transaction, _)) = self.queue.front() else {
                break;
            };
            if !transactions.is_empty()
                && payload_bytes + transaction.len() > self.config.max_block_bytes
            {
                break;
            }
            let (transaction, tag) = self.queue.pop_front().expect("peeked front");
            payload_bytes += transaction.len();
            self.bytes -= transaction.len();
            transactions.push(transaction);
            tags.push(tag);
        }
        (transactions, tags)
    }

    /// Pending transactions.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pending payload bytes.
    pub fn pending_bytes(&self) -> usize {
        self.bytes
    }

    /// Highest pending-transaction count ever observed.
    pub fn peak_txs(&self) -> usize {
        self.peak_txs
    }

    /// Highest pending-byte count ever observed.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Transactions accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Submissions rejected as duplicates so far.
    pub fn rejected_duplicate(&self) -> u64 {
        self.rejected_duplicate
    }

    /// Submissions rejected for capacity so far.
    pub fn rejected_full(&self) -> u64 {
        self.rejected_full
    }
}

/// A point-in-time accounting of one validator's transaction pipeline,
/// produced by `ValidatorEngine::tx_integrity`.
///
/// For a correct (honest-proposing) validator the pipeline conserves
/// transactions: everything accepted is either still pending in the pool,
/// in flight inside a produced-but-uncommitted own block, or committed —
/// [`TxIntegrityReport::conserves_transactions`]. The `tx-integrity`
/// scenario oracle holds every correct validator to that conservation law,
/// to a zero duplicate-commit count, and to bounded pool occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxIntegrityReport {
    /// Transactions accepted into the pool.
    pub accepted: u64,
    /// Submissions rejected as digest duplicates.
    pub rejected_duplicate: u64,
    /// Submissions rejected for capacity ([`SubmitResult::Full`]).
    pub rejected_full: u64,
    /// Transactions still pending in the pool.
    pub pending: u64,
    /// Transactions drained into own blocks that have not committed yet.
    pub in_flight: u64,
    /// Own accepted transactions that committed.
    pub own_committed: u64,
    /// Transactions committed twice across this validator's *own* blocks
    /// — the exactly-once guarantee of the local pipeline (accept → drain
    /// once → include once → commit once); must be zero everywhere,
    /// always. Scoped to own blocks because they are unforgeable: a
    /// Byzantine peer can copy any observed payload into blocks it signs
    /// itself, which is its misbehavior (attributed by the evidence
    /// subsystem), not a defect of this validator's pipeline.
    pub duplicate_committed: u64,
    /// Peak pool occupancy in transactions.
    pub peak_occupancy_txs: u64,
    /// Peak pool occupancy in bytes.
    pub peak_occupancy_bytes: u64,
    /// Configured pool capacity in transactions.
    pub capacity_txs: u64,
    /// Configured pool capacity in bytes.
    pub capacity_bytes: u64,
}

impl TxIntegrityReport {
    /// No accepted transaction was lost: accepted = pending + in flight +
    /// committed. Holds for every honest-proposing validator (Byzantine
    /// strategies deliberately build several block variants over one drain,
    /// which double-counts their in-flight tags).
    pub fn conserves_transactions(&self) -> bool {
        self.accepted == self.pending + self.in_flight + self.own_committed
    }

    /// The pool never outgrew its configured bounds.
    pub fn occupancy_bounded(&self) -> bool {
        self.peak_occupancy_txs <= self.capacity_txs
            && self.peak_occupancy_bytes <= self.capacity_bytes
    }

    /// Every integrity violation in this report, as human-readable
    /// descriptions (empty when the pipeline is sound). One shared
    /// definition of "sound" — the `tx-integrity` scenario oracle and the
    /// load generator's gates both build on this, so the checks cannot
    /// drift apart.
    pub fn violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if self.duplicate_committed != 0 {
            violations.push(format!(
                "{} accepted transaction(s) committed more than once across own blocks",
                self.duplicate_committed
            ));
        }
        if !self.conserves_transactions() {
            violations.push(format!(
                "transactions lost: accepted {} != pending {} + in-flight {} + committed {}",
                self.accepted, self.pending, self.in_flight, self.own_committed
            ));
        }
        if !self.occupancy_bounded() {
            violations.push(format!(
                "mempool outgrew its bounds: peak {}txs/{}B over capacity {}txs/{}B",
                self.peak_occupancy_txs,
                self.peak_occupancy_bytes,
                self.capacity_txs,
                self.capacity_bytes
            ));
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(id: u64) -> Transaction {
        Transaction::new(id.to_le_bytes().to_vec())
    }

    #[test]
    fn fifo_order_and_tags_are_preserved() {
        let mut pool = Mempool::new(MempoolConfig::test(10, 2));
        for id in 0..3u64 {
            assert_eq!(pool.submit(tx(id), 100 + id), SubmitResult::Accepted);
        }
        let (txs, tags) = pool.next_payload();
        assert_eq!(txs, vec![tx(0), tx(1)]);
        assert_eq!(tags, vec![100, 101]);
        let (txs, tags) = pool.next_payload();
        assert_eq!(txs, vec![tx(2)]);
        assert_eq!(tags, vec![102]);
        assert!(pool.is_empty());
    }

    #[test]
    fn duplicates_are_rejected_even_after_inclusion() {
        let mut pool = Mempool::new(MempoolConfig::test(10, 10));
        assert_eq!(pool.submit(tx(7), 0), SubmitResult::Accepted);
        assert_eq!(pool.submit(tx(7), 1), SubmitResult::Duplicate);
        let _ = pool.next_payload();
        // Drained into a block: a retry must still be deduplicated, or the
        // transaction would commit twice.
        assert_eq!(pool.submit(tx(7), 2), SubmitResult::Duplicate);
        assert_eq!(pool.rejected_duplicate(), 2);
    }

    #[test]
    fn tx_capacity_bounds_occupancy() {
        let mut pool = Mempool::new(MempoolConfig::test(2, 10));
        assert_eq!(pool.submit(tx(0), 0), SubmitResult::Accepted);
        assert_eq!(pool.submit(tx(1), 0), SubmitResult::Accepted);
        assert_eq!(pool.submit(tx(2), 0), SubmitResult::Full);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.peak_txs(), 2);
        assert_eq!(pool.rejected_full(), 1);
        // Draining frees capacity.
        let _ = pool.next_payload();
        assert_eq!(pool.submit(tx(2), 0), SubmitResult::Accepted);
    }

    #[test]
    fn byte_capacity_bounds_occupancy() {
        let config = MempoolConfig {
            capacity_txs: 100,
            capacity_bytes: 20,
            max_block_txs: 100,
            max_block_bytes: 1_000,
        };
        let mut pool = Mempool::new(config);
        assert_eq!(pool.submit(tx(0), 0), SubmitResult::Accepted); // 8 bytes
        assert_eq!(pool.submit(tx(1), 0), SubmitResult::Accepted); // 16 bytes
        assert_eq!(pool.submit(tx(2), 0), SubmitResult::Full); // would be 24
        assert_eq!(pool.pending_bytes(), 16);
        assert_eq!(pool.peak_bytes(), 16);
    }

    #[test]
    fn block_byte_budget_splits_payloads() {
        let config = MempoolConfig {
            capacity_txs: 100,
            capacity_bytes: 10_000,
            max_block_txs: 100,
            max_block_bytes: 20,
        };
        let mut pool = Mempool::new(config);
        for id in 0..4u64 {
            pool.submit(tx(id), id);
        }
        // 8-byte transactions, 20-byte budget: two per block.
        let (txs, _) = pool.next_payload();
        assert_eq!(txs.len(), 2);
        let (txs, _) = pool.next_payload();
        assert_eq!(txs.len(), 2);
    }

    #[test]
    fn oversized_transaction_is_included_alone() {
        let config = MempoolConfig {
            capacity_txs: 100,
            capacity_bytes: 10_000,
            max_block_txs: 100,
            max_block_bytes: 10,
        };
        let mut pool = Mempool::new(config);
        pool.submit(Transaction::new(vec![1; 64]), 0);
        pool.submit(tx(1), 1);
        // Larger than the whole block budget: still drained (alone), never
        // wedged at the head of the queue.
        let (txs, _) = pool.next_payload();
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].len(), 64);
        let (txs, _) = pool.next_payload();
        assert_eq!(txs, vec![tx(1)]);
    }

    #[test]
    fn integrity_report_checks() {
        let report = TxIntegrityReport {
            accepted: 10,
            rejected_duplicate: 1,
            rejected_full: 2,
            pending: 3,
            in_flight: 4,
            own_committed: 3,
            duplicate_committed: 0,
            peak_occupancy_txs: 5,
            peak_occupancy_bytes: 100,
            capacity_txs: 8,
            capacity_bytes: 1_000,
        };
        assert!(report.conserves_transactions());
        assert!(report.occupancy_bounded());
        let lossy = TxIntegrityReport {
            own_committed: 2,
            ..report
        };
        assert!(!lossy.conserves_transactions());
        let overgrown = TxIntegrityReport {
            peak_occupancy_txs: 9,
            ..report
        };
        assert!(!overgrown.occupancy_bounded());
    }
}
