//! The admission pipeline: a parallel verify stage in front of the
//! sequential engine core.
//!
//! Everything expensive about admitting an input — decoding wire bytes,
//! Schnorr signature checks, coin-share DLEQ proofs, structural block
//! validation — is stateless: it depends only on the input bytes and the
//! (fixed) committee. [`AdmissionPipeline`] exploits that by fanning
//! submissions out to a pool of verify workers and re-sequencing the
//! results, so verified inputs emerge in exact submission order no matter
//! how the workers interleave. The sequential apply stage
//! ([`ValidatorEngine::handle_verified`]) stays deterministic because it
//! only ever sees that re-sequenced stream.
//!
//! Invalid inputs — undecodable frames, blocks with bad signatures or coin
//! shares, unverifiable evidence — are dropped by the verify stage and
//! never reach the core. Dropping them is output-equivalent to the serial
//! path: [`ValidatorEngine::handle`] rejects the same inputs with no
//! outputs and no state change.
//!
//! # Determinism contract
//!
//! Drivers record the *verified* inputs in sequenced order; replaying such
//! a trace through plain [`ValidatorEngine::handle`] reproduces the live
//! outputs byte for byte (the engine re-verifies deterministically, and a
//! verification that succeeds changes nothing).
//!
//! [`ValidatorEngine::handle`]: crate::engine::ValidatorEngine::handle
//! [`ValidatorEngine::handle_verified`]: crate::engine::ValidatorEngine::handle_verified

use crossbeam::channel::{self, Receiver, Sender};
use mahimahi_crypto::coin::CoinShare;
use mahimahi_crypto::schnorr::{self, PublicKey, Signature};
use mahimahi_telemetry::{Stage, StageStats};
use mahimahi_types::{Block, Committee, Decode, Envelope, Verified};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::engine::Input;

/// Configuration for the verify stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Number of verify worker threads.
    ///
    /// `0` (the default) verifies synchronously inside
    /// [`AdmissionPipeline::submit`] — no threads, same observable
    /// behavior; this is what deterministic harnesses use. Values around
    /// the physical core count are sensible for a TCP node.
    pub verify_workers: usize,
    /// Bound on in-flight submissions (submitted but not yet drained).
    ///
    /// The pipeline itself never blocks; callers consult
    /// [`AdmissionPipeline::has_capacity`] before submitting more work and
    /// leave the excess wherever it currently queues (e.g. the transport's
    /// incoming channel), which is the backpressure path.
    pub queue_bound: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            verify_workers: 0,
            queue_bound: 1024,
        }
    }
}

/// One unit of verify work.
enum Job {
    /// A raw wire frame: decoded *and* verified off the hot path.
    Frame { from: usize, bytes: Vec<u8> },
    /// An already-typed input (timers, client batches, test traffic).
    Typed(Input),
}

struct Workers {
    job_tx: Sender<(u64, Job)>,
    result_rx: Receiver<(u64, Option<Input>)>,
    handles: Vec<JoinHandle<()>>,
}

/// The verify stage: parallel workers plus a deterministic re-sequencer.
///
/// Inputs are verified in parallel (when `verify_workers > 0`) but
/// [`AdmissionPipeline::drain_ready`] releases them strictly in submission
/// order, each wrapped in a [`Verified`] witness for
/// [`ValidatorEngine::handle_verified`](crate::engine::ValidatorEngine::handle_verified).
///
/// # Example
///
/// ```
/// use mahimahi_core::admission::{AdmissionConfig, AdmissionPipeline};
/// use mahimahi_core::engine::Input;
/// use mahimahi_types::TestCommittee;
///
/// let setup = TestCommittee::new(4, 7);
/// let mut pipeline = AdmissionPipeline::new(
///     AdmissionConfig::default(),
///     setup.committee().clone(),
/// );
/// pipeline.submit(Input::TimerFired { now: 5 });
/// let ready = pipeline.drain_ready();
/// assert_eq!(ready.len(), 1);
/// assert!(matches!(*ready[0], Input::TimerFired { now: 5 }));
/// ```
pub struct AdmissionPipeline {
    committee: Arc<Committee>,
    queue_bound: usize,
    workers: Option<Workers>,
    /// Out-of-order results parked until their predecessors arrive, each
    /// with the time its verdict landed (for the resequence-wait stage).
    /// `None` marks a rejected input (counted, never released).
    resequence: BTreeMap<u64, (Option<Input>, u64)>,
    /// Submission time per still-in-flight sequence number; the delta to
    /// the verdict time is the verify-stage latency.
    submitted_at: BTreeMap<u64, u64>,
    /// Sequence number of the next submission.
    next_seq: u64,
    /// Sequence number of the next input to release.
    next_out: u64,
    peak_depth: usize,
    verified: u64,
    rejected: u64,
    /// Per-stage histograms ([`Stage::Verified`], [`Stage::Resequenced`]);
    /// `None` skips recording entirely.
    stages: Option<StageStats>,
}

impl AdmissionPipeline {
    /// Creates the pipeline and spawns `config.verify_workers` threads
    /// (none when zero: verification then runs inline in `submit`).
    pub fn new(config: AdmissionConfig, committee: Committee) -> Self {
        let committee = Arc::new(committee);
        let workers = (config.verify_workers > 0).then(|| {
            let (job_tx, job_rx) = channel::unbounded::<(u64, Job)>();
            let (result_tx, result_rx) = channel::unbounded();
            let handles = (0..config.verify_workers)
                .map(|worker| {
                    let job_rx = job_rx.clone();
                    let result_tx = result_tx.clone();
                    let committee = committee.clone();
                    std::thread::Builder::new()
                        .name(format!("verify-{worker}"))
                        .spawn(move || {
                            while let Ok((seq, job)) = job_rx.recv() {
                                let outcome = verify_job(&committee, job);
                                if result_tx.send((seq, outcome)).is_err() {
                                    return;
                                }
                            }
                        })
                        .expect("spawn verify worker")
                })
                .collect();
            Workers {
                job_tx,
                result_rx,
                handles,
            }
        });
        AdmissionPipeline {
            committee,
            queue_bound: config.queue_bound.max(1),
            workers,
            resequence: BTreeMap::new(),
            submitted_at: BTreeMap::new(),
            next_seq: 0,
            next_out: 0,
            peak_depth: 0,
            verified: 0,
            rejected: 0,
            stages: None,
        }
    }

    /// Attaches per-stage histograms: every subsequent `*_at` call folds
    /// the verify latency and resequence wait of each input into the
    /// [`Stage::Verified`] / [`Stage::Resequenced`] histograms.
    pub fn set_stage_stats(&mut self, stages: StageStats) {
        self.stages = Some(stages);
    }

    /// Submits an already-typed input (timers, client batches).
    pub fn submit(&mut self, input: Input) {
        self.submit_at(input, 0);
    }

    /// [`AdmissionPipeline::submit`] with the driver's clock (µs), the
    /// baseline for the input's verify-stage latency.
    pub fn submit_at(&mut self, input: Input, now: u64) {
        self.enqueue(Job::Typed(input), now);
    }

    /// Submits a raw wire frame from `from`; decoding happens in the
    /// verify stage. Undecodable frames are rejected.
    pub fn submit_frame(&mut self, from: usize, bytes: Vec<u8>) {
        self.submit_frame_at(from, bytes, 0);
    }

    /// [`AdmissionPipeline::submit_frame`] with the driver's clock (µs).
    pub fn submit_frame_at(&mut self, from: usize, bytes: Vec<u8>, now: u64) {
        self.enqueue(Job::Frame { from, bytes }, now);
    }

    /// Whether another submission fits under the queue bound. Callers that
    /// get `false` should stop pulling from their source — that is the
    /// backpressure mechanism.
    pub fn has_capacity(&self) -> bool {
        self.depth() < self.queue_bound
    }

    /// Inputs submitted but not yet drained.
    pub fn depth(&self) -> usize {
        (self.next_seq - self.next_out) as usize
    }

    /// High-water mark of [`AdmissionPipeline::depth`].
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Inputs that passed verification and were released.
    pub fn verified(&self) -> u64 {
        self.verified
    }

    /// Inputs dropped by the verify stage (undecodable frame, invalid
    /// signature/proof).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Releases every verified input whose predecessors have all been
    /// resolved, in submission order. Never blocks.
    pub fn drain_ready(&mut self) -> Vec<Verified<Input>> {
        self.drain_ready_at(0)
    }

    /// [`AdmissionPipeline::drain_ready`] with the driver's clock (µs):
    /// verdicts collected now close their verify-stage interval, releases
    /// close their resequence wait.
    pub fn drain_ready_at(&mut self, now: u64) -> Vec<Verified<Input>> {
        if let Some(workers) = &self.workers {
            let mut arrived = Vec::new();
            while let Ok(result) = workers.result_rx.try_recv() {
                arrived.push(result);
            }
            for (seq, outcome) in arrived {
                self.settle(seq, outcome, now);
            }
        }
        self.pop_in_order(now)
    }

    /// Blocks until every in-flight submission is resolved and returns the
    /// remaining verified inputs in submission order. Used at shutdown and
    /// by tests; the event loop uses [`AdmissionPipeline::drain_ready`].
    pub fn flush(&mut self) -> Vec<Verified<Input>> {
        self.flush_at(0)
    }

    /// [`AdmissionPipeline::flush`] with the driver's clock (µs).
    pub fn flush_at(&mut self, now: u64) -> Vec<Verified<Input>> {
        let mut ready = self.drain_ready_at(now);
        while self.next_out < self.next_seq {
            let received = match &self.workers {
                Some(workers) => workers.result_rx.recv().ok(),
                None => None,
            };
            let Some((seq, outcome)) = received else {
                break;
            };
            self.settle(seq, outcome, now);
            ready.extend(self.pop_in_order(now));
        }
        ready
    }

    fn enqueue(&mut self, job: Job, now: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &self.workers {
            Some(workers) => {
                self.submitted_at.insert(seq, now);
                let _ = workers.job_tx.send((seq, job));
            }
            None => {
                // Inline verification: the verdict lands in the same call,
                // so the verify stage records an honest zero.
                let outcome = verify_job(&self.committee, job);
                self.settle(seq, outcome, now);
            }
        }
        self.peak_depth = self.peak_depth.max(self.depth());
    }

    /// Parks a verify verdict for resequencing, closing its verify-stage
    /// interval (submission → verdict).
    fn settle(&mut self, seq: u64, outcome: Option<Input>, now: u64) {
        let submitted = self.submitted_at.remove(&seq).unwrap_or(now);
        if let Some(stages) = &self.stages {
            stages.record(Stage::Verified, now.saturating_sub(submitted));
        }
        self.resequence.insert(seq, (outcome, now));
    }

    fn pop_in_order(&mut self, now: u64) -> Vec<Verified<Input>> {
        let mut ready = Vec::new();
        while let Some((outcome, seen_at)) = self.resequence.remove(&self.next_out) {
            self.next_out += 1;
            match outcome {
                Some(input) => {
                    self.verified += 1;
                    if let Some(stages) = &self.stages {
                        stages.record(Stage::Resequenced, now.saturating_sub(seen_at));
                    }
                    ready.push(Verified::vouch(input));
                }
                None => self.rejected += 1,
            }
        }
        ready
    }
}

impl Drop for AdmissionPipeline {
    fn drop(&mut self) {
        if let Some(workers) = self.workers.take() {
            // Dropping the job sender disconnects the workers' recv loop.
            drop(workers.job_tx);
            drop(workers.result_rx);
            for handle in workers.handles {
                let _ = handle.join();
            }
        }
    }
}

fn verify_job(committee: &Committee, job: Job) -> Option<Input> {
    match job {
        Job::Frame { from, bytes } => {
            let envelope = Envelope::from_bytes_exact(&bytes).ok()?;
            verify_input(committee, Input::from_envelope(from, envelope))
        }
        Job::Typed(input) => verify_input(committee, input),
    }
}

/// The verify-stage policy: which checks each input kind needs before it
/// may reach the core. Inputs that carry no cryptographic claims (timers,
/// client transactions, acks, sync requests) pass through untouched.
fn verify_input(committee: &Committee, input: Input) -> Option<Input> {
    match input {
        Input::BlockReceived { from, block } => verify_blocks(committee, vec![block])
            .pop()
            .map(|block| Input::BlockReceived { from, block }),
        Input::ProposalReceived { from, block } => verify_blocks(committee, vec![block])
            .pop()
            .map(|block| Input::ProposalReceived { from, block }),
        Input::SyncReply { from, blocks } => {
            // Invalid blocks are filtered, valid ones kept: exactly what the
            // serial path's per-block accept loop converges to.
            let blocks = verify_blocks(committee, blocks);
            (!blocks.is_empty()).then_some(Input::SyncReply { from, blocks })
        }
        Input::EvidenceReceived { from, proof } => proof
            .verify(committee)
            .is_ok()
            .then_some(Input::EvidenceReceived { from, proof }),
        other => Some(other),
    }
}

/// Verifies a batch of blocks, returning the valid ones in input order.
///
/// Structure is checked per block; the two expensive cryptographic
/// conditions are then checked across the whole batch — Schnorr signatures
/// through the multi-scalar combined equation, coin-share proofs with the
/// per-round base derived once per round — with failures attributed to and
/// dropped from the specific offending blocks.
fn verify_blocks(committee: &Committee, blocks: Vec<Arc<Block>>) -> Vec<Arc<Block>> {
    let mut alive: Vec<bool> = blocks
        .iter()
        .map(|block| block.verify_structure(committee).is_ok())
        .collect();

    // Signatures, batched. Genesis blocks (round 0) are unsigned: the
    // structural pass fully validated them.
    let signed: Vec<usize> = blocks
        .iter()
        .enumerate()
        .filter(|(index, block)| alive[*index] && block.round() > 0)
        .map(|(index, _)| index)
        .collect();
    let messages: Vec<Vec<u8>> = signed.iter().map(|&i| blocks[i].signed_bytes()).collect();
    let items: Vec<(&[u8], PublicKey, Signature)> = signed
        .iter()
        .zip(&messages)
        .map(|(&i, message)| {
            let block = &blocks[i];
            let public = committee
                .public_key(block.author())
                .expect("membership checked structurally");
            (message.as_slice(), *public, *block.signature())
        })
        .collect();
    if let Err(culprits) = schnorr::batch_verify_attributed(&items) {
        for culprit in culprits {
            alive[signed[culprit]] = false;
        }
    }

    // Coin-share proofs, batched per round (one base derivation per round).
    let mut by_round: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (index, block) in blocks.iter().enumerate() {
        if alive[index] && block.round() > 0 {
            by_round.entry(block.round()).or_default().push(index);
        }
    }
    for (round, indices) in by_round {
        let shares: Vec<CoinShare> = indices
            .iter()
            .map(|&i| {
                *blocks[i]
                    .coin_share()
                    .expect("presence checked structurally")
            })
            .collect();
        if let Err(culprits) = committee.coin_public().verify_shares(round, &shares) {
            for culprit in culprits {
                alive[indices[culprit]] = false;
            }
        }
    }

    blocks
        .into_iter()
        .zip(alive)
        .filter_map(|(block, keep)| keep.then_some(block))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_dag::DagBuilder;
    use mahimahi_types::{AuthorityIndex, Encode, TestCommittee, Transaction};

    fn peer_blocks(setup: &TestCommittee, rounds: usize) -> Vec<Arc<Block>> {
        let mut dag = DagBuilder::new(setup.clone());
        dag.add_full_rounds(rounds);
        dag.store()
            .iter()
            .filter(|block| block.round() > 0)
            .cloned()
            .collect()
    }

    fn tamper(block: &Block) -> Arc<Block> {
        // Flip a parent-digest byte: still decodes, signature now stale.
        let mut bytes = block.to_bytes_vec();
        bytes[30] ^= 0xff;
        Block::from_bytes_exact(&bytes).unwrap().into_arc()
    }

    #[test]
    fn batched_block_verification_matches_serial() {
        let setup = TestCommittee::new(4, 11);
        let committee = setup.committee();
        let mut blocks = peer_blocks(&setup, 3);
        blocks[1] = tamper(&blocks[1]);
        blocks[5] = tamper(&blocks[5]);
        let kept = verify_blocks(committee, blocks.clone());
        let expected: Vec<Arc<Block>> = blocks
            .iter()
            .filter(|block| block.verify(committee).is_ok())
            .cloned()
            .collect();
        assert_eq!(kept.len(), blocks.len() - 2);
        assert_eq!(kept, expected);
    }

    #[test]
    fn synchronous_pipeline_preserves_submission_order_and_rejects() {
        let setup = TestCommittee::new(4, 11);
        let mut pipeline =
            AdmissionPipeline::new(AdmissionConfig::default(), setup.committee().clone());
        let blocks = peer_blocks(&setup, 2);

        pipeline.submit(Input::TimerFired { now: 1 });
        pipeline.submit(Input::BlockReceived {
            from: 1,
            block: tamper(&blocks[0]),
        });
        pipeline.submit(Input::BlockReceived {
            from: 1,
            block: blocks[0].clone(),
        });
        pipeline.submit_frame(2, b"not an envelope".to_vec());
        pipeline.submit_frame(2, Envelope::Block(blocks[1].clone()).to_bytes_vec());

        let ready = pipeline.drain_ready();
        assert_eq!(ready.len(), 3);
        assert!(matches!(*ready[0], Input::TimerFired { now: 1 }));
        assert!(matches!(&*ready[1], Input::BlockReceived { block, .. } if *block == blocks[0]));
        assert!(matches!(&*ready[2], Input::BlockReceived { block, .. } if *block == blocks[1]));
        assert_eq!(pipeline.rejected(), 2);
        assert_eq!(pipeline.verified(), 3);
        assert_eq!(pipeline.depth(), 0);
    }

    #[test]
    fn worker_pipeline_resequences_to_submission_order() {
        let setup = TestCommittee::new(4, 11);
        let committee = setup.committee().clone();
        let blocks = peer_blocks(&setup, 4);

        // Serial reference: the synchronous pipeline.
        let mut serial = AdmissionPipeline::new(AdmissionConfig::default(), committee.clone());
        let mut parallel = AdmissionPipeline::new(
            AdmissionConfig {
                verify_workers: 3,
                queue_bound: 4096,
            },
            committee,
        );
        for (index, block) in blocks.iter().enumerate() {
            for pipeline in [&mut serial, &mut parallel] {
                pipeline.submit(Input::TimerFired { now: index as u64 });
                pipeline.submit(Input::BlockReceived {
                    from: index % 4,
                    block: block.clone(),
                });
                if index % 3 == 0 {
                    pipeline.submit(Input::BlockReceived {
                        from: 1,
                        block: tamper(block),
                    });
                }
            }
        }
        let serial_out = serial.flush();
        let parallel_out = parallel.flush();
        assert_eq!(serial_out.len(), parallel_out.len());
        for (a, b) in serial_out.iter().zip(&parallel_out) {
            assert_eq!(format!("{:?}", **a), format!("{:?}", **b));
        }
        assert_eq!(serial.rejected(), parallel.rejected());
        assert_eq!(parallel.depth(), 0);
    }

    #[test]
    fn queue_bound_signals_backpressure() {
        let setup = TestCommittee::new(4, 11);
        let mut pipeline = AdmissionPipeline::new(
            AdmissionConfig {
                // Workers that never drain fast enough to matter here: the
                // depth counts submissions until *drained*, so capacity
                // reports full until the caller drains.
                verify_workers: 1,
                queue_bound: 2,
            },
            setup.committee().clone(),
        );
        assert!(pipeline.has_capacity());
        pipeline.submit(Input::TimerFired { now: 1 });
        assert!(pipeline.has_capacity());
        pipeline.submit(Input::TimerFired { now: 2 });
        assert!(!pipeline.has_capacity(), "at the bound");
        assert!(pipeline.peak_depth() >= 2);
        let drained = pipeline.flush();
        assert_eq!(drained.len(), 2);
        assert!(pipeline.has_capacity());
    }

    #[test]
    fn sync_reply_filters_invalid_blocks_but_keeps_valid_ones() {
        let setup = TestCommittee::new(4, 11);
        let committee = setup.committee();
        let blocks = peer_blocks(&setup, 2);
        let reply = Input::SyncReply {
            from: 3,
            blocks: vec![blocks[0].clone(), tamper(&blocks[1]), blocks[2].clone()],
        };
        match verify_input(committee, reply) {
            Some(Input::SyncReply { blocks: kept, .. }) => {
                assert_eq!(kept, vec![blocks[0].clone(), blocks[2].clone()]);
            }
            other => panic!("unexpected verify outcome: {other:?}"),
        }
        // An all-invalid reply is dropped outright.
        let reply = Input::SyncReply {
            from: 3,
            blocks: vec![tamper(&blocks[0])],
        };
        assert!(verify_input(committee, reply).is_none());
    }

    #[test]
    fn pass_through_inputs_are_untouched() {
        let setup = TestCommittee::new(4, 11);
        let committee = setup.committee();
        let inputs = [
            Input::TimerFired { now: 9 },
            Input::TxSubmitted {
                transaction: Transaction::benchmark(1),
                tag: 4,
            },
            Input::TxBatchReceived {
                from: 0,
                transactions: vec![Transaction::benchmark(2)],
            },
            Input::SyncRequest {
                from: 1,
                references: Vec::new(),
            },
            Input::AckReceived {
                from: 1,
                reference: Block::genesis(AuthorityIndex(0)).reference(),
                voter: AuthorityIndex(1),
            },
        ];
        for input in inputs {
            let rendered = format!("{input:?}");
            let out = verify_input(committee, input).expect("pass-through");
            assert_eq!(format!("{out:?}"), rendered);
        }
    }
}
