//! The evidence pool: verified, deduplicated equivocation proofs plus the
//! slashing hooks that downstream accountability machinery attaches to.
//!
//! The DAG store emits an `EquivocationProof` the instant a second digest
//! lands in a slot; proofs also arrive over the network from peers. The
//! [`EvidencePool`] is the single place both streams meet: every submitted
//! proof is re-verified against the committee (evidence is only as good as
//! its signatures), at most one conviction is kept per author, and every
//! *new* conviction is pushed through the registered [`SlashingHook`]s —
//! the seam where stake slashing, operator alerting, or committee
//! reconfiguration plugs in without the consensus path knowing about any
//! of them.

use mahimahi_types::{AuthorityIndex, AuthoritySet, Committee, EquivocationProof, EvidenceError};
use std::collections::BTreeMap;
use std::fmt;

/// A callback fired exactly once per newly convicted authority.
///
/// Hooks receive the verified proof; implementations decide what
/// "slashing" means in their deployment (stake burn, jailing, paging an
/// operator). Hooks must be infallible — by the time one fires, the
/// evidence has already been verified and recorded. `Send` because the
/// pool lives inside the validator engine, which the node moves onto its
/// protocol thread.
pub trait SlashingHook: Send {
    /// Called when `proof` convicts an author not previously convicted.
    fn on_equivocation(&mut self, proof: &EquivocationProof);
}

/// A [`SlashingHook`] that records convictions in order — the default hook
/// for tests and the simulator, and a template for real integrations.
#[derive(Debug, Default)]
pub struct RecordingSlashingHook {
    slashed: Vec<AuthorityIndex>,
}

impl RecordingSlashingHook {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The convicted authorities in conviction order.
    pub fn slashed(&self) -> &[AuthorityIndex] {
        &self.slashed
    }
}

impl SlashingHook for RecordingSlashingHook {
    fn on_equivocation(&mut self, proof: &EquivocationProof) {
        self.slashed.push(proof.author());
    }
}

/// Verified equivocation evidence, deduplicated per author.
///
/// # Example
///
/// ```
/// use mahimahi_core::EvidencePool;
/// use mahimahi_dag::{BlockSpec, DagBuilder};
/// use mahimahi_types::TestCommittee;
///
/// let setup = TestCommittee::new(4, 7);
/// let committee = setup.committee().clone();
/// let mut dag = DagBuilder::new(setup);
/// dag.add_full_round();
/// // Authority 1 equivocates at round 2.
/// dag.add_round(vec![
///     BlockSpec::new(0),
///     BlockSpec::new(1).with_tag(1),
///     BlockSpec::new(1).with_tag(2),
///     BlockSpec::new(2),
///     BlockSpec::new(3),
/// ]);
///
/// let mut pool = EvidencePool::new(committee);
/// for proof in dag.store_mut().take_equivocation_evidence() {
///     pool.submit(proof).expect("store evidence verifies");
/// }
/// assert_eq!(pool.convicted(), vec![mahimahi_types::AuthorityIndex(1)]);
/// ```
pub struct EvidencePool {
    committee: Committee,
    /// First verified proof per convicted author (ordered for stable
    /// reporting).
    convictions: BTreeMap<AuthorityIndex, EquivocationProof>,
    /// Bitset mirror of `convictions` — the parent-selection loop asks
    /// [`EvidencePool::is_convicted`] once per candidate parent per round,
    /// and a bit test beats a tree probe on that path.
    convicted_set: AuthoritySet,
    hooks: Vec<Box<dyn SlashingHook>>,
}

impl EvidencePool {
    /// Creates an empty pool verifying against `committee`.
    pub fn new(committee: Committee) -> Self {
        EvidencePool {
            committee,
            convictions: BTreeMap::new(),
            convicted_set: AuthoritySet::new(),
            hooks: Vec::new(),
        }
    }

    /// Registers a hook fired on every future first-time conviction.
    /// Authors already convicted do not re-fire.
    pub fn register_hook(&mut self, hook: Box<dyn SlashingHook>) {
        self.hooks.push(hook);
    }

    /// Submits a proof: verifies it against the committee, records the
    /// conviction, and fires the hooks if the author is newly convicted.
    ///
    /// Returns `true` if this proof convicted a new author, `false` if the
    /// author was already convicted (the earlier proof is kept — one
    /// conviction per author is all slashing needs).
    ///
    /// # Errors
    ///
    /// Returns the [`EvidenceError`] of an invalid proof without recording
    /// anything — malformed evidence from an untrusted peer must never
    /// convict.
    pub fn submit(&mut self, proof: EquivocationProof) -> Result<bool, EvidenceError> {
        proof.verify(&self.committee)?;
        let author = proof.author();
        if self.convicted_set.contains(author) {
            return Ok(false);
        }
        for hook in &mut self.hooks {
            hook.on_equivocation(&proof);
        }
        self.convicted_set.insert(author);
        self.convictions.insert(author, proof);
        Ok(true)
    }

    /// Whether `author` has a recorded conviction (a single bit test).
    pub fn is_convicted(&self, author: AuthorityIndex) -> bool {
        self.convicted_set.contains(author)
    }

    /// The convicted authorities as an allocation-free bitset.
    pub fn convicted_set(&self) -> AuthoritySet {
        self.convicted_set
    }

    /// The convicted authorities in index order.
    pub fn convicted(&self) -> Vec<AuthorityIndex> {
        self.convictions.keys().copied().collect()
    }

    /// The recorded proof against `author`, if convicted.
    pub fn proof_against(&self, author: AuthorityIndex) -> Option<&EquivocationProof> {
        self.convictions.get(&author)
    }

    /// Iterates over `(author, proof)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (AuthorityIndex, &EquivocationProof)> {
        self.convictions
            .iter()
            .map(|(&author, proof)| (author, proof))
    }

    /// Number of convicted authorities.
    pub fn len(&self) -> usize {
        self.convictions.len()
    }

    /// Whether no authority has been convicted.
    pub fn is_empty(&self) -> bool {
        self.convictions.is_empty()
    }
}

impl fmt::Debug for EvidencePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EvidencePool({} convicted: {:?}, {} hooks)",
            self.convictions.len(),
            self.convicted(),
            self.hooks.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_types::{Block, BlockBuilder, BlockRef, TestCommittee, Transaction};
    use std::sync::{Arc, Mutex};

    fn setup() -> TestCommittee {
        TestCommittee::new(4, 3)
    }

    fn tagged_block(setup: &TestCommittee, author: u32, tag: u64) -> Arc<Block> {
        let genesis = Block::all_genesis(4);
        let mut parents = vec![genesis[author as usize].reference()];
        parents.extend(
            genesis
                .iter()
                .map(Block::reference)
                .filter(|reference: &BlockRef| reference.author.0 != author),
        );
        BlockBuilder::new(mahimahi_types::AuthorityIndex(author), 1)
            .parents(parents)
            .transaction(Transaction::benchmark(tag))
            .build(setup)
            .into_arc()
    }

    fn proof(setup: &TestCommittee, author: u32, tags: (u64, u64)) -> EquivocationProof {
        EquivocationProof::new(
            tagged_block(setup, author, tags.0),
            tagged_block(setup, author, tags.1),
        )
        .unwrap()
    }

    /// A hook writing into a shared cell so the test can observe firings
    /// while the pool owns the hook box.
    struct SharedHook(Arc<Mutex<Vec<AuthorityIndex>>>);

    impl SlashingHook for SharedHook {
        fn on_equivocation(&mut self, proof: &EquivocationProof) {
            self.0.lock().unwrap().push(proof.author());
        }
    }

    #[test]
    fn valid_proof_convicts_once_and_fires_hooks() {
        let setup = setup();
        let mut pool = EvidencePool::new(setup.committee().clone());
        let fired = Arc::new(Mutex::new(Vec::new()));
        pool.register_hook(Box::new(SharedHook(Arc::clone(&fired))));

        assert!(pool.submit(proof(&setup, 2, (1, 2))).unwrap());
        assert!(pool.is_convicted(mahimahi_types::AuthorityIndex(2)));
        assert_eq!(pool.len(), 1);
        // Different conflicting pair, same author: deduplicated, no re-fire.
        assert!(!pool.submit(proof(&setup, 2, (3, 4))).unwrap());
        assert_eq!(pool.len(), 1);
        assert_eq!(
            *fired.lock().unwrap(),
            vec![mahimahi_types::AuthorityIndex(2)]
        );
        // The original proof is kept.
        let kept = pool
            .proof_against(mahimahi_types::AuthorityIndex(2))
            .unwrap();
        assert_eq!(kept.verify(setup.committee()), Ok(()));
    }

    #[test]
    fn invalid_proof_is_rejected_without_conviction() {
        let setup = setup();
        let mut pool = EvidencePool::new(setup.committee().clone());
        // Forge the second block with the wrong keypair: the proof does not
        // demonstrate misbehavior by authority 1 and must not convict.
        let genesis = Block::all_genesis(4);
        let mut parents = vec![genesis[1].reference()];
        parents.extend(
            genesis
                .iter()
                .map(Block::reference)
                .filter(|r| r.author.0 != 1),
        );
        let forged = BlockBuilder::new(mahimahi_types::AuthorityIndex(1), 1)
            .parents(parents)
            .transaction(Transaction::benchmark(9))
            .build_with(
                setup.keypair(mahimahi_types::AuthorityIndex(0)),
                setup.coin_secret(mahimahi_types::AuthorityIndex(1)),
            )
            .into_arc();
        let bad = EquivocationProof::new(tagged_block(&setup, 1, 1), forged).unwrap();
        assert!(pool.submit(bad).is_err());
        assert!(pool.is_empty());
    }

    #[test]
    fn convictions_report_in_index_order() {
        let setup = setup();
        let mut pool = EvidencePool::new(setup.committee().clone());
        pool.submit(proof(&setup, 3, (1, 2))).unwrap();
        pool.submit(proof(&setup, 0, (1, 2))).unwrap();
        assert_eq!(
            pool.convicted(),
            vec![
                mahimahi_types::AuthorityIndex(0),
                mahimahi_types::AuthorityIndex(3)
            ]
        );
        assert_eq!(pool.iter().count(), 2);
        assert!(!pool.is_empty());
    }

    #[test]
    fn recording_hook_records() {
        let mut hook = RecordingSlashingHook::new();
        let setup = setup();
        hook.on_equivocation(&proof(&setup, 1, (1, 2)));
        assert_eq!(hook.slashed(), &[mahimahi_types::AuthorityIndex(1)]);
    }
}
