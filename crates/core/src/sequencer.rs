//! `ExtendCommitSequence` (Algorithm 1 lines 3–10) plus the DagRider-style
//! sub-DAG linearization (Section 3.2 steps 4–5).

use mahimahi_crypto::blake2b::blake2b_256;
use mahimahi_crypto::Digest;
use mahimahi_dag::BlockStore;
use mahimahi_types::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use mahimahi_types::{Block, BlockRef, Round, Slot, Transaction};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use crate::protocol::ProtocolCommitter;
use crate::status::LeaderStatus;

/// A committed leader slot together with the newly linearized blocks of its
/// causal sub-DAG (the leader block last).
#[derive(Clone)]
pub struct CommittedSubDag {
    /// Global sequence index of the slot (0-based across all slots).
    pub position: u64,
    /// The committed leader block's reference.
    pub leader: BlockRef,
    /// Every block first linearized by this leader, in deterministic
    /// `(round, author, digest)` order, ending with the leader itself.
    pub blocks: Vec<Arc<Block>>,
}

impl CommittedSubDag {
    /// Iterates over the transactions committed by this sub-DAG in order.
    pub fn transactions(&self) -> impl Iterator<Item = &Transaction> {
        self.blocks.iter().flat_map(|block| block.transactions())
    }
}

impl fmt::Debug for CommittedSubDag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CommittedSubDag(#{} leader={} blocks={})",
            self.position,
            self.leader,
            self.blocks.len()
        )
    }
}

/// One sequencing decision, in commit order.
#[derive(Clone, Debug)]
pub enum CommitDecision {
    /// The slot committed; its sub-DAG extends the total order.
    Commit(CommittedSubDag),
    /// The slot was skipped (position recorded for audit).
    Skip(u64, Slot),
}

impl CommitDecision {
    /// The global sequence index of this decision.
    pub fn position(&self) -> u64 {
        match self {
            CommitDecision::Commit(sub_dag) => sub_dag.position,
            CommitDecision::Skip(position, _) => *position,
        }
    }
}

/// A resumable cut of the sequencer's state, captured at a checkpoint
/// boundary.
///
/// Because the sequence of decisions (commits *and* skips) is identical at
/// every correct validator, the snapshot after any fixed `position` is
/// identical too: same resume round/offset, same emitted set (pruned to
/// the GC floor — older blocks can never be linearized again, so dropping
/// them from the snapshot is exact, not lossy). Its [`digest`] is what a
/// `Checkpoint` signs as `resume_digest`.
///
/// [`digest`]: SequencerSnapshot::digest
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SequencerSnapshot {
    /// Decisions sequenced so far (the snapshot describes the state after
    /// decisions `0..position`).
    pub position: u64,
    /// The round sequencing resumes from.
    pub next_round: Round,
    /// How many statuses of `next_round` were already consumed.
    pub consumed_in_round: u64,
    /// Blocks already emitted with round ≥ the GC floor at capture time,
    /// in ascending `(round, author, digest)` order.
    pub emitted: Vec<BlockRef>,
}

impl SequencerSnapshot {
    /// BLAKE2b-256 over the canonical encoding — the value checkpoints
    /// sign, binding *where* to resume alongside the execution root.
    pub fn digest(&self) -> Digest {
        blake2b_256(&self.to_bytes_vec())
    }
}

impl Encode for SequencerSnapshot {
    fn encode(&self, encoder: &mut Encoder) {
        encoder.put_u64(self.position);
        encoder.put_u64(self.next_round);
        encoder.put_u64(self.consumed_in_round);
        self.emitted.encode(encoder);
    }

    fn encoded_len(&self) -> usize {
        8 + 8 + 8 + self.emitted.encoded_len()
    }
}

impl Decode for SequencerSnapshot {
    fn decode(decoder: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let position = decoder.get_u64()?;
        let next_round = decoder.get_u64()?;
        let consumed_in_round = decoder.get_u64()?;
        let emitted = Vec::<BlockRef>::decode(decoder)?;
        Ok(SequencerSnapshot {
            position,
            next_round,
            consumed_in_round,
            emitted,
        })
    }
}

/// Stateful wrapper turning slot classifications into the totally-ordered
/// commit sequence.
///
/// `try_commit` is idempotent in the sense of the paper's
/// `ExtendCommitSequence`: each call sequences every slot decided since the
/// last call, stopping at the first undecided slot (step 4), and linearizes
/// each committed leader's yet-unemitted causal history (step 5).
///
/// Generic over the protocol: the same sequencer drives Mahi-Mahi (slots in
/// every round) and the baselines (slots only in wave-propose rounds).
pub struct CommitSequencer<C> {
    committer: C,
    /// Blocks already emitted in the total order.
    emitted: HashSet<BlockRef>,
    /// The round of the last status consumed (resume point).
    next_round: Round,
    /// How many statuses of `next_round` were already consumed.
    consumed_in_round: usize,
    /// Global count of sequenced slots.
    position: u64,
    /// Garbage-collection depth: a committed leader at round `r` linearizes
    /// only blocks with round ≥ `r − gc_depth`. `None` disables GC
    /// (everything reachable is linearized, memory grows unboundedly).
    gc_depth: Option<u64>,
    /// Capture a [`SequencerSnapshot`] every this many decisions (0
    /// disables capture).
    checkpoint_interval: u64,
    /// Snapshots captured at boundary crossings since the last
    /// [`CommitSequencer::take_boundary_snapshots`] call, oldest first.
    pending_snapshots: Vec<SequencerSnapshot>,
}

impl<C: ProtocolCommitter> CommitSequencer<C> {
    /// Wraps a committer with fresh sequencing state (starting at round 1).
    pub fn new(committer: C) -> Self {
        CommitSequencer {
            committer,
            emitted: HashSet::new(),
            next_round: 1,
            consumed_in_round: 0,
            position: 0,
            gc_depth: None,
            checkpoint_interval: 0,
            pending_snapshots: Vec::new(),
        }
    }

    /// Enables garbage collection with the given depth (Mysticeti-style):
    /// blocks more than `depth` rounds below a committed leader are
    /// deterministically excluded from its sub-DAG, so every validator —
    /// whenever it physically compacts — agrees on the total order.
    ///
    /// Callers may then periodically call [`BlockStore::compact`] with
    /// [`CommitSequencer::gc_floor`].
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero (a leader must at least linearize itself).
    pub fn with_gc_depth(mut self, depth: u64) -> Self {
        assert!(depth > 0, "gc depth must be positive");
        self.gc_depth = Some(depth);
        self
    }

    /// The lowest round future commits can still reference: the store may
    /// be compacted below it.
    pub fn gc_floor(&self) -> Round {
        match self.gc_depth {
            Some(depth) => self.next_round.saturating_sub(depth),
            None => 0,
        }
    }

    /// Captures a [`SequencerSnapshot`] every `interval` decisions (0
    /// disables capture). Because `position` counts decisions — which are
    /// agreed across correct validators — the boundaries are agreed too,
    /// regardless of how decisions batch into individual `try_commit`
    /// calls.
    pub fn set_checkpoint_interval(&mut self, interval: u64) {
        self.checkpoint_interval = interval;
    }

    /// Drains the snapshots captured at checkpoint boundaries since the
    /// last call, oldest first.
    pub fn take_boundary_snapshots(&mut self) -> Vec<SequencerSnapshot> {
        std::mem::take(&mut self.pending_snapshots)
    }

    /// The current resumable state (what a boundary capture would record
    /// right now).
    pub fn snapshot(&self) -> SequencerSnapshot {
        let floor = self.gc_floor();
        let mut emitted: Vec<BlockRef> = self
            .emitted
            .iter()
            .filter(|reference| reference.round >= floor)
            .copied()
            .collect();
        emitted.sort_unstable();
        SequencerSnapshot {
            position: self.position,
            next_round: self.next_round,
            consumed_in_round: u64::try_from(self.consumed_in_round)
                .expect("consumed count fits u64"),
            emitted,
        }
    }

    /// Resumes sequencing from a snapshot, discarding the current state.
    ///
    /// Used by state-sync: after verifying a quorum-certified checkpoint,
    /// a joining validator restores the snapshot whose digest the
    /// checkpoint signed and continues the sequence from decision
    /// `snapshot.position` — without replaying history from genesis.
    ///
    /// # Errors
    ///
    /// Fails if the snapshot's resume offset does not fit this platform's
    /// `usize`.
    pub fn restore(&mut self, snapshot: &SequencerSnapshot) -> Result<(), CodecError> {
        let consumed_in_round = usize::try_from(snapshot.consumed_in_round)
            .map_err(|_| CodecError::InvalidValue("sequencer resume offset"))?;
        self.position = snapshot.position;
        self.next_round = snapshot.next_round;
        self.consumed_in_round = consumed_in_round;
        self.emitted = snapshot.emitted.iter().copied().collect();
        self.pending_snapshots.clear();
        Ok(())
    }

    /// The committer driving the decisions.
    pub fn committer(&self) -> &C {
        &self.committer
    }

    /// The first round not yet fully sequenced.
    pub fn next_round(&self) -> Round {
        self.next_round
    }

    /// Total slots sequenced so far.
    pub fn sequenced_slots(&self) -> u64 {
        self.position
    }

    /// Number of distinct blocks emitted into the total order so far.
    pub fn emitted_blocks(&self) -> usize {
        self.emitted.len()
    }

    /// Extends the commit sequence as far as the DAG allows.
    pub fn try_commit(&mut self, store: &BlockStore) -> Vec<CommitDecision> {
        let statuses = self.committer.try_decide(store, self.next_round);
        let mut decisions = Vec::new();
        let mut current_round = self.next_round;
        let mut index_in_round = 0usize;
        for status in &statuses {
            let round = status.round();
            debug_assert!(round >= current_round, "statuses out of order");
            if round > current_round {
                current_round = round;
                index_in_round = 0;
            }
            // Skip statuses sequenced by a previous call.
            if current_round == self.next_round && index_in_round < self.consumed_in_round {
                index_in_round += 1;
                continue;
            }
            match status {
                LeaderStatus::Undecided { .. } => break,
                LeaderStatus::Skip(slot) => {
                    decisions.push(CommitDecision::Skip(self.position, *slot));
                    self.consume(current_round, &mut index_in_round);
                }
                LeaderStatus::Commit(block) => {
                    let floor = self
                        .gc_depth
                        .map_or(0, |depth| block.round().saturating_sub(depth));
                    let blocks = store.linearize_sub_dag_floored(
                        &block.reference(),
                        &mut self.emitted,
                        floor,
                    );
                    decisions.push(CommitDecision::Commit(CommittedSubDag {
                        position: self.position,
                        leader: block.reference(),
                        blocks,
                    }));
                    self.consume(current_round, &mut index_in_round);
                }
            }
        }
        decisions
    }

    fn consume(&mut self, round: Round, index_in_round: &mut usize) {
        if round > self.next_round {
            self.next_round = round;
            self.consumed_in_round = 0;
        }
        // Checked, not wrapping: a silent wraparound here would desync the
        // total order across validators, which is strictly worse than a
        // crash.
        self.consumed_in_round = self
            .consumed_in_round
            .checked_add(1)
            .expect("consumed-in-round overflow");
        self.position = self
            .position
            .checked_add(1)
            .expect("sequencer position overflow");
        *index_in_round += 1;
        // A boundary crossing: by now the decision at `position - 1` has
        // been pushed and (for commits) its sub-DAG folded into `emitted`,
        // so the snapshot describes exactly the state after `position`
        // decisions.
        if self.checkpoint_interval != 0 && self.position.is_multiple_of(self.checkpoint_interval) {
            self.pending_snapshots.push(self.snapshot());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::committer::{Committer, CommitterOptions};
    use mahimahi_dag::DagBuilder;
    use mahimahi_types::TestCommittee;

    fn sequencer(
        setup: &TestCommittee,
        wave_length: u64,
        leaders: usize,
    ) -> CommitSequencer<Committer> {
        CommitSequencer::new(Committer::new(
            setup.committee().clone(),
            CommitterOptions {
                wave_length,
                leaders_per_round: leaders,
            },
        ))
    }

    #[test]
    fn sequences_full_dag_without_gaps_or_duplicates() {
        let setup = TestCommittee::new(4, 13);
        let mut sequencer = sequencer(&setup, 5, 2);
        let mut dag = DagBuilder::new(setup);
        dag.add_full_rounds(12);
        let decisions = sequencer.try_commit(dag.store());
        assert!(!decisions.is_empty());
        // Positions are consecutive from zero.
        for (expected, decision) in decisions.iter().enumerate() {
            assert_eq!(decision.position(), expected as u64);
        }
        // Every block emitted exactly once.
        let mut seen = HashSet::new();
        for decision in &decisions {
            if let CommitDecision::Commit(sub_dag) = decision {
                assert_eq!(
                    sub_dag.blocks.last().map(|b| b.reference()),
                    Some(sub_dag.leader)
                );
                for block in &sub_dag.blocks {
                    assert!(seen.insert(block.reference()), "duplicate {block}");
                }
            }
        }
    }

    #[test]
    fn incremental_calls_resume_where_they_stopped() {
        let setup = TestCommittee::new(4, 13);
        let mut incremental = sequencer(&setup, 5, 2);
        let mut oneshot = sequencer(&setup, 5, 2);
        let mut dag = DagBuilder::new(setup);

        let mut collected = Vec::new();
        for _ in 0..3 {
            dag.add_full_rounds(4);
            collected.extend(incremental.try_commit(dag.store()));
        }
        let all_at_once = oneshot.try_commit(dag.store());
        assert_eq!(collected.len(), all_at_once.len());
        for (a, b) in collected.iter().zip(&all_at_once) {
            assert_eq!(a.position(), b.position());
            match (a, b) {
                (CommitDecision::Commit(x), CommitDecision::Commit(y)) => {
                    assert_eq!(x.leader, y.leader);
                    let x_refs: Vec<BlockRef> = x.blocks.iter().map(|b| b.reference()).collect();
                    let y_refs: Vec<BlockRef> = y.blocks.iter().map(|b| b.reference()).collect();
                    assert_eq!(x_refs, y_refs);
                }
                (CommitDecision::Skip(_, x), CommitDecision::Skip(_, y)) => {
                    assert_eq!(x, y)
                }
                _ => panic!("decision kind mismatch at {}", a.position()),
            }
        }
        // Nothing more to sequence without new blocks.
        assert!(incremental.try_commit(dag.store()).is_empty());
    }

    #[test]
    fn crash_faults_interleave_skips_and_commits() {
        let setup = TestCommittee::new(4, 13);
        let mut sequencer = sequencer(&setup, 4, 2);
        let mut dag = DagBuilder::new(setup);
        dag.add_full_round();
        for _ in 0..11 {
            dag.add_round_producers(&[0, 1, 2]);
        }
        let decisions = sequencer.try_commit(dag.store());
        let commits = decisions
            .iter()
            .filter(|d| matches!(d, CommitDecision::Commit(_)))
            .count();
        let skips = decisions
            .iter()
            .filter(|d| matches!(d, CommitDecision::Skip(..)))
            .count();
        assert!(commits > 0);
        assert!(skips > 0);
        // The total order contains every committed block's transactions in a
        // stable order across a fresh sequencer.
        let mut fresh = CommitSequencer::new(Committer::new(
            sequencer.committer().committee().clone(),
            sequencer.committer().options(),
        ));
        let again = fresh.try_commit(dag.store());
        assert_eq!(again.len(), decisions.len());
    }

    #[test]
    fn commit_sequence_is_prefix_consistent_across_views() {
        // Two sequencers over DAGs of different depth: the shorter's commit
        // sequence must be a prefix of the longer's (the safety property the
        // paper proves in Lemmas 5–7).
        let setup = TestCommittee::new(4, 13);
        let mut dag = DagBuilder::new(setup.clone());
        dag.add_full_rounds(8);

        let mut short_seq = sequencer(&setup, 5, 2);
        let short: Vec<_> = short_seq
            .try_commit(dag.store())
            .into_iter()
            .filter_map(|d| match d {
                CommitDecision::Commit(sub_dag) => Some(sub_dag.leader),
                CommitDecision::Skip(..) => None,
            })
            .collect();

        dag.add_full_rounds(4);
        let mut long_seq = sequencer(&setup, 5, 2);
        let long: Vec<_> = long_seq
            .try_commit(dag.store())
            .into_iter()
            .filter_map(|d| match d {
                CommitDecision::Commit(sub_dag) => Some(sub_dag.leader),
                CommitDecision::Skip(..) => None,
            })
            .collect();

        assert!(long.len() >= short.len());
        assert_eq!(&long[..short.len()], &short[..]);
    }

    #[test]
    fn boundary_snapshots_are_identical_across_batchings() {
        // One sequencer sees the DAG grow in four steps, the other sees it
        // all at once: the snapshots captured at each checkpoint boundary
        // must be byte-identical — the boundary is pinned to the decision
        // count, not to try_commit call batching.
        let setup = TestCommittee::new(4, 13);
        let mut incremental = sequencer(&setup, 5, 2);
        incremental.set_checkpoint_interval(3);
        let mut oneshot = sequencer(&setup, 5, 2);
        oneshot.set_checkpoint_interval(3);
        let mut dag = DagBuilder::new(setup);

        let mut stepped = Vec::new();
        for _ in 0..4 {
            dag.add_full_rounds(3);
            incremental.try_commit(dag.store());
            stepped.extend(incremental.take_boundary_snapshots());
        }
        oneshot.try_commit(dag.store());
        let all_at_once = oneshot.take_boundary_snapshots();
        assert!(!stepped.is_empty());
        assert_eq!(stepped, all_at_once);
        for (index, snapshot) in stepped.iter().enumerate() {
            assert_eq!(snapshot.position, 3 * (index as u64 + 1));
            assert_eq!(snapshot.digest(), all_at_once[index].digest());
        }
    }

    #[test]
    fn restored_sequencer_continues_the_exact_sequence() {
        let setup = TestCommittee::new(4, 13);
        let mut reference = sequencer(&setup, 5, 2);
        reference.set_checkpoint_interval(4);
        let mut dag = DagBuilder::new(setup.clone());
        dag.add_full_rounds(12);
        let full = reference.try_commit(dag.store());
        let snapshot = reference
            .take_boundary_snapshots()
            .into_iter()
            .next()
            .expect("at least one boundary");

        // A fresh sequencer restored from the snapshot must produce
        // exactly the decisions after the cut.
        let mut resumed = sequencer(&setup, 5, 2);
        resumed.restore(&snapshot).unwrap();
        let tail = resumed.try_commit(dag.store());
        let expected: Vec<_> = full
            .iter()
            .filter(|d| d.position() >= snapshot.position)
            .collect();
        assert_eq!(tail.len(), expected.len());
        for (a, b) in tail.iter().zip(expected) {
            assert_eq!(a.position(), b.position());
            match (a, b) {
                (CommitDecision::Commit(x), CommitDecision::Commit(y)) => {
                    assert_eq!(x.leader, y.leader);
                    let x_refs: Vec<BlockRef> = x.blocks.iter().map(|b| b.reference()).collect();
                    let y_refs: Vec<BlockRef> = y.blocks.iter().map(|b| b.reference()).collect();
                    assert_eq!(x_refs, y_refs, "sub-DAG diverged at {}", x.position);
                }
                (CommitDecision::Skip(_, x), CommitDecision::Skip(_, y)) => assert_eq!(x, y),
                _ => panic!("decision kind mismatch at {}", a.position()),
            }
        }
    }

    #[test]
    fn snapshot_codec_and_digest_round_trip() {
        let setup = TestCommittee::new(4, 13);
        let mut seq = sequencer(&setup, 5, 2).with_gc_depth(3);
        seq.set_checkpoint_interval(2);
        let mut dag = DagBuilder::new(setup);
        dag.add_full_rounds(10);
        seq.try_commit(dag.store());
        let snapshots = seq.take_boundary_snapshots();
        assert!(!snapshots.is_empty());
        for snapshot in snapshots {
            let bytes = snapshot.to_bytes_vec();
            assert_eq!(bytes.len(), snapshot.encoded_len());
            let decoded = SequencerSnapshot::from_bytes_exact(&bytes).unwrap();
            assert_eq!(decoded, snapshot);
            assert_eq!(decoded.digest(), snapshot.digest());
            // Emitted references are sorted and pruned to the GC floor.
            assert!(snapshot.emitted.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn high_round_positions_do_not_wrap() {
        // Regression for the cast/overflow audit: restoring near the top
        // of the u64 range must keep position accounting and the GC floor
        // exact instead of silently wrapping.
        let setup = TestCommittee::new(4, 13);
        let mut seq = sequencer(&setup, 5, 2).with_gc_depth(64);
        let snapshot = SequencerSnapshot {
            position: u64::MAX - 8,
            next_round: u64::MAX - 4,
            consumed_in_round: 1,
            emitted: Vec::new(),
        };
        seq.restore(&snapshot).unwrap();
        assert_eq!(seq.sequenced_slots(), u64::MAX - 8);
        assert_eq!(seq.gc_floor(), u64::MAX - 4 - 64);
        assert_eq!(seq.next_round(), u64::MAX - 4);
        // The snapshot of the restored state round-trips losslessly.
        assert_eq!(seq.snapshot().position, u64::MAX - 8);
        // An empty store decides nothing at astronomical rounds — but must
        // not panic or wrap while probing.
        let dag = DagBuilder::new(TestCommittee::new(4, 13));
        assert!(seq.try_commit(dag.store()).is_empty());
    }

    #[test]
    fn transactions_surface_through_sub_dags() {
        let setup = TestCommittee::new(4, 13);
        let mut sequencer = sequencer(&setup, 4, 1);
        let mut dag = DagBuilder::new(setup);
        use mahimahi_dag::BlockSpec;
        // Round 1 blocks carry distinguishable transactions.
        dag.add_round(
            (0..4)
                .map(|author| {
                    BlockSpec::new(author)
                        .with_transactions(vec![Transaction::benchmark(author as u64)])
                })
                .collect(),
        );
        dag.add_full_rounds(6);
        let decisions = sequencer.try_commit(dag.store());
        let committed_ids: HashSet<u64> = decisions
            .iter()
            .filter_map(|d| match d {
                CommitDecision::Commit(sub_dag) => Some(sub_dag),
                _ => None,
            })
            .flat_map(|sub_dag| sub_dag.transactions())
            .filter_map(Transaction::benchmark_id)
            .collect();
        assert_eq!(committed_ids, HashSet::from([0, 1, 2, 3]));
    }
}
