//! The committer abstraction shared by Mahi-Mahi and the baseline
//! protocols (Cordial Miners, Tusk).
//!
//! All three protocols in the paper's evaluation are *committers over a
//! DAG*: a pure function classifying leader slots as commit/skip/undecided,
//! plus the common DagRider-style linearization. Factoring the interface
//! here lets the simulator and the sequencer treat them uniformly.

use mahimahi_dag::BlockStore;
use mahimahi_types::{Committee, Round};

use crate::committer::Committer;
use crate::status::LeaderStatus;

/// A consensus commit rule over a shared [`BlockStore`].
pub trait ProtocolCommitter: Send + Sync {
    /// The committee decided for.
    fn committee(&self) -> &Committee;

    /// A short human-readable protocol name (for experiment output).
    fn name(&self) -> &'static str;

    /// Classifies every leader slot with Propose round in
    /// `from_round ..= highest decidable`, ascending by `(round, offset)`.
    ///
    /// Must be idempotent and *stable*: a slot reported `Commit` or `Skip`
    /// keeps that classification in every later call (monotonicity of the
    /// decision rules over a growing causally-complete DAG).
    fn try_decide(&self, store: &BlockStore, from_round: Round) -> Vec<LeaderStatus>;

    /// How many message delays one DAG round costs on the wire. Uncertified
    /// DAGs (Mahi-Mahi, Cordial Miners) disseminate each block once (1);
    /// certified DAGs (Tusk) pay consistent broadcast (3). The simulator
    /// uses this to model round pacing.
    fn delays_per_round(&self) -> u64 {
        1
    }
}

impl ProtocolCommitter for Committer {
    fn committee(&self) -> &Committee {
        Committer::committee(self)
    }

    fn name(&self) -> &'static str {
        match self.options().wave_length {
            4 => "Mahi-Mahi-4",
            5 => "Mahi-Mahi-5",
            _ => "Mahi-Mahi",
        }
    }

    fn try_decide(&self, store: &BlockStore, from_round: Round) -> Vec<LeaderStatus> {
        Committer::try_decide(self, store, from_round)
    }
}

impl<T: ProtocolCommitter + ?Sized> ProtocolCommitter for Box<T> {
    fn committee(&self) -> &Committee {
        (**self).committee()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn try_decide(&self, store: &BlockStore, from_round: Round) -> Vec<LeaderStatus> {
        (**self).try_decide(store, from_round)
    }
    fn delays_per_round(&self) -> u64 {
        (**self).delays_per_round()
    }
}

impl<T: ProtocolCommitter + ?Sized> ProtocolCommitter for std::sync::Arc<T> {
    fn committee(&self) -> &Committee {
        (**self).committee()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn try_decide(&self, store: &BlockStore, from_round: Round) -> Vec<LeaderStatus> {
        (**self).try_decide(store, from_round)
    }
    fn delays_per_round(&self) -> u64 {
        (**self).delays_per_round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::committer::CommitterOptions;
    use mahimahi_dag::DagBuilder;
    use mahimahi_types::TestCommittee;

    #[test]
    fn committer_implements_the_trait() {
        let setup = TestCommittee::new(4, 1);
        let committer: Box<dyn ProtocolCommitter> = Box::new(Committer::new(
            setup.committee().clone(),
            CommitterOptions::mahi_mahi_4(2),
        ));
        assert_eq!(committer.name(), "Mahi-Mahi-4");
        assert_eq!(committer.delays_per_round(), 1);
        let mut dag = DagBuilder::new(setup);
        dag.add_full_rounds(6);
        let statuses = committer.try_decide(dag.store(), 1);
        assert!(!statuses.is_empty());
    }
}
