//! The sans-I/O validator core: one event-driven state machine shared by
//! every driver.
//!
//! [`ValidatorEngine`] is the paper's validator — receive blocks, advance
//! rounds, run the commit rule, emit blocks and commits — with every
//! side-effect reified as data. It owns the local DAG ([`BlockStore`]),
//! the synchronizer bookkeeping, the [`CommitSequencer`], the
//! [`EvidencePool`], and Tusk's certified-broadcast ack pipeline, but it
//! never touches a socket, a clock, a disk, or a thread: drivers feed it
//! [`Input`]s and carry out the [`Output`]s it returns.
//!
//! Three drivers share this core:
//!
//! - the **simulator** (`mahimahi-sim`) maps `Broadcast`/`SendTo` onto its
//!   virtual network, `WakeAt` onto its event heap, and `TxsCommitted`
//!   onto its latency books;
//! - the **TCP node** (`mahimahi-node`) maps `Broadcast`/`SendTo` onto the
//!   length-prefixed transport, `Persist` onto its write-ahead log, and
//!   `Committed` onto the application channel;
//! - the **loopback harness** (`mahimahi-node::LoopbackCluster`) maps
//!   everything onto a deterministic in-memory event queue and records the
//!   input trace for replay.
//!
//! # Determinism contract
//!
//! `handle` is a pure function of the engine's construction parameters
//! (committee provisioning, committer, configuration, strategy) and the
//! sequence of [`Input`]s handled so far. The engine never reads a wall
//! clock — time only enters through [`Input::TimerFired`] — and never uses
//! randomness or iteration over unordered containers to decide an output.
//! Consequently a recorded input trace replayed into a freshly constructed
//! engine reproduces the exact output sequence of the original run, byte
//! for byte; `tests/driver_equivalence.rs` enforces this. Anything that
//! would break the contract (sockets, `Instant::now`, thread scheduling)
//! belongs in a driver, not here.
//!
//! # Example
//!
//! ```
//! use mahimahi_core::engine::{EngineConfig, Input, Output, ValidatorEngine};
//! use mahimahi_core::{Committer, CommitterOptions};
//! use mahimahi_types::{AuthorityIndex, Envelope, TestCommittee};
//!
//! let setup = TestCommittee::new(4, 7);
//! let committer = Committer::new(setup.committee().clone(), CommitterOptions::default());
//! let mut engine = ValidatorEngine::honest(
//!     EngineConfig::new(AuthorityIndex(0), setup),
//!     Box::new(committer),
//! );
//! // Genesis already holds a quorum: the first timer produces round 1.
//! let outputs = engine.handle(Input::TimerFired { now: 0 });
//! assert!(matches!(&outputs[..], [Output::Persist(_), Output::Broadcast(Envelope::Block(b))]
//!     if b.round() == 1));
//! ```

use mahimahi_crypto::blake2b::blake2b_256;
use mahimahi_crypto::Digest;
use mahimahi_dag::{BlockStore, InsertResult};
use mahimahi_types::{
    AuthorityIndex, AuthoritySet, Block, BlockBuilder, BlockRef, Checkpoint, CodecError, Committee,
    CommitteeMap, Decode, Decoder, Encode, Encoder, Envelope, EquivocationProof, Round, Slot,
    StateRoot, TestCommittee, Transaction, TxReceipt, TxVerdict, Verified,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use crate::evidence::EvidencePool;
use crate::execution::{BalanceLedger, ExecutionState};
use crate::ingress::{IngressConfig, IngressPolicy, IngressReport};
use crate::mempool::{Mempool, MempoolConfig, SubmitResult, TxIntegrityReport};
use crate::protocol::ProtocolCommitter;
use crate::sequencer::{CommitDecision, CommitSequencer, CommittedSubDag, SequencerSnapshot};
use crate::telemetry::{NoopSink, TelemetrySink};
use mahimahi_telemetry::Stage;

/// Engine time in microseconds. The engine is clock-free: this is whatever
/// monotonic microsecond counter the driver feeds through
/// [`Input::TimerFired`] (virtual time in the simulator, `Instant`-derived
/// elapsed time in the node).
pub type Time = u64;

/// An event fed into the engine by a driver.
#[derive(Debug, Clone)]
pub enum Input {
    /// A block arrived (best-effort dissemination).
    BlockReceived {
        /// The sending peer (synchronizer requests go back to it).
        from: usize,
        /// The received block.
        block: Arc<Block>,
    },
    /// Certified pipeline: a proposal awaiting acknowledgement.
    ProposalReceived {
        /// The proposing peer.
        from: usize,
        /// The proposed block.
        block: Arc<Block>,
    },
    /// Certified pipeline: an acknowledgement of an own proposal.
    AckReceived {
        /// The sending peer.
        from: usize,
        /// The acknowledged block.
        reference: BlockRef,
        /// The acknowledging validator.
        voter: AuthorityIndex,
    },
    /// Certified pipeline: a certificate releasing a block into the DAG.
    CertificateReceived {
        /// The sending peer.
        from: usize,
        /// The certified block's reference.
        reference: BlockRef,
        /// Signatures aggregated in the certificate.
        signatures: usize,
    },
    /// Synchronizer: a peer asks for the listed blocks.
    SyncRequest {
        /// The requesting peer.
        from: usize,
        /// The requested block references.
        references: Vec<BlockRef>,
    },
    /// Synchronizer: blocks answering an earlier request.
    SyncReply {
        /// The responding peer.
        from: usize,
        /// The delivered blocks.
        blocks: Vec<Arc<Block>>,
    },
    /// A gossiped equivocation proof.
    EvidenceReceived {
        /// The gossiping peer.
        from: usize,
        /// The (untrusted, re-verified) proof.
        proof: EquivocationProof,
    },
    /// A client transaction enters the bounded mempool. `tag` is opaque
    /// client metadata echoed back through [`Output::TxsCommitted`] when
    /// the transaction commits in an own block (the simulator stores the
    /// submission time there). Enqueue-only: inclusion happens at the next
    /// production, driven by a timer or message input; rejections surface
    /// as [`Output::TxRejected`].
    TxSubmitted {
        /// The transaction payload.
        transaction: Transaction,
        /// Opaque client metadata returned at commit time.
        tag: u64,
    },
    /// A client transaction batch arrived on the wire
    /// ([`Envelope::TxBatch`] — the client-ingress frame). Every
    /// transaction is submitted to the mempool tagged with the engine's
    /// current time, so [`Output::TxsCommitted`] doubles as a
    /// client-observed commit-latency probe. Enqueue-only, like
    /// [`Input::TxSubmitted`].
    TxBatchReceived {
        /// The submitting peer or client connection.
        from: usize,
        /// The batched transaction payloads.
        transactions: Vec<Transaction>,
    },
    /// A peer forwarded transactions that sat unproposed in its pool past
    /// its forwarding age ([`Envelope::TxForward`]). Plain mempool
    /// admission — digest dedup and capacity apply, the rate limiter does
    /// not (the sender is a committee member), and no receipt is emitted
    /// (the forwarding pool keeps the client relationship). Forwarded
    /// transactions are never forwarded a second hop.
    TxForwardReceived {
        /// The forwarding peer.
        from: usize,
        /// The moved transaction payloads.
        transactions: Vec<Transaction>,
    },
    /// A receipt frame observed on the wire ([`Envelope::TxReceipt`]).
    /// Receipts address clients, not validators — the engine ignores the
    /// input; it exists so [`Input::from_envelope`] stays total.
    TxReceiptReceived {
        /// The sending peer.
        from: usize,
        /// The receipt payload.
        receipt: TxReceipt,
    },
    /// A peer's signed execution checkpoint arrived (broadcast at every
    /// checkpoint boundary). The signature is verified inline; matching
    /// attestations accumulate toward quorum certification.
    CheckpointReceived {
        /// The sending peer.
        from: usize,
        /// The (untrusted, re-verified) checkpoint.
        checkpoint: Checkpoint,
    },
    /// State-sync: a peer asks for the latest quorum-certified checkpoint
    /// plus the snapshots it certifies.
    CheckpointRequested {
        /// The requesting peer.
        from: usize,
    },
    /// State-sync: a checkpoint payload answering an earlier request — a
    /// quorum of matching checkpoints plus the execution and sequencer
    /// snapshots they certify. Adopted only after full verification.
    CheckpointSyncReceived {
        /// The responding peer.
        from: usize,
        /// The claimed quorum of matching attestations.
        checkpoints: Vec<Checkpoint>,
        /// Execution snapshot hashing to the certified state root.
        execution: Vec<u8>,
        /// Sequencer snapshot hashing to the certified resume digest.
        resume: Vec<u8>,
    },
    /// The driver's clock advanced to `now`. The only way time enters the
    /// engine; drivers send it before delivering messages and whenever a
    /// previously emitted [`Output::WakeAt`] falls due.
    TimerFired {
        /// Current driver time (microseconds, monotone).
        now: Time,
    },
}

impl Input {
    /// Maps a decoded wire message onto the corresponding input.
    pub fn from_envelope(from: usize, envelope: Envelope) -> Input {
        match envelope {
            Envelope::Block(block) => Input::BlockReceived { from, block },
            Envelope::Proposal(block) => Input::ProposalReceived { from, block },
            Envelope::Ack { reference, voter } => Input::AckReceived {
                from,
                reference,
                voter,
            },
            Envelope::Certificate {
                reference,
                signatures,
            } => Input::CertificateReceived {
                from,
                reference,
                signatures,
            },
            Envelope::Request(references) => Input::SyncRequest { from, references },
            Envelope::Response(blocks) => Input::SyncReply { from, blocks },
            Envelope::Evidence(proof) => Input::EvidenceReceived { from, proof },
            Envelope::TxBatch(transactions) => Input::TxBatchReceived { from, transactions },
            Envelope::TxForward(transactions) => Input::TxForwardReceived { from, transactions },
            Envelope::TxReceipt(receipt) => Input::TxReceiptReceived { from, receipt },
            Envelope::Checkpoint(checkpoint) => Input::CheckpointReceived { from, checkpoint },
            Envelope::CheckpointRequest => Input::CheckpointRequested { from },
            Envelope::CheckpointResponse {
                checkpoints,
                execution,
                resume,
            } => Input::CheckpointSyncReceived {
                from,
                checkpoints,
                execution,
                resume,
            },
        }
    }
}

/// An effect the engine asks its driver to carry out.
#[derive(Debug)]
pub enum Output {
    /// Send `Envelope` to every other validator.
    Broadcast(Envelope),
    /// Send `Envelope` to one peer.
    SendTo(usize, Envelope),
    /// A leader slot committed; the sub-DAG extends the total order.
    Committed(CommittedSubDag),
    /// Client tags (see [`Input::TxSubmitted`]) of own transactions that
    /// just committed.
    TxsCommitted(Vec<u64>),
    /// Append the record to durable storage. Drivers without persistence
    /// (the simulator) drop this. The node syncs after own-block and
    /// evidence records — both must survive a crash (accidental
    /// equivocation, lost convictions).
    Persist(WalRecord),
    /// Call back with [`Input::TimerFired`] no later than the given time.
    WakeAt(Time),
    /// A new authority was convicted of equivocation (fired once per
    /// author, after the proof was verified, recorded, and persisted).
    Convicted(EquivocationProof),
    /// Backpressure: a submitted transaction was rejected by the mempool
    /// (duplicate or pool at capacity). `tag` is the submission's client
    /// tag (the engine's receive time for wire batches). Drivers relay
    /// this to the submitting client or count it in their load books.
    TxRejected {
        /// The rejected submission's client tag.
        tag: u64,
        /// Why the mempool refused it.
        reason: SubmitResult,
    },
    /// A client-ingress receipt to render back to the submitting
    /// connection: per-transaction admission verdicts for every received
    /// wire batch ([`Input::TxBatchReceived`]), and later the commit
    /// notification once all accepted transactions of a batch are
    /// sequenced. The TCP node frames it down the client's connection;
    /// the simulator and loopback drivers record it in their books.
    TxReceipt {
        /// The client/peer id the receipt addresses (the batch's `from`).
        peer: usize,
        /// The receipt payload.
        receipt: TxReceipt,
    },
    /// A checkpoint boundary was crossed: the engine signed and broadcast
    /// the attestation (and persisted it with its snapshots). Surfaced so
    /// drivers can gauge checkpoint progress; no action required.
    CheckpointProduced(Checkpoint),
}

/// One durable log record, as emitted through [`Output::Persist`] and
/// replayed through [`ValidatorEngine::restore_block`] /
/// [`ValidatorEngine::restore_evidence`] at recovery.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// A block that entered (or produced by) this validator.
    Block(Arc<Block>),
    /// A verified equivocation conviction.
    Evidence(EquivocationProof),
    /// A checkpoint with the snapshots it attests — the recovery cut.
    /// Once this record is durable, every block *below* the snapshot's GC
    /// floor is redundant for recovery: restart restores the snapshots
    /// and re-sequences only the trailing rounds, which is what makes WAL
    /// truncation below the checkpointed frontier safe (see
    /// `mahimahi-node`).
    Checkpoint {
        /// The signed attestation of the cut.
        checkpoint: Checkpoint,
        /// Execution snapshot hashing to the checkpoint's state root.
        execution: Vec<u8>,
        /// Sequencer snapshot hashing to the checkpoint's resume digest.
        resume: Vec<u8>,
    },
}

const WAL_TAG_BLOCK: u8 = 1;
const WAL_TAG_EVIDENCE: u8 = 2;
const WAL_TAG_CHECKPOINT: u8 = 3;

impl Encode for WalRecord {
    fn encode(&self, encoder: &mut Encoder) {
        match self {
            WalRecord::Block(block) => {
                encoder.put_u8(WAL_TAG_BLOCK);
                block.as_ref().encode(encoder);
            }
            WalRecord::Evidence(proof) => {
                encoder.put_u8(WAL_TAG_EVIDENCE);
                proof.encode(encoder);
            }
            WalRecord::Checkpoint {
                checkpoint,
                execution,
                resume,
            } => {
                encoder.put_u8(WAL_TAG_CHECKPOINT);
                checkpoint.encode(encoder);
                encoder.put_var_bytes(execution);
                encoder.put_var_bytes(resume);
            }
        }
    }
}

impl Decode for WalRecord {
    fn decode(decoder: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match decoder.get_u8()? {
            WAL_TAG_BLOCK => Ok(WalRecord::Block(Block::decode(decoder)?.into_arc())),
            WAL_TAG_EVIDENCE => Ok(WalRecord::Evidence(EquivocationProof::decode(decoder)?)),
            WAL_TAG_CHECKPOINT => Ok(WalRecord::Checkpoint {
                checkpoint: Checkpoint::decode(decoder)?,
                execution: decoder.get_var_bytes()?.to_vec(),
                resume: decoder.get_var_bytes()?.to_vec(),
            }),
            _ => Err(CodecError::InvalidValue("wal record tag")),
        }
    }
}

/// Where a strategy wants a message to go.
#[derive(Debug)]
pub enum Route {
    /// To every other validator, now.
    Broadcast(Envelope),
    /// To one peer, now.
    Send(usize, Envelope),
    /// To every other validator, but not before `release` (slow-proposer
    /// pacing; the engine queues the message and emits the wake-up).
    Delay(Time, Envelope),
}

/// How produced blocks are built and disseminated.
///
/// The engine computes *when* to produce (quorum, pacing, inclusion wait)
/// and *what goes in* (parents, transactions); the strategy decides how
/// many variants to build and who receives which. [`HonestProposer`] builds
/// one block and broadcasts it — the only strategy real deployments run.
/// The simulator's Byzantine strategies (equivocators, withholding leaders,
/// slow proposers) live in `mahimahi-sim` and implement this trait, so
/// attack behavior composes with the shared core instead of forking it.
pub trait ProposerStrategy: Send {
    /// Builds and routes the block(s) for the round described by `ctx`.
    ///
    /// Implementations must leave the own chain extendable: admit exactly
    /// one variant locally ([`ProposeCtx::admit_own`]) or, under a
    /// certified DAG, register exactly one proposal
    /// ([`ProposeCtx::register_proposal`]).
    fn propose(&mut self, ctx: &mut ProposeCtx<'_>);

    /// Routes a certificate just formed for an own proposal (certified
    /// DAGs). The default broadcasts it.
    fn route_certificate(&mut self, certificate: Envelope, reference: BlockRef) -> Vec<Route> {
        let _ = reference;
        vec![Route::Broadcast(certificate)]
    }
}

/// The protocol-faithful strategy: one block, broadcast to everyone
/// (proposal first under a certified DAG).
#[derive(Debug, Default)]
pub struct HonestProposer;

impl ProposerStrategy for HonestProposer {
    fn propose(&mut self, ctx: &mut ProposeCtx<'_>) {
        let block = ctx.build(None);
        if ctx.certified() {
            ctx.register_proposal(block.clone());
            ctx.broadcast(Envelope::Proposal(block));
        } else {
            ctx.admit_own(block.clone());
            ctx.broadcast(Envelope::Block(block));
        }
    }
}

/// The build-and-route context handed to a [`ProposerStrategy`] for one
/// production.
pub struct ProposeCtx<'a> {
    engine: &'a mut ValidatorEngine,
    round: Round,
    parents: Vec<BlockRef>,
    transactions: Vec<Transaction>,
    tags: Vec<(u64, usize)>,
    routes: Vec<Route>,
    persists: Vec<WalRecord>,
}

impl ProposeCtx<'_> {
    /// The round being produced.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The engine's current time (for pacing strategies).
    pub fn now(&self) -> Time {
        self.engine.now
    }

    /// The producing authority.
    pub fn authority(&self) -> AuthorityIndex {
        self.engine.config.authority
    }

    /// Committee size `n`.
    pub fn committee_size(&self) -> usize {
        self.engine.committee.size()
    }

    /// The committee's fault bound `f`.
    pub fn f(&self) -> usize {
        self.engine.committee.f()
    }

    /// Whether blocks require certification before entering the DAG.
    pub fn certified(&self) -> bool {
        self.engine.config.certified
    }

    /// Builds one signed variant of this round's block over the engine's
    /// parents and drained transactions. `tag` appends one extra marker
    /// transaction, letting equivocation strategies mint conflicting
    /// variants. Every built variant is registered for own-transaction
    /// commit accounting.
    pub fn build(&mut self, tag: Option<u64>) -> Arc<Block> {
        let authority = self.engine.config.authority;
        let mut builder = BlockBuilder::new(authority, self.round)
            .parents(self.parents.clone())
            .transactions(self.transactions.iter().cloned());
        if let Some(tag) = tag {
            builder = builder.transaction(Transaction::new(tag.to_le_bytes().to_vec()));
        }
        let block = builder
            .build_with(
                self.engine.config.setup.keypair(authority),
                self.engine.config.setup.coin_secret(authority),
            )
            .into_arc();
        self.engine
            .own_block_txs
            .insert(block.reference(), self.tags.clone());
        block
    }

    /// Admits `block` into the local DAG as this validator's block of the
    /// round and schedules its persistence.
    pub fn admit_own(&mut self, block: Arc<Block>) {
        self.persists.push(WalRecord::Block(block.clone()));
        self.engine.insert_own(block);
    }

    /// Registers `block` as a pending own proposal (certified pipeline):
    /// it enters the DAG only once a certificate forms; the own
    /// acknowledgement is counted immediately.
    pub fn register_proposal(&mut self, block: Arc<Block>) {
        let reference = block.reference();
        self.engine.pending_proposals.insert(reference, block);
        self.engine
            .ack_votes
            .entry(reference)
            .or_default()
            .insert(self.engine.config.authority);
    }

    // --------------------------------------------------------------
    // Read-only views of the live consensus state, for adaptive
    // strategies that pick victims from what the DAG actually shows
    // instead of a precomputed schedule.

    /// Authorities with a block at `round` in the local DAG (allocation-free
    /// bitset copy).
    pub fn authorities_at_round(&self, round: Round) -> AuthoritySet {
        self.engine.store.authorities_at_round(round)
    }

    /// Authorities this validator has observed equivocating (live store
    /// view).
    pub fn observed_equivocators(&self) -> AuthoritySet {
        self.engine.store.equivocators()
    }

    /// Authorities convicted through the evidence pool.
    pub fn convicted(&self) -> AuthoritySet {
        self.engine.evidence.convicted_set()
    }

    /// The quorum threshold `2f + 1`.
    pub fn quorum_threshold(&self) -> usize {
        self.engine.committee.quorum_threshold()
    }

    /// Routes `envelope` to every other validator.
    pub fn broadcast(&mut self, envelope: Envelope) {
        self.routes.push(Route::Broadcast(envelope));
    }

    /// Routes `envelope` to one peer.
    pub fn send(&mut self, peer: usize, envelope: Envelope) {
        self.routes.push(Route::Send(peer, envelope));
    }

    /// Routes `envelope` to every other validator no earlier than
    /// `release`.
    pub fn delay_broadcast(&mut self, release: Time, envelope: Envelope) {
        self.routes.push(Route::Delay(release, envelope));
    }
}

/// Static parameters of a [`ValidatorEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The authority this engine runs as.
    pub authority: AuthorityIndex,
    /// Committee provisioning. A production deployment would hand each
    /// validator only its own secrets; the test committee carries them all
    /// (the engine uses only its own for signing).
    pub setup: TestCommittee,
    /// Whether blocks require certification (consistent broadcast) before
    /// entering the DAG (Tusk).
    pub certified: bool,
    /// Mempool bounds and per-block payload budget: pool capacity in
    /// transactions and bytes, and the `max_block_txs`/`max_block_bytes`
    /// drained into each produced block. See [`MempoolConfig`].
    pub mempool: MempoolConfig,
    /// Client-ingress policy: per-client token-bucket rate limiting and
    /// age-based mempool forwarding. Fully permissive by default. See
    /// [`IngressConfig`].
    pub ingress: IngressConfig,
    /// Whether the engine keeps the committed-transaction digest set that
    /// backs [`ValidatorEngine::tx_integrity`]'s duplicate-commit counter.
    /// On by default (the scenario harness gates on it); long
    /// multi-million-transaction sweeps turn it off to halve digest-set
    /// growth. (The mempool's own accepted-digest ledger stays regardless
    /// — retention *is* the dedup/replay protection.)
    pub track_tx_integrity: bool,
    /// How long to keep collecting previous-round blocks after the quorum
    /// arrived before producing the next round. Real implementations pace
    /// rounds this way so that far-region blocks stay referenced; advancing
    /// at the instant of quorum starves the slowest regions and (with short
    /// waves) skips their leader slots. 0 disables the wait.
    pub inclusion_wait: Time,
    /// Minimum spacing between produced rounds (localhost clusters would
    /// otherwise spin thousands of rounds per second). 0 disables pacing.
    pub min_round_interval: Time,
    /// Garbage-collection depth: blocks more than this many rounds below
    /// the commit frontier are deterministically excluded from commits and
    /// periodically dropped from memory. `None` disables GC.
    pub gc_depth: Option<u64>,
    /// Produce no block with round ≥ this (crash-fault modelling; `None`
    /// never halts).
    pub halt_from_round: Option<Round>,
    /// Sign and emit a `Checkpoint` every this many sequencing decisions
    /// (commits *and* skips); 0 disables checkpointing.
    ///
    /// The boundary is pinned to the decision count — which every correct
    /// validator agrees on — so all of them checkpoint the same cuts and
    /// their attestations aggregate into quorum certificates. Each
    /// boundary also persists a [`WalRecord::Checkpoint`] carrying the
    /// execution and sequencer snapshots: once that record is durable, the
    /// write-ahead log may be truncated below the snapshot's GC floor
    /// (recovery restores the snapshots and re-sequences only the trailing
    /// rounds).
    pub checkpoint_interval: u64,
}

impl EngineConfig {
    /// An uncertified configuration with no pacing, no GC, and the default
    /// block capacity — the base both drivers specialize.
    pub fn new(authority: AuthorityIndex, setup: TestCommittee) -> Self {
        EngineConfig {
            authority,
            setup,
            certified: false,
            mempool: MempoolConfig::default(),
            ingress: IngressConfig::default(),
            track_tx_integrity: true,
            inclusion_wait: 0,
            min_round_interval: 0,
            gc_depth: None,
            halt_from_round: None,
            checkpoint_interval: 32,
        }
    }
}

/// The transport-free, clock-free validator state machine.
///
/// See the [module docs](crate::engine) for the driver contract and the
/// determinism guarantee.
pub struct ValidatorEngine {
    config: EngineConfig,
    committee: Committee,
    store: BlockStore,
    evidence: EvidencePool,
    sequencer: CommitSequencer<Box<dyn ProtocolCommitter>>,
    strategy: Option<Box<dyn ProposerStrategy>>,
    /// Driver time, advanced only by [`Input::TimerFired`].
    now: Time,
    /// Last round this validator produced a block for.
    round: Round,
    /// When the quorum for advancing past `round` was first observed.
    quorum_since: Option<Time>,
    /// When the last block was produced (round pacing); `None` before the
    /// first production so start-up is never delayed.
    last_production: Option<Time>,
    /// Messages built but deliberately held back (slow-proposer pacing):
    /// (release time, message), in release order.
    pending_out: VecDeque<(Time, Envelope)>,
    /// The bounded client-transaction pool feeding block production.
    mempool: Mempool,
    /// Per-client token buckets (external clients only; committee peers
    /// are exempt by construction).
    ingress: IngressPolicy,
    /// Receipt/forwarding ledger (the `forwarded`/`rate_limited` fields
    /// are filled from the mempool at report time).
    ingress_counters: IngressReport,
    /// Commit notifications owed to clients: `(batch tag, client)` → how
    /// many accepted transactions of that batch are still unsequenced.
    /// Keys are time-ordered (tags are engine receive times), so stale
    /// entries — batches whose transactions will never all commit here,
    /// e.g. after an equivocating peer got one linearized first — are
    /// pruned from the front by retention.
    pending_commit_notes: BTreeMap<(u64, usize), u64>,
    /// Digests of transactions forwarded to a peer, with the batch
    /// bookkeeping needed to close their commit notes when any sequenced
    /// block carries them.
    forwarded_out: HashMap<Digest, (u64, usize)>,
    /// Engine time of the last commit-note retention sweep.
    last_note_gc: Time,
    /// Round-robin cursor over peers for forwarding frames.
    forward_cursor: usize,
    /// Blocks in the local DAG that no stored block references yet —
    /// candidates for the next block's parent list.
    unreferenced: BTreeSet<BlockRef>,
    /// Certified pipeline: proposals awaiting a certificate.
    pending_proposals: HashMap<BlockRef, Arc<Block>>,
    /// Certified pipeline: acknowledgements collected for own proposals.
    /// Per-proposal voter tallies are dense bitsets — quorum checks are
    /// popcounts, not hash-set cardinalities.
    ack_votes: HashMap<BlockRef, AuthoritySet>,
    /// Certified pipeline: own proposals already certified.
    certified_own: HashSet<BlockRef>,
    /// `(tag, client)` pairs of transactions in own blocks, resolved at
    /// commit (tags echoed through [`Output::TxsCommitted`], clients used
    /// to close their batches' commit notes).
    own_block_txs: HashMap<BlockRef, Vec<(u64, usize)>>,
    /// Commit statistics.
    committed_slots: u64,
    skipped_slots: u64,
    sequenced_blocks: u64,
    committed_transactions: u64,
    /// Own accepted transactions that committed (tags returned).
    own_committed_txs: u64,
    /// Digests of transactions committed in *own* blocks — the
    /// exactly-once ledger behind `duplicate_committed`. Scoped to own
    /// blocks because they are the unforgeable image of this validator's
    /// mempool drains: a Byzantine peer can always copy an observed
    /// payload into its own blocks (and an equivocator can get its spam
    /// linearized under two conflicting digests), but it cannot sign a
    /// block as this authority. Kept only when
    /// [`EngineConfig::track_tx_integrity`] is on, and GC'd against the
    /// commit frontier (the same floor as `verified_blocks`) through the
    /// round-keyed index below — floored linearization guarantees nothing
    /// below the floor can commit again, so pruning is exact within the
    /// GC window. With GC off the ledger is retained in full.
    committed_tx_digests: HashSet<Digest>,
    /// Round-keyed index into `committed_tx_digests` (the round of the own
    /// block that committed each digest), enabling frontier GC.
    committed_digests_by_round: BTreeMap<Round, Vec<Digest>>,
    /// Accepted transactions that committed twice across own blocks.
    duplicate_committed: u64,
    /// The committed leader sequence (`None` = skipped slot), for safety
    /// checking across validators.
    commit_log: Vec<Option<BlockRef>>,
    /// Digests of blocks whose signature and coin share already verified,
    /// keyed by round so GC can prune them with the store. The digest
    /// covers the entire content, so a same-digest block is byte-identical
    /// to the one that passed — re-verifying it can only succeed again.
    /// Only successes are cached; failures always re-verify.
    verified_blocks: BTreeMap<Round, HashSet<Digest>>,
    /// Full block verifications actually performed (cache misses).
    signature_checks: u64,
    /// The deterministic state machine folded over the commit stream.
    execution: Box<dyn ExecutionState>,
    /// The last committed leader (genesis-zero sentinel before the first
    /// commit) — recorded in every checkpoint as the commit frontier.
    last_committed_leader: BlockRef,
    /// Own (or adopted) checkpoints with the snapshots they attest, keyed
    /// by position: the material served to state-syncing peers. Pruned to
    /// [`CHECKPOINT_RETENTION`] entries.
    checkpoint_archive: BTreeMap<u64, (Checkpoint, Vec<u8>, Vec<u8>)>,
    /// Verified attestations collected per position per authority (own
    /// included), committee-dense per position. Iteration is in authority
    /// order by construction. Pruned alongside the archive.
    peer_checkpoints: BTreeMap<u64, CommitteeMap<Checkpoint>>,
    /// Highest position with a quorum of matching attestations *and* an
    /// archived snapshot — what `CheckpointRequest` is answered with.
    latest_certified: Option<u64>,
    /// Position of `commit_log[0]` (non-zero after a state-sync adoption:
    /// the log then covers only post-checkpoint decisions).
    commit_log_base: u64,
    /// Record-only stage observer (default: [`NoopSink`]). Never consulted
    /// for decisions — see [`crate::telemetry`] for the contract.
    telemetry: Arc<dyn TelemetrySink>,
}

/// How many checkpoint positions the engine retains attestations and
/// snapshots for. Old entries can never certify once a newer one has, so
/// a small window bounds memory without losing safety.
const CHECKPOINT_RETENTION: usize = 8;

/// How long (engine microseconds) unresolved commit notes and forwarded
/// digests are retained before the periodic sweep drops them — ten
/// minutes, orders of magnitude past any commit latency this repo
/// measures.
const NOTE_RETENTION: Time = 600_000_000;

impl ValidatorEngine {
    /// Creates the engine with an explicit [`ProposerStrategy`].
    pub fn new(
        config: EngineConfig,
        committer: Box<dyn ProtocolCommitter>,
        strategy: Box<dyn ProposerStrategy>,
    ) -> Self {
        let committee = config.setup.committee().clone();
        let store = BlockStore::new(committee.size(), committee.quorum_threshold());
        let unreferenced = Block::all_genesis(committee.size())
            .iter()
            .map(Block::reference)
            .collect();
        let mut sequencer = CommitSequencer::new(committer);
        if let Some(depth) = config.gc_depth {
            sequencer = sequencer.with_gc_depth(depth);
        }
        sequencer.set_checkpoint_interval(config.checkpoint_interval);
        ValidatorEngine {
            evidence: EvidencePool::new(committee.clone()),
            committee,
            store,
            sequencer,
            strategy: Some(strategy),
            now: 0,
            round: 0,
            quorum_since: None,
            last_production: None,
            pending_out: VecDeque::new(),
            mempool: Mempool::new(config.mempool),
            ingress: IngressPolicy::new(config.ingress),
            ingress_counters: IngressReport::default(),
            pending_commit_notes: BTreeMap::new(),
            forwarded_out: HashMap::new(),
            last_note_gc: 0,
            forward_cursor: config.authority.as_usize() + 1,
            unreferenced,
            pending_proposals: HashMap::new(),
            ack_votes: HashMap::new(),
            certified_own: HashSet::new(),
            own_block_txs: HashMap::new(),
            committed_slots: 0,
            skipped_slots: 0,
            sequenced_blocks: 0,
            committed_transactions: 0,
            own_committed_txs: 0,
            committed_tx_digests: HashSet::new(),
            committed_digests_by_round: BTreeMap::new(),
            duplicate_committed: 0,
            commit_log: Vec::new(),
            verified_blocks: BTreeMap::new(),
            signature_checks: 0,
            execution: Box::new(BalanceLedger::new()),
            last_committed_leader: BlockRef {
                round: 0,
                author: AuthorityIndex(0),
                digest: Digest::ZERO,
            },
            checkpoint_archive: BTreeMap::new(),
            peer_checkpoints: BTreeMap::new(),
            latest_certified: None,
            commit_log_base: 0,
            telemetry: Arc::new(NoopSink),
            config,
        }
    }

    /// Attaches a record-only telemetry sink (default: [`NoopSink`]). The
    /// sink observes commit-path stage boundaries — apply, sequencing,
    /// execution, receipt emission — with durations derived from the
    /// driver-fed clock; it can never change an output (the sink-
    /// equivalence proptest holds the engine to that).
    pub fn set_telemetry(&mut self, sink: Arc<dyn TelemetrySink>) {
        self.telemetry = sink;
    }

    /// Replaces the execution state machine (default: [`BalanceLedger`]).
    /// Must be called before the first input — swapping mid-run would
    /// desync the state root from the committed prefix.
    pub fn with_execution(mut self, execution: Box<dyn ExecutionState>) -> Self {
        self.execution = execution;
        self
    }

    /// Creates the engine with the protocol-faithful [`HonestProposer`].
    pub fn honest(config: EngineConfig, committer: Box<dyn ProtocolCommitter>) -> Self {
        ValidatorEngine::new(config, committer, Box::new(HonestProposer))
    }

    /// Handles one input, returning the effects for the driver to perform,
    /// in order. See the module docs for the determinism contract.
    pub fn handle(&mut self, input: Input) -> Vec<Output> {
        // Timer ticks are the driver's clock feed, not commit-path work;
        // everything else is an applied item.
        if !matches!(input, Input::TimerFired { .. }) {
            self.telemetry.record_stage(Stage::EngineApplied, 0);
        }
        let mut outputs = Vec::new();
        match input {
            Input::TxSubmitted { transaction, tag } => {
                // Enqueue-only: inclusion happens at the next production so
                // batch submissions do not fragment across blocks.
                let result = self.submit_transaction(transaction, tag);
                if result.is_accepted() {
                    self.arm_forward_timer(&mut outputs);
                } else {
                    outputs.push(Output::TxRejected {
                        tag,
                        reason: result,
                    });
                }
                return outputs;
            }
            Input::TxBatchReceived { from, transactions } => {
                // Wire batches carry no per-transaction tag; the engine's
                // receive time stands in, turning the receipt tag (and the
                // TxsCommitted tags) into client-observed commit latencies.
                if transactions.is_empty() {
                    return outputs; // cannot arrive via the wire codec
                }
                let tag = self.now;
                self.ingress_counters.batches_received += 1;
                // Committee members (forwarding peers, the node's own
                // submission channel) are never rate-limited; only
                // external client connections pay the token bucket.
                let external = from >= self.committee.size();
                let mut verdicts = Vec::with_capacity(transactions.len());
                for transaction in transactions {
                    let verdict = if external && !self.ingress.admit(from, tag) {
                        self.mempool.note_rate_limited();
                        TxVerdict::RateLimited
                    } else {
                        match self.mempool.submit(transaction, tag, from, tag) {
                            SubmitResult::Accepted => TxVerdict::Accepted,
                            SubmitResult::Duplicate => TxVerdict::Duplicate,
                            SubmitResult::Full => TxVerdict::Full,
                        }
                    };
                    verdicts.push(verdict);
                }
                let accepted = usize_gauge(verdicts.iter().filter(|v| v.is_accepted()).count());
                if accepted > 0 {
                    // Open the commit note: the Committed receipt fires
                    // once every accepted transaction of the batch is
                    // sequenced (locally or at a forwarding target).
                    *self.pending_commit_notes.entry((tag, from)).or_insert(0) += accepted;
                    self.ingress_counters.notes_opened += 1;
                    self.arm_forward_timer(&mut outputs);
                }
                self.ingress_counters.receipts_emitted += 1;
                outputs.push(Output::TxReceipt {
                    peer: from,
                    receipt: TxReceipt::Admission { tag, verdicts },
                });
                return outputs;
            }
            Input::TxForwardReceived { from, transactions } => {
                // A peer moved these out of its pool: plain admission
                // (dedup + capacity), no receipt, no rate limit, no
                // second forwarding hop.
                let tag = self.now;
                for transaction in transactions {
                    let _ = self.mempool.submit_forwarded(transaction, tag, from, tag);
                }
                return outputs;
            }
            Input::TxReceiptReceived { .. } => {
                // Receipts address clients; a validator observing one on
                // its wire ignores it.
                return outputs;
            }
            Input::TimerFired { now } => {
                self.now = self.now.max(now);
            }
            Input::BlockReceived { from, block } => {
                self.accept_block(block, from, &mut outputs);
            }
            // The certified-pipeline messages exist on the shared wire for
            // every driver, but an uncertified engine must drop them: a
            // TCP peer could otherwise grow `pending_proposals`/`ack_votes`
            // without bound (no certificate ever drains them) or spoof
            // ack quorums — the acks are voter claims, not signatures, a
            // simulation-fidelity shortcut acceptable only where the
            // protocol actually runs certified.
            Input::ProposalReceived { from, block } => {
                if !self.config.certified {
                    return outputs;
                }
                let reference = block.reference();
                self.pending_proposals.insert(reference, block);
                outputs.push(Output::SendTo(
                    from,
                    Envelope::Ack {
                        reference,
                        voter: self.config.authority,
                    },
                ));
            }
            Input::AckReceived {
                from,
                reference,
                voter,
            } => {
                if !self.config.certified {
                    return outputs;
                }
                self.on_ack(from, reference, voter, &mut outputs);
            }
            Input::CertificateReceived {
                from, reference, ..
            } => {
                if !self.config.certified {
                    return outputs;
                }
                if let Some(block) = self.pending_proposals.remove(&reference) {
                    self.accept_block(block, from, &mut outputs);
                } else if !self.store.contains(&reference) {
                    // Certificate outran the proposal: fetch the block.
                    outputs.push(Output::SendTo(from, Envelope::Request(vec![reference])));
                }
            }
            Input::SyncRequest { from, references } => {
                let blocks: Vec<Arc<Block>> = references
                    .iter()
                    .filter_map(|reference| self.store.get(reference).cloned())
                    .collect();
                if !blocks.is_empty() {
                    outputs.push(Output::SendTo(from, Envelope::Response(blocks)));
                }
                // Evidence catch-up: a peer driving the synchronizer is
                // repairing gaps (e.g. restarting after an outage) and may
                // have missed the one-shot conviction gossip; piggyback
                // this validator's convictions so culprit sets converge
                // even for validators that were down when proofs flooded.
                for (_, proof) in self.evidence.iter() {
                    outputs.push(Output::SendTo(from, Envelope::Evidence(proof.clone())));
                }
            }
            Input::SyncReply { from, blocks } => {
                for block in blocks {
                    self.accept_block(block, from, &mut outputs);
                }
            }
            Input::EvidenceReceived { proof, .. } => {
                self.ingest_evidence(proof, &mut outputs);
            }
            // Checkpoint signatures are verified inline on both entry
            // points (never delegated to the admission verify stage), so
            // `handle_verified` stays byte-identical to `handle`.
            Input::CheckpointReceived { checkpoint, .. } => {
                self.ingest_checkpoint(checkpoint);
            }
            Input::CheckpointRequested { from } => {
                if let Some(envelope) = self.checkpoint_response() {
                    outputs.push(Output::SendTo(from, envelope));
                }
            }
            Input::CheckpointSyncReceived {
                checkpoints,
                execution,
                resume,
                ..
            } => {
                self.adopt_checkpoint(checkpoints, execution, resume, &mut outputs);
            }
        }
        self.advance(&mut outputs);
        // Forwarding runs after advance: anything production could drain
        // into an own block stays local; only what this validator cannot
        // propose (halted, paced out) moves to a peer.
        self.forward_aged(&mut outputs);
        self.commit(&mut outputs);
        outputs
    }

    /// Handles an input whose expensive checks already ran in a verify
    /// stage (see [`AdmissionPipeline`](crate::admission::AdmissionPipeline)):
    /// blocks carried by the input are marked verified, so the apply path
    /// skips their signature and coin-share checks.
    ///
    /// Outputs are byte-identical to [`ValidatorEngine::handle`] on the
    /// same input — skipping a verification that would have succeeded
    /// changes no output and no protocol state — so traces recorded from
    /// this entry point replay exactly through plain `handle`.
    pub fn handle_verified(&mut self, input: Verified<Input>) -> Vec<Output> {
        let input = input.into_inner();
        match &input {
            Input::BlockReceived { block, .. } | Input::ProposalReceived { block, .. } => {
                self.mark_verified(block);
            }
            Input::SyncReply { blocks, .. } => {
                for block in blocks {
                    self.mark_verified(block);
                }
            }
            _ => {}
        }
        self.handle(input)
    }

    /// Submits a client transaction to the mempool without driving the
    /// state machine (equivalent to [`Input::TxSubmitted`]), returning the
    /// backpressure signal directly.
    pub fn submit_transaction(&mut self, transaction: Transaction, tag: u64) -> SubmitResult {
        // Locally submitted transactions belong to this validator's own
        // client id (a committee member — never rate-limited).
        let client = self.config.authority.as_usize();
        self.mempool.submit(transaction, tag, client, self.now)
    }

    // ------------------------------------------------------------------
    // Recovery (used by the node before the first `handle`).

    /// Re-inserts a block from durable storage: no outputs, no gossip.
    /// Invalid blocks are skipped; own blocks advance the produced-round
    /// watermark even when their ancestry is still missing (a torn log
    /// tail must not cause accidental equivocation). Evidence surfaced by
    /// replayed conflicts is convicted silently.
    pub fn restore_block(&mut self, block: Arc<Block>) {
        if !self.check_block(&block) {
            return;
        }
        if block.author() == self.config.authority {
            self.round = self.round.max(block.round());
        }
        if let Ok(InsertResult::Inserted(admitted)) = self.store.insert(block) {
            for reference in admitted {
                self.note_admitted(reference);
            }
        }
        for proof in self.store.take_equivocation_evidence() {
            let _ = self.evidence.submit(proof);
        }
    }

    /// Re-submits a persisted conviction: no outputs, no re-gossip.
    pub fn restore_evidence(&mut self, proof: EquivocationProof) {
        let _ = self.evidence.submit(proof);
    }

    // ------------------------------------------------------------------
    // Accessors.

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The authority this engine runs as.
    pub fn authority(&self) -> AuthorityIndex {
        self.config.authority
    }

    /// The local DAG.
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// The evidence pool (verified convictions, slashing hooks).
    pub fn evidence(&self) -> &EvidencePool {
        &self.evidence
    }

    /// Mutable evidence pool access (for registering slashing hooks).
    pub fn evidence_mut(&mut self) -> &mut EvidencePool {
        &mut self.evidence
    }

    /// The authorities this engine has convicted of equivocation, in index
    /// order.
    pub fn convicted(&self) -> Vec<AuthorityIndex> {
        self.evidence.convicted()
    }

    /// Last produced round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The engine's current (driver-fed) time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Transactions waiting for inclusion.
    pub fn queued_transactions(&self) -> usize {
        self.mempool.len()
    }

    /// The bounded client-transaction pool (occupancy, rejection counters).
    pub fn mempool(&self) -> &Mempool {
        &self.mempool
    }

    /// A point-in-time accounting of the transaction pipeline: accepted vs
    /// pending vs in-flight vs committed, rejection counters, duplicate
    /// commits, and peak pool occupancy. The `tx-integrity` scenario
    /// oracle holds every correct validator to
    /// [`TxIntegrityReport::conserves_transactions`],
    /// [`TxIntegrityReport::occupancy_bounded`], and a zero
    /// `duplicate_committed` count.
    pub fn tx_integrity(&self) -> TxIntegrityReport {
        TxIntegrityReport {
            accepted: self.mempool.accepted(),
            rejected_duplicate: self.mempool.rejected_duplicate(),
            rejected_full: self.mempool.rejected_full(),
            rejected_rate_limited: self.mempool.rejected_rate_limited(),
            forwarded: self.mempool.forwarded(),
            pending: usize_gauge(self.mempool.len()),
            in_flight: self
                .own_block_txs
                .values()
                .map(|tags| usize_gauge(tags.len()))
                .sum(),
            own_committed: self.own_committed_txs,
            duplicate_committed: self.duplicate_committed,
            peak_occupancy_txs: usize_gauge(self.mempool.peak_txs()),
            peak_occupancy_bytes: usize_gauge(self.mempool.peak_bytes()),
            capacity_txs: usize_gauge(self.config.mempool.capacity_txs),
            capacity_bytes: usize_gauge(self.config.mempool.capacity_bytes),
        }
    }

    /// A point-in-time accounting of the client-ingress subsystem:
    /// receipts emitted per batch received, commit notices against opened
    /// notes, and forwarding counters. The `receipt-integrity` scenario
    /// oracle holds every correct validator to
    /// [`IngressReport::violations`] being empty.
    pub fn ingress_report(&self) -> IngressReport {
        IngressReport {
            forwarded: self.mempool.forwarded(),
            rate_limited: self.mempool.rejected_rate_limited(),
            ..self.ingress_counters
        }
    }

    /// The committed leader sequence so far (`None` entries are skipped
    /// slots). Any two honest validators' logs must be prefix-consistent —
    /// the safety property of Lemmas 5–7.
    pub fn commit_log(&self) -> &[Option<BlockRef>] {
        &self.commit_log
    }

    /// Committed leader slots so far.
    pub fn committed_slots(&self) -> u64 {
        self.committed_slots
    }

    /// Skipped leader slots so far.
    pub fn skipped_slots(&self) -> u64 {
        self.skipped_slots
    }

    /// Blocks linearized into the total order so far.
    pub fn sequenced_blocks(&self) -> u64 {
        self.sequenced_blocks
    }

    /// Transactions committed (across all authors) so far.
    pub fn committed_transactions(&self) -> u64 {
        self.committed_transactions
    }

    /// Full block verifications performed so far (verified-set cache
    /// misses). A block arriving through several admission paths counts
    /// once.
    pub fn signature_checks(&self) -> u64 {
        self.signature_checks
    }

    /// The execution state root after every sub-DAG committed so far. Two
    /// correct validators with equal commit logs report equal roots — the
    /// `state-root-agreement` oracle's invariant.
    pub fn state_root(&self) -> StateRoot {
        self.execution.state_root()
    }

    /// The execution state machine (read-only).
    pub fn execution(&self) -> &dyn ExecutionState {
        self.execution.as_ref()
    }

    /// The highest checkpoint position this engine has both a quorum of
    /// matching attestations and archived snapshots for — what it serves
    /// to state-syncing peers.
    pub fn latest_certified_checkpoint(&self) -> Option<u64> {
        self.latest_certified
    }

    /// The engine's own latest signed (or adopted) checkpoint, if any.
    pub fn latest_checkpoint(&self) -> Option<&Checkpoint> {
        self.checkpoint_archive
            .last_key_value()
            .map(|(_, (checkpoint, _, _))| checkpoint)
    }

    /// The sequence position of `commit_log()[0]`: zero normally, the
    /// checkpoint position after a state-sync adoption (the log then
    /// covers only post-checkpoint decisions).
    pub fn commit_log_base(&self) -> u64 {
        self.commit_log_base
    }

    /// Current size of the committed-digest exactly-once ledger (bounded
    /// by frontier GC when `gc_depth` is set; see `tests/engine_proptest`).
    pub fn committed_digest_ledger_len(&self) -> usize {
        self.committed_tx_digests.len()
    }

    // ------------------------------------------------------------------
    // Internals.

    /// Verifies `block` unless a byte-identical one (same content digest)
    /// already passed. A block can arrive through several admission paths —
    /// broadcast, a sync reply, a certified proposal, WAL recovery — and
    /// each used to pay the full signature + coin-share check; now the
    /// first success is cached and later arrivals hit the digest set.
    fn check_block(&mut self, block: &Block) -> bool {
        let digest = block.digest();
        if self
            .verified_blocks
            .get(&block.round())
            .is_some_and(|digests| digests.contains(&digest))
        {
            return true;
        }
        self.signature_checks += 1;
        if block.verify(&self.committee).is_err() {
            return false;
        }
        self.verified_blocks
            .entry(block.round())
            .or_default()
            .insert(digest);
        true
    }

    /// Records that `block` passed an external verify stage (the caller's
    /// [`Verified`] witness is the promise).
    fn mark_verified(&mut self, block: &Block) {
        self.verified_blocks
            .entry(block.round())
            .or_default()
            .insert(block.digest());
    }

    /// Validates and inserts a block, driving the synchronizer on gaps.
    fn accept_block(&mut self, block: Arc<Block>, from: usize, outputs: &mut Vec<Output>) {
        if !self.check_block(&block) {
            return; // invalid blocks are dropped (paper: discarded)
        }
        // Persist before acting: recovery must see everything acted on.
        outputs.push(Output::Persist(WalRecord::Block(block.clone())));
        match self.store.insert(block) {
            Ok(InsertResult::Inserted(admitted)) => {
                for reference in admitted {
                    self.note_admitted(reference);
                }
                self.harvest_evidence(outputs);
            }
            Ok(InsertResult::Pending(missing)) => {
                outputs.push(Output::SendTo(from, Envelope::Request(missing)));
            }
            Ok(InsertResult::Duplicate) | Ok(InsertResult::BelowGcFloor) => {}
            Err(_) => {}
        }
    }

    /// Certified pipeline: counts an acknowledgement of an own proposal
    /// and forms the certificate at quorum.
    fn on_ack(
        &mut self,
        from: usize,
        reference: BlockRef,
        voter: AuthorityIndex,
        outputs: &mut Vec<Output>,
    ) {
        if reference.author != self.config.authority || self.certified_own.contains(&reference) {
            return;
        }
        let votes = self.ack_votes.entry(reference).or_default();
        votes.insert(voter);
        if votes.len() < self.committee.quorum_threshold() {
            return;
        }
        let signatures = votes.len();
        self.certified_own.insert(reference);
        let certificate = Envelope::Certificate {
            reference,
            signatures,
        };
        let mut strategy = self.strategy.take().expect("strategy present");
        let routes = strategy.route_certificate(certificate, reference);
        self.strategy = Some(strategy);
        self.apply_routes(routes, outputs);
        // Apply the certificate locally.
        if let Some(block) = self.pending_proposals.remove(&reference) {
            self.accept_block(block, from, outputs);
        }
    }

    /// Collects proofs the store emitted at admission, convicting locally
    /// and gossiping each *new* conviction once.
    fn harvest_evidence(&mut self, outputs: &mut Vec<Output>) {
        for proof in self.store.take_equivocation_evidence() {
            self.ingest_evidence(proof, outputs);
        }
    }

    /// Convicts through the evidence pool; first-time convictions are
    /// persisted, re-broadcast (flood-once gossip), and surfaced to the
    /// driver. Invalid proofs from untrusted peers are dropped.
    fn ingest_evidence(&mut self, proof: EquivocationProof, outputs: &mut Vec<Output>) {
        if self.evidence.submit(proof.clone()) == Ok(true) {
            outputs.push(Output::Persist(WalRecord::Evidence(proof.clone())));
            outputs.push(Output::Broadcast(Envelope::Evidence(proof.clone())));
            outputs.push(Output::Convicted(proof));
        }
    }

    // ------------------------------------------------------------------
    // Checkpoints and state-sync.

    /// Collects a verified peer attestation and re-checks certification.
    /// Invalid signatures are dropped; a second (conflicting) attestation
    /// from the same authority at the same position is ignored —
    /// first-write-wins keeps quorum counting per-authority, and `f`
    /// double-signers can never complete two conflicting quorums.
    fn ingest_checkpoint(&mut self, checkpoint: Checkpoint) {
        if checkpoint.verify(&self.committee).is_err() {
            return;
        }
        // Positions already pruned (older than anything retained) are not
        // worth collecting for.
        if let Some((&oldest, _)) = self.checkpoint_archive.first_key_value() {
            if checkpoint.position() < oldest {
                return;
            }
        }
        self.record_attestation(checkpoint);
        self.refresh_certification();
    }

    /// First-write-wins collection of a verified attestation: the first
    /// checkpoint an authority signs for a position is the one counted.
    fn record_attestation(&mut self, checkpoint: Checkpoint) {
        let committee_size = self.committee.size();
        let votes = self
            .peer_checkpoints
            .entry(checkpoint.position())
            .or_insert_with(|| CommitteeMap::new(committee_size));
        let authority = checkpoint.authority();
        if !votes.contains_key(authority) {
            votes.insert(authority, checkpoint);
        }
    }

    /// Recomputes the latest certified position: the highest archived
    /// position where a quorum of distinct authorities attests the same
    /// `(state_root, resume_digest)` as the archived checkpoint.
    fn refresh_certification(&mut self) {
        let quorum = self.committee.quorum_threshold();
        let certified = self
            .checkpoint_archive
            .iter()
            .rev()
            .find(|(position, (own, _, _))| {
                self.peer_checkpoints.get(*position).is_some_and(|votes| {
                    votes.values().filter(|vote| vote.attests_same(own)).count() >= quorum
                })
            })
            .map(|(&position, _)| position);
        if let Some(position) = certified {
            self.latest_certified =
                Some(self.latest_certified.map_or(position, |p| p.max(position)));
        }
        self.prune_checkpoints();
    }

    /// Bounds checkpoint memory: keep the latest certified position and at
    /// most [`CHECKPOINT_RETENTION`] of the newest positions.
    fn prune_checkpoints(&mut self) {
        while self.checkpoint_archive.len() > CHECKPOINT_RETENTION {
            let Some((&oldest, _)) = self.checkpoint_archive.first_key_value() else {
                break;
            };
            if Some(oldest) == self.latest_certified {
                break;
            }
            self.checkpoint_archive.remove(&oldest);
        }
        let floor = self
            .checkpoint_archive
            .first_key_value()
            .map(|(&position, _)| position)
            .unwrap_or(0);
        self.peer_checkpoints = self.peer_checkpoints.split_off(&floor);
    }

    /// Builds the state-sync payload for the latest certified checkpoint:
    /// the matching attestations (authority order — deterministic) plus
    /// the archived snapshots.
    fn checkpoint_response(&self) -> Option<Envelope> {
        let position = self.latest_certified?;
        let (own, execution, resume) = self.checkpoint_archive.get(&position)?;
        let votes = self.peer_checkpoints.get(&position)?;
        let checkpoints: Vec<Checkpoint> = votes
            .values()
            .filter(|vote| vote.attests_same(own))
            .cloned()
            .collect();
        if checkpoints.len() < self.committee.quorum_threshold() {
            return None;
        }
        Some(Envelope::CheckpointResponse {
            checkpoints,
            execution: execution.clone(),
            resume: resume.clone(),
        })
    }

    /// Verifies and adopts a state-sync payload: quorum of matching valid
    /// attestations, snapshots hashing to the certified roots, and a
    /// position strictly ahead of the local sequence. On success the
    /// execution and sequencer state jump to the cut, the store is
    /// compacted below its floor, and the checkpoint is persisted so a
    /// later restart recovers from it instead of genesis.
    fn adopt_checkpoint(
        &mut self,
        checkpoints: Vec<Checkpoint>,
        execution: Vec<u8>,
        resume: Vec<u8>,
        outputs: &mut Vec<Output>,
    ) {
        let Some(first) = checkpoints.first().cloned() else {
            return;
        };
        if first.position() <= self.sequencer.sequenced_slots() {
            return; // not ahead of us — nothing to adopt
        }
        if !checkpoints.iter().all(|c| c.attests_same(&first)) {
            return;
        }
        if checkpoints
            .iter()
            .any(|c| c.verify(&self.committee).is_err())
        {
            return;
        }
        let authorities: AuthoritySet = checkpoints.iter().map(Checkpoint::authority).collect();
        if authorities.len() < self.committee.quorum_threshold() {
            return;
        }
        if blake2b_256(&execution) != first.state_root().digest()
            || blake2b_256(&resume) != first.resume_digest()
        {
            return;
        }
        let Ok(snapshot) = SequencerSnapshot::from_bytes_exact(&resume) else {
            return;
        };
        if snapshot.position != first.position() {
            return;
        }
        if !self.install_checkpoint(&first, &execution, &snapshot) {
            return;
        }
        // Collect the quorum so this validator can serve the same payload.
        for checkpoint in checkpoints {
            self.record_attestation(checkpoint);
        }
        self.checkpoint_archive.insert(
            first.position(),
            (first.clone(), execution.clone(), resume.clone()),
        );
        self.refresh_certification();
        outputs.push(Output::Persist(WalRecord::Checkpoint {
            checkpoint: first,
            execution,
            resume,
        }));
    }

    /// Jumps the execution and sequencer state to a verified cut (shared
    /// by state-sync adoption and WAL recovery). The snapshots must
    /// already hash to the checkpoint's roots.
    fn install_checkpoint(
        &mut self,
        checkpoint: &Checkpoint,
        execution: &[u8],
        snapshot: &SequencerSnapshot,
    ) -> bool {
        if self.execution.restore(execution).is_err() {
            return false;
        }
        if self.sequencer.restore(snapshot).is_err() {
            return false;
        }
        self.last_committed_leader = checkpoint.leader();
        self.commit_log_base = checkpoint.position();
        self.commit_log.clear();
        // Everything below the snapshot's floor is outside any future
        // sub-DAG: compact it away.
        if let Some(depth) = self.config.gc_depth {
            let floor = snapshot.next_round.saturating_sub(depth);
            if floor > 0 {
                self.store.compact(floor);
                self.unreferenced
                    .retain(|reference| reference.round >= floor);
                self.verified_blocks = self.verified_blocks.split_off(&floor);
                self.prune_digest_ledger(floor);
            }
        }
        true
    }

    /// Restores a persisted checkpoint at recovery (the WAL replay path):
    /// snapshots are re-hashed against the signed roots, then installed if
    /// they advance the local sequence. No quorum is required — the record
    /// came from this validator's own durable log. Returns whether the
    /// checkpoint was installed.
    pub fn restore_checkpoint(
        &mut self,
        checkpoint: Checkpoint,
        execution: Vec<u8>,
        resume: Vec<u8>,
    ) -> bool {
        if blake2b_256(&execution) != checkpoint.state_root().digest()
            || blake2b_256(&resume) != checkpoint.resume_digest()
        {
            return false;
        }
        let Ok(snapshot) = SequencerSnapshot::from_bytes_exact(&resume) else {
            return false;
        };
        if snapshot.position != checkpoint.position()
            || checkpoint.position() <= self.sequencer.sequenced_slots()
        {
            return false;
        }
        if !self.install_checkpoint(&checkpoint, &execution, &snapshot) {
            return false;
        }
        self.checkpoint_archive
            .insert(checkpoint.position(), (checkpoint, execution, resume));
        self.prune_checkpoints();
        true
    }

    /// Signs, persists, broadcasts, and archives the checkpoint for a
    /// boundary the sequencer just crossed. Called from `commit` with the
    /// execution state exactly at the boundary.
    fn emit_checkpoint(&mut self, snapshot: SequencerSnapshot, outputs: &mut Vec<Output>) {
        let authority = self.config.authority;
        let state_root = self.execution.state_root();
        let execution = self.execution.snapshot();
        let resume = snapshot.to_bytes_vec();
        debug_assert_eq!(blake2b_256(&resume), snapshot.digest());
        let checkpoint = Checkpoint::sign(
            authority,
            snapshot.position,
            self.last_committed_leader,
            state_root,
            snapshot.digest(),
            self.config.setup.keypair(authority),
        );
        self.checkpoint_archive.insert(
            snapshot.position,
            (checkpoint.clone(), execution.clone(), resume.clone()),
        );
        self.record_attestation(checkpoint.clone());
        self.refresh_certification();
        // Durability before dissemination, like blocks and evidence.
        outputs.push(Output::Persist(WalRecord::Checkpoint {
            checkpoint: checkpoint.clone(),
            execution,
            resume,
        }));
        outputs.push(Output::Broadcast(Envelope::Checkpoint(checkpoint.clone())));
        outputs.push(Output::CheckpointProduced(checkpoint));
    }

    /// Drops digest-ledger entries for own blocks below the GC floor.
    fn prune_digest_ledger(&mut self, floor: Round) {
        let keep = self.committed_digests_by_round.split_off(&floor);
        for digests in self.committed_digests_by_round.values() {
            for digest in digests {
                self.committed_tx_digests.remove(digest);
            }
        }
        self.committed_digests_by_round = keep;
    }

    /// Bookkeeping for a block that joined the DAG: maintain the
    /// unreferenced-tips set.
    fn note_admitted(&mut self, reference: BlockRef) {
        let parents: Vec<BlockRef> = self
            .store
            .get(&reference)
            .map(|block| block.parents().to_vec())
            .unwrap_or_default();
        for parent in parents {
            self.unreferenced.remove(&parent);
        }
        self.unreferenced.insert(reference);
    }

    fn insert_own(&mut self, block: Arc<Block>) {
        if let Ok(InsertResult::Inserted(admitted)) = self.store.insert(block) {
            for reference in admitted {
                self.note_admitted(reference);
            }
        }
    }

    /// Schedules the forwarding timer for the oldest pending forwardable
    /// transaction (no-op when forwarding is disabled or nothing is
    /// pending).
    fn arm_forward_timer(&mut self, outputs: &mut Vec<Output>) {
        let Some(age) = self.config.ingress.forward_age else {
            return;
        };
        if let Some(oldest) = self.mempool.oldest_enqueued() {
            outputs.push(Output::WakeAt(oldest.saturating_add(age)));
        }
    }

    /// Moves transactions that sat unproposed past the configured age to
    /// a peer's pool ([`Envelope::TxForward`]): pop from pending (digests
    /// stay in the dedup set), remember each digest so the client's
    /// commit note can close when *any* sequenced block carries it, and
    /// rotate the target peer (skipping self and convicted authorities).
    /// One hop, no retry: exactly one pool owns a transaction at a time,
    /// which is what keeps the global commit count at one.
    fn forward_aged(&mut self, outputs: &mut Vec<Output>) {
        let Some(age) = self.config.ingress.forward_age else {
            return;
        };
        let cutoff = self.now.saturating_sub(age);
        if self.mempool.oldest_enqueued().is_some_and(|t| t <= cutoff) {
            if let Some(peer) = self.next_forward_peer() {
                let aged = self
                    .mempool
                    .take_aged(cutoff, self.config.ingress.forward_max);
                let mut transactions = Vec::with_capacity(aged.len());
                for (transaction, tag, client) in aged {
                    self.forwarded_out
                        .insert(transaction.digest(), (tag, client));
                    transactions.push(transaction);
                }
                if !transactions.is_empty() {
                    outputs.push(Output::SendTo(peer, Envelope::TxForward(transactions)));
                }
            }
        }
        self.arm_forward_timer(outputs);
    }

    /// The next forwarding target: round-robin over the committee,
    /// skipping this validator and convicted equivocators. `None` only in
    /// a degenerate single-validator committee.
    fn next_forward_peer(&mut self) -> Option<usize> {
        let n = self.committee.size();
        let me = self.config.authority.as_usize();
        for _ in 0..n {
            let candidate = self.forward_cursor % n;
            self.forward_cursor = self.forward_cursor.wrapping_add(1);
            if candidate != me && !self.evidence.is_convicted(AuthorityIndex(candidate as u32)) {
                return Some(candidate);
            }
        }
        None
    }

    /// Produces blocks while the previous round holds a quorum and the
    /// pacing gates (inclusion wait, round interval) are open; releases
    /// paced messages that came due.
    fn advance(&mut self, outputs: &mut Vec<Output>) {
        // Release deliberately-delayed messages that have come due
        // (slow-proposer pacing), and re-arm the wake-up for the rest.
        while self
            .pending_out
            .front()
            .is_some_and(|&(release, _)| release <= self.now)
        {
            let (_, envelope) = self.pending_out.pop_front().expect("checked front");
            outputs.push(Output::Broadcast(envelope));
        }
        if let Some(&(release, _)) = self.pending_out.front() {
            outputs.push(Output::WakeAt(release));
        }
        loop {
            let next = self.round + 1;
            if self.config.halt_from_round.is_some_and(|halt| next >= halt) {
                break;
            }
            let quorum = self.committee.quorum_threshold();
            let present = self.store.authorities_at_round(self.round).len();
            if present < quorum {
                self.quorum_since = None;
                break;
            }
            // For certified protocols the own previous block must itself be
            // certified (in store) before extending it; after recovery the
            // own block may also still be pending missing ancestry.
            if self.round > 0
                && self
                    .store
                    .blocks_in_slot(Slot::new(self.round, self.config.authority))
                    .is_empty()
            {
                break;
            }
            // Round pacing (the node's localhost throttle).
            if self.config.min_round_interval > 0 {
                if let Some(last) = self.last_production {
                    let ready_at = last + self.config.min_round_interval;
                    if self.now < ready_at {
                        outputs.push(Output::WakeAt(ready_at));
                        break;
                    }
                }
            }
            // Post-quorum inclusion wait — skipped once every validator's
            // block is already here (nothing left to wait for).
            if present < self.committee.size() && self.config.inclusion_wait > 0 {
                let since = *self.quorum_since.get_or_insert(self.now);
                let ready_at = since + self.config.inclusion_wait;
                if self.now < ready_at {
                    outputs.push(Output::WakeAt(ready_at));
                    break;
                }
            }
            self.quorum_since = None;
            self.produce(next, outputs);
            self.round = next;
            self.last_production = Some(self.now);
        }
    }

    /// Builds and disseminates the block for `round` through the strategy.
    fn produce(&mut self, round: Round, outputs: &mut Vec<Output>) {
        // Parents: own previous block first, then every block of the
        // previous round, then older unreferenced tips (straggler
        // support). Blocks authored by convicted equivocators are shunned
        // (beyond the mandatory own-chain link): referencing a proven liar
        // only lends its forks weight. One exception keeps blocks valid —
        // the parent list must still span a quorum of previous-round
        // authors (the block-validity rule every peer checks), so when the
        // only quorum available runs through convicted authors, just
        // enough of their blocks are re-admitted. Without the floor the
        // produced block would be dropped by every peer and the DAG would
        // stall the moment a conviction lands mid-outage.
        let authority = self.config.authority;
        let own_previous = self
            .store
            .blocks_in_slot(Slot::new(round - 1, authority))
            .first()
            .map(|block| block.reference())
            .expect("own chain extends round by round");
        let mut parents = vec![own_previous];
        let mut seen: HashSet<BlockRef> = parents.iter().copied().collect();
        let mut previous_round_authors = AuthoritySet::new();
        previous_round_authors.insert(authority);
        let mut shunned: Vec<BlockRef> = Vec::new();
        for block in self.store.blocks_at_round(round - 1) {
            let reference = block.reference();
            if reference.author != authority && self.evidence.is_convicted(reference.author) {
                shunned.push(reference);
                continue;
            }
            if seen.insert(reference) {
                parents.push(reference);
                previous_round_authors.insert(reference.author);
            }
        }
        let quorum = self.committee.quorum_threshold();
        for reference in shunned {
            if previous_round_authors.len() >= quorum {
                break;
            }
            if previous_round_authors.insert(reference.author) {
                seen.insert(reference);
                parents.push(reference);
            }
        }
        for &reference in &self.unreferenced {
            if reference.author != authority && self.evidence.is_convicted(reference.author) {
                continue;
            }
            if reference.round < round - 1 && seen.insert(reference) {
                parents.push(reference);
            }
        }

        // Pull the next budgeted payload from the mempool (FIFO, bounded
        // in transactions and bytes).
        let (transactions, tags) = self.mempool.next_payload();

        let mut strategy = self.strategy.take().expect("strategy present");
        let mut ctx = ProposeCtx {
            engine: self,
            round,
            parents,
            transactions,
            tags,
            routes: Vec::new(),
            persists: Vec::new(),
        };
        strategy.propose(&mut ctx);
        let ProposeCtx {
            routes, persists, ..
        } = ctx;
        self.strategy = Some(strategy);
        // Durability before dissemination (crash recovery resumes from the
        // produced block, preventing accidental equivocation).
        for record in persists {
            outputs.push(Output::Persist(record));
        }
        self.apply_routes(routes, outputs);
        // Own inserts can complete a buffered conflicting pair through the
        // waiter chain; collect whatever the store emitted.
        self.harvest_evidence(outputs);
    }

    fn apply_routes(&mut self, routes: Vec<Route>, outputs: &mut Vec<Output>) {
        for route in routes {
            match route {
                Route::Broadcast(envelope) => outputs.push(Output::Broadcast(envelope)),
                Route::Send(peer, envelope) => outputs.push(Output::SendTo(peer, envelope)),
                Route::Delay(release, envelope) => {
                    self.pending_out.push_back((release, envelope));
                    outputs.push(Output::WakeAt(release));
                }
            }
        }
    }

    /// Runs the commit rule, emitting sub-DAGs and own-transaction tags,
    /// folding every commit into the execution state, signing checkpoints
    /// at boundary crossings, then compacting the store once the GC floor
    /// moved far enough.
    /// Decrements the commit note for `(tag, client)`; a note reaching
    /// zero closes and its tag joins the client's `Committed` receipt.
    fn close_note(
        notes: &mut BTreeMap<(u64, usize), u64>,
        tag: u64,
        client: usize,
        closed: &mut BTreeMap<usize, Vec<u64>>,
    ) {
        if let Some(remaining) = notes.get_mut(&(tag, client)) {
            *remaining = remaining.saturating_sub(1);
            if *remaining == 0 {
                notes.remove(&(tag, client));
                closed.entry(client).or_default().push(tag);
            }
        }
    }

    fn commit(&mut self, outputs: &mut Vec<Output>) {
        let decisions = self.sequencer.try_commit(&self.store);
        // Commit notes closed by this sweep, per client (BTreeMap: the
        // receipt emission order is deterministic).
        let mut closed: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        // Boundary snapshots captured during try_commit, oldest first; the
        // snapshot at position `p` is emitted after the decision at
        // `p − 1` has been executed, so the signed state root describes
        // exactly the cut the snapshot does.
        let mut boundaries = self
            .sequencer
            .take_boundary_snapshots()
            .into_iter()
            .peekable();
        for decision in decisions {
            let position = decision.position();
            match decision {
                CommitDecision::Skip(..) => {
                    self.skipped_slots += 1;
                    self.commit_log.push(None);
                }
                CommitDecision::Commit(sub_dag) => {
                    self.commit_log.push(Some(sub_dag.leader));
                    self.last_committed_leader = sub_dag.leader;
                    self.committed_slots += 1;
                    self.sequenced_blocks += usize_gauge(sub_dag.blocks.len());
                    self.execution.apply(&sub_dag);
                    // Execution is synchronous inside commit(): the honest
                    // zero keeps the stage populated for the wiring day it
                    // moves off-path.
                    self.telemetry.record_stage(Stage::Executed, 0);
                    let mut tags = Vec::new();
                    for block in &sub_dag.blocks {
                        self.committed_transactions += usize_gauge(block.transactions().len());
                        // Transactions this validator forwarded commit in
                        // *other* authors' blocks; spot them by digest to
                        // close their batches' commit notes. Gated on the
                        // map being non-empty — the digest per committed
                        // transaction is only paid when forwarding is live.
                        if !self.forwarded_out.is_empty() {
                            for transaction in block.transactions() {
                                if let Some((tag, client)) =
                                    self.forwarded_out.remove(&transaction.digest())
                                {
                                    self.ingress_counters.forwarded_committed += 1;
                                    Self::close_note(
                                        &mut self.pending_commit_notes,
                                        tag,
                                        client,
                                        &mut closed,
                                    );
                                }
                            }
                        }
                        if block.author() == self.config.authority {
                            if self.config.track_tx_integrity {
                                for transaction in block.transactions() {
                                    if self.committed_tx_digests.insert(transaction.digest()) {
                                        self.committed_digests_by_round
                                            .entry(block.round())
                                            .or_default()
                                            .push(transaction.digest());
                                    } else {
                                        self.duplicate_committed += 1;
                                    }
                                }
                            }
                            if let Some(mine) = self.own_block_txs.remove(&block.reference()) {
                                for &(tag, client) in &mine {
                                    Self::close_note(
                                        &mut self.pending_commit_notes,
                                        tag,
                                        client,
                                        &mut closed,
                                    );
                                }
                                tags.extend(mine.iter().map(|&(tag, _)| tag));
                            }
                        }
                    }
                    self.own_committed_txs += usize_gauge(tags.len());
                    outputs.push(Output::Committed(sub_dag));
                    if !tags.is_empty() {
                        // Tags are submission times (engine clock), so the
                        // delta is the submit→linearize latency.
                        for &tag in &tags {
                            self.telemetry
                                .record_stage(Stage::Sequenced, self.now.saturating_sub(tag));
                        }
                        outputs.push(Output::TxsCommitted(tags));
                    }
                }
            }
            while boundaries
                .peek()
                .is_some_and(|snapshot| snapshot.position.checked_sub(1) == Some(position))
            {
                let snapshot = boundaries.next().expect("peeked");
                self.emit_checkpoint(snapshot, outputs);
            }
        }
        debug_assert!(boundaries.peek().is_none(), "unpaired boundary snapshot");
        // Deliver the commit notifications closed by this sweep, chunked
        // under the wire frame's tag bound.
        for (client, tags) in closed {
            self.ingress_counters.commit_notices += usize_gauge(tags.len());
            for chunk in tags.chunks(mahimahi_types::MAX_RECEIPT_TAGS) {
                // The receipt leaves with this output batch; the driver owns
                // any further queueing, so the engine's share is zero.
                self.telemetry.record_stage(Stage::ReceiptSent, 0);
                outputs.push(Output::TxReceipt {
                    peer: client,
                    receipt: TxReceipt::Committed {
                        tags: chunk.to_vec(),
                    },
                });
            }
        }
        // Retention sweep for commit notes and forwarded digests: a batch
        // whose transactions can never all commit here (e.g. a forwarded
        // transaction dropped by a crashing peer) must not pin its note
        // forever. Tags are engine times, so age prunes from the front.
        if self.now.saturating_sub(self.last_note_gc) >= NOTE_RETENTION / 10 {
            self.last_note_gc = self.now;
            let floor = self.now.saturating_sub(NOTE_RETENTION);
            if floor > 0 {
                self.pending_commit_notes = self.pending_commit_notes.split_off(&(floor, 0));
                self.forwarded_out.retain(|_, &mut (tag, _)| tag >= floor);
            }
        }
        // Periodic garbage collection once the frontier moved far enough
        // past the last cutoff.
        if self.config.gc_depth.is_some() {
            let floor = self.sequencer.gc_floor();
            if floor >= self.store.gc_cutoff() + 64 {
                self.store.compact(floor);
                self.unreferenced
                    .retain(|reference| reference.round >= floor);
                self.verified_blocks = self.verified_blocks.split_off(&floor);
                self.prune_digest_ledger(floor);
            }
        }
    }
}

/// Checked `usize → u64` for the engine's gauges: lossless on every
/// supported platform, and a compile-visible assertion (instead of a
/// silent `as` wraparound) anywhere that ever stops being true.
fn usize_gauge(value: usize) -> u64 {
    u64::try_from(value).expect("usize gauge fits u64")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::committer::{Committer, CommitterOptions};
    use mahimahi_dag::DagBuilder;

    fn engine(authority: u32, certified: bool) -> ValidatorEngine {
        let setup = TestCommittee::new(4, 7);
        let committee = setup.committee().clone();
        let mut config = EngineConfig::new(AuthorityIndex(authority), setup);
        config.certified = certified;
        config.mempool = MempoolConfig::test(10_000, 100);
        ValidatorEngine::honest(
            config,
            Box::new(Committer::new(committee, CommitterOptions::mahi_mahi_5(2))),
        )
    }

    fn broadcast_blocks(outputs: &[Output]) -> Vec<Arc<Block>> {
        outputs
            .iter()
            .filter_map(|output| match output {
                Output::Broadcast(Envelope::Block(block)) => Some(block.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn produces_round_one_at_startup() {
        let mut engine = engine(0, false);
        let outputs = engine.handle(Input::TimerFired { now: 0 });
        assert_eq!(engine.round(), 1);
        let blocks = broadcast_blocks(&outputs);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].round(), 1);
        // Durability precedes dissemination.
        assert!(matches!(
            &outputs[..],
            [Output::Persist(WalRecord::Block(_)), Output::Broadcast(_)]
        ));
    }

    #[test]
    fn halted_engine_produces_nothing() {
        let setup = TestCommittee::new(4, 7);
        let committee = setup.committee().clone();
        let mut config = EngineConfig::new(AuthorityIndex(0), setup);
        config.halt_from_round = Some(0);
        let mut engine = ValidatorEngine::honest(
            config,
            Box::new(Committer::new(committee, CommitterOptions::default())),
        );
        assert!(engine.handle(Input::TimerFired { now: 0 }).is_empty());
        assert_eq!(engine.round(), 0);
    }

    #[test]
    fn redundant_arrivals_verify_signatures_at_most_once() {
        let mut engine = engine(0, false);
        let mut dag = DagBuilder::new(TestCommittee::new(4, 7));
        dag.add_full_rounds(1);
        let block = dag
            .store()
            .iter()
            .find(|block| block.round() == 1 && block.author() == AuthorityIndex(1))
            .cloned()
            .unwrap();

        // First arrival (broadcast) pays the full verification...
        let before = engine.signature_checks();
        engine.handle(Input::BlockReceived {
            from: 1,
            block: block.clone(),
        });
        let after_first = engine.signature_checks();
        assert_eq!(after_first, before + 1);

        // ...the same block arriving again — re-broadcast or sync reply —
        // hits the digest-keyed verified set.
        engine.handle(Input::BlockReceived {
            from: 2,
            block: block.clone(),
        });
        engine.handle(Input::SyncReply {
            from: 3,
            blocks: vec![block.clone()],
        });
        assert_eq!(engine.signature_checks(), after_first);

        // A pre-verified input is never re-checked either.
        engine.handle_verified(mahimahi_types::Verified::vouch(Input::SyncReply {
            from: 2,
            blocks: vec![block.clone()],
        }));
        assert_eq!(engine.signature_checks(), after_first);

        // Failures are never cached: a tampered block (flipped parent
        // digest byte, signature now stale) re-verifies on every arrival.
        let mut bytes = block.to_bytes_vec();
        bytes[30] ^= 0xff;
        let tampered = Block::from_bytes_exact(&bytes).unwrap().into_arc();
        assert_ne!(tampered.digest(), block.digest());
        let before_tampered = engine.signature_checks();
        for _ in 0..2 {
            engine.handle(Input::BlockReceived {
                from: 1,
                block: tampered.clone(),
            });
        }
        assert_eq!(engine.signature_checks(), before_tampered + 2);
        assert!(!engine.store().contains(&tampered.reference()));
    }

    #[test]
    fn transactions_flow_into_blocks_with_tags_returned_at_commit() {
        let mut engines: Vec<ValidatorEngine> = (0..4).map(|a| engine(a, false)).collect();
        engines[0].handle(Input::TxSubmitted {
            transaction: Transaction::benchmark(9),
            tag: 555,
        });
        assert_eq!(engines[0].queued_transactions(), 1);
        // Flood-deliver every broadcast block (up to a round horizon) so
        // validator 0's round-1 block commits; the submission tag must come
        // back through TxsCommitted on engine 0.
        let mut tags = Vec::new();
        let mut inflight: VecDeque<(usize, Arc<Block>)> = VecDeque::new();
        for engine in engines.iter_mut() {
            let from = engine.authority().as_usize();
            let outputs = engine.handle(Input::TimerFired { now: 0 });
            inflight.extend(broadcast_blocks(&outputs).into_iter().map(|b| (from, b)));
        }
        while let Some((from, block)) = inflight.pop_front() {
            if block.round() > 12 {
                continue; // bound the lockstep flood
            }
            for (to, engine) in engines.iter_mut().enumerate() {
                if to == from {
                    continue;
                }
                let outputs = engine.handle(Input::BlockReceived {
                    from,
                    block: block.clone(),
                });
                if to == 0 {
                    for output in &outputs {
                        if let Output::TxsCommitted(mine) = output {
                            tags.extend(mine.iter().copied());
                        }
                    }
                }
                inflight.extend(broadcast_blocks(&outputs).into_iter().map(|b| (to, b)));
            }
        }
        assert_eq!(engines[0].queued_transactions(), 0, "transaction included");
        assert!(engines[0].committed_transactions() > 0);
        assert_eq!(tags, vec![555], "client tag returned exactly once");
        // The transaction pipeline conserved the submission: accepted 1,
        // committed 1, nothing pending or in flight, no duplicate commits.
        let integrity = engines[0].tx_integrity();
        assert_eq!(integrity.accepted, 1);
        assert_eq!(integrity.own_committed, 1);
        assert!(integrity.conserves_transactions(), "{integrity:?}");
        assert_eq!(integrity.duplicate_committed, 0);
        assert!(integrity.occupancy_bounded());
    }

    #[test]
    fn mempool_backpressure_surfaces_as_outputs() {
        let setup = TestCommittee::new(4, 7);
        let committee = setup.committee().clone();
        let mut config = EngineConfig::new(AuthorityIndex(0), setup);
        config.mempool = MempoolConfig::test(2, 100);
        let mut engine = ValidatorEngine::honest(
            config,
            Box::new(Committer::new(committee, CommitterOptions::mahi_mahi_5(2))),
        );
        // First two submissions are accepted silently.
        for id in 0..2 {
            assert!(engine
                .handle(Input::TxSubmitted {
                    transaction: Transaction::benchmark(id),
                    tag: id,
                })
                .is_empty());
        }
        // A digest resubmission is a Duplicate, a fresh one overflows.
        let outputs = engine.handle(Input::TxSubmitted {
            transaction: Transaction::benchmark(0),
            tag: 9,
        });
        assert!(matches!(
            &outputs[..],
            [Output::TxRejected {
                tag: 9,
                reason: SubmitResult::Duplicate
            }]
        ));
        let outputs = engine.handle(Input::TxSubmitted {
            transaction: Transaction::benchmark(2),
            tag: 10,
        });
        assert!(matches!(
            &outputs[..],
            [Output::TxRejected {
                tag: 10,
                reason: SubmitResult::Full
            }]
        ));
        let integrity = engine.tx_integrity();
        assert_eq!(integrity.accepted, 2);
        assert_eq!(integrity.rejected_duplicate, 1);
        assert_eq!(integrity.rejected_full, 1);
        assert_eq!(integrity.peak_occupancy_txs, 2);
    }

    #[test]
    fn wire_batches_enter_the_mempool_tagged_with_receive_time() {
        let mut engine = engine(0, false);
        engine.handle(Input::TimerFired { now: 42 });
        let outputs = engine.handle(Input::TxBatchReceived {
            from: 7,
            transactions: vec![Transaction::benchmark(1), Transaction::benchmark(2)],
        });
        assert!(matches!(
            &outputs[..],
            [Output::TxReceipt {
                peer: 7,
                receipt: TxReceipt::Admission { tag: 42, verdicts },
            }] if verdicts[..] == [TxVerdict::Accepted, TxVerdict::Accepted]
        ));
        assert_eq!(engine.queued_transactions(), 2);
        // A duplicate inside a later batch earns a Duplicate verdict under
        // the engine's receive time.
        let outputs = engine.handle(Input::TxBatchReceived {
            from: 7,
            transactions: vec![Transaction::benchmark(2)],
        });
        assert!(matches!(
            &outputs[..],
            [Output::TxReceipt {
                peer: 7,
                receipt: TxReceipt::Admission { tag: 42, verdicts },
            }] if verdicts[..] == [TxVerdict::Duplicate]
        ));
        // Exactly one admission receipt per batch; only the first batch
        // opened a commit note (the second accepted nothing).
        let report = engine.ingress_report();
        assert_eq!(report.batches_received, 2);
        assert_eq!(report.receipts_emitted, 2);
        assert_eq!(report.notes_opened, 1);
        assert!(report.violations().is_empty());
    }

    #[test]
    fn external_clients_pay_the_token_bucket_but_committee_peers_do_not() {
        let setup = TestCommittee::new(4, 7);
        let committee = setup.committee().clone();
        let mut config = EngineConfig::new(AuthorityIndex(0), setup);
        config.mempool = MempoolConfig::test(10_000, 100);
        config.ingress.rate_limit_per_client = 1;
        config.ingress.burst_per_client = 1;
        let mut engine = ValidatorEngine::honest(
            config,
            Box::new(Committer::new(committee, CommitterOptions::mahi_mahi_5(2))),
        );
        // An external client (id past the committee) gets one burst token;
        // the second transaction of the same instant is shed.
        let outputs = engine.handle(Input::TxBatchReceived {
            from: 9,
            transactions: vec![Transaction::benchmark(1), Transaction::benchmark(2)],
        });
        assert!(matches!(
            &outputs[..],
            [Output::TxReceipt {
                peer: 9,
                receipt: TxReceipt::Admission { verdicts, .. },
            }] if verdicts[..] == [TxVerdict::Accepted, TxVerdict::RateLimited]
        ));
        // Another client's bucket is independent...
        let outputs = engine.handle(Input::TxBatchReceived {
            from: 10,
            transactions: vec![Transaction::benchmark(3)],
        });
        assert!(matches!(
            &outputs[..],
            [Output::TxReceipt { receipt: TxReceipt::Admission { verdicts, .. }, .. }]
                if verdicts[..] == [TxVerdict::Accepted]
        ));
        // ...and committee peers are exempt entirely, whatever the volume.
        let outputs = engine.handle(Input::TxBatchReceived {
            from: 1,
            transactions: (10u64..20).map(Transaction::benchmark).collect(),
        });
        assert!(matches!(
            &outputs[..],
            [Output::TxReceipt { receipt: TxReceipt::Admission { verdicts, .. }, .. }]
                if verdicts.iter().all(|v| v.is_accepted())
        ));
        let integrity = engine.tx_integrity();
        assert_eq!(integrity.rejected_rate_limited, 1);
        assert_eq!(engine.ingress_report().rate_limited, 1);
        assert!(integrity.conserves_transactions(), "{integrity:?}");
    }

    #[test]
    fn aged_transactions_forward_and_commit_notes_close_remotely() {
        let setup = TestCommittee::new(4, 7);
        let mut engines: Vec<ValidatorEngine> = (0..4)
            .map(|a| {
                let committee = setup.committee().clone();
                let mut config = EngineConfig::new(AuthorityIndex(a), setup.clone());
                config.mempool = MempoolConfig::test(10_000, 100);
                config.ingress.forward_age = Some(1_000);
                if a == 0 {
                    // The withholding entry point: listens and sequences
                    // but never produces a block of its own.
                    config.halt_from_round = Some(1);
                }
                ValidatorEngine::honest(
                    config,
                    Box::new(Committer::new(committee, CommitterOptions::mahi_mahi_5(2))),
                )
            })
            .collect();

        // A client batch lands on the withholding validator: the wake-up
        // for the forwarding window precedes the admission receipt.
        let outputs = engines[0].handle(Input::TxBatchReceived {
            from: 9,
            transactions: vec![Transaction::benchmark(1)],
        });
        assert!(matches!(
            outputs[..],
            [Output::WakeAt(1_000), Output::TxReceipt { peer: 9, .. }]
        ));

        // Past the window the transaction moves to a peer's pool.
        let outputs = engines[0].handle(Input::TimerFired { now: 2_000 });
        let (peer, forward) = outputs
            .iter()
            .find_map(|output| match output {
                Output::SendTo(peer, envelope @ Envelope::TxForward(_)) => {
                    Some((*peer, envelope.clone()))
                }
                _ => None,
            })
            .expect("aged transaction forwards");
        let integrity = engines[0].tx_integrity();
        assert_eq!(integrity.forwarded, 1);
        assert!(integrity.conserves_transactions(), "{integrity:?}");
        engines[peer].handle(Input::from_envelope(0, forward));

        // Flood the DAG: validators 1..3 drive rounds (0 only listens).
        let mut receipts = Vec::new();
        let mut inflight: VecDeque<(usize, Envelope)> = VecDeque::new();
        for engine in engines.iter_mut() {
            let from = engine.authority().as_usize();
            for output in engine.handle(Input::TimerFired { now: 2_000 }) {
                if let Output::Broadcast(envelope) = output {
                    inflight.push_back((from, envelope));
                }
            }
        }
        while let Some((from, envelope)) = inflight.pop_front() {
            if let Envelope::Block(block) = &envelope {
                if block.round() > 14 {
                    continue;
                }
            }
            for (to, engine) in engines.iter_mut().enumerate() {
                if to == from {
                    continue;
                }
                for output in engine.handle(Input::from_envelope(from, envelope.clone())) {
                    match output {
                        Output::Broadcast(envelope) => inflight.push_back((to, envelope)),
                        Output::TxReceipt { peer, receipt } if to == 0 => {
                            receipts.push((peer, receipt));
                        }
                        _ => {}
                    }
                }
            }
        }
        // The withholding validator observed the forwarded transaction
        // commit in a peer's block and closed the client's note: the
        // Committed receipt carries the original batch tag.
        assert!(
            receipts.iter().any(|(peer, receipt)| *peer == 9
                && matches!(receipt, TxReceipt::Committed { tags } if tags[..] == [0])),
            "no commit notice for the forwarded batch: {receipts:?}"
        );
        let report = engines[0].ingress_report();
        assert_eq!(report.forwarded_committed, 1);
        assert_eq!(report.commit_notices, 1);
        assert!(report.violations().is_empty(), "{report:?}");
    }

    #[test]
    fn certified_engine_waits_for_certificate() {
        let mut engine = engine(0, true);
        let outputs = engine.handle(Input::TimerFired { now: 0 });
        let proposal = match &outputs[..] {
            [Output::Broadcast(Envelope::Proposal(block))] => block.clone(),
            other => panic!("expected proposal broadcast, got {other:?}"),
        };
        // Not in the DAG yet: the round counter advanced but the store has
        // no round-1 block until the certificate forms.
        assert_eq!(engine.store().blocks_at_round(1).len(), 0);
        let reference = proposal.reference();
        let more = engine.handle(Input::AckReceived {
            from: 1,
            reference,
            voter: AuthorityIndex(1),
        });
        assert!(more.is_empty());
        let more = engine.handle(Input::AckReceived {
            from: 2,
            reference,
            voter: AuthorityIndex(2),
        });
        assert!(more
            .iter()
            .any(|output| matches!(output, Output::Broadcast(Envelope::Certificate { .. }))));
        assert_eq!(engine.store().blocks_at_round(1).len(), 1);
    }

    #[test]
    fn uncertified_engine_drops_certified_pipeline_messages() {
        // A TCP peer can always put Proposal/Ack/Certificate frames on the
        // shared wire; an uncertified engine must not buffer, ack, or act
        // on them (unbounded pending_proposals / spoofed ack quorums).
        let mut engine = engine(0, false);
        engine.handle(Input::TimerFired { now: 0 });
        let own = engine.store().blocks_at_round(1)[0].clone();
        let reference = own.reference();
        assert!(engine
            .handle(Input::ProposalReceived {
                from: 1,
                block: own
            })
            .is_empty());
        assert!(engine
            .handle(Input::AckReceived {
                from: 1,
                reference,
                voter: AuthorityIndex(1),
            })
            .is_empty());
        assert!(engine
            .handle(Input::AckReceived {
                from: 2,
                reference,
                voter: AuthorityIndex(2),
            })
            .is_empty());
        assert!(engine
            .handle(Input::CertificateReceived {
                from: 1,
                reference,
                signatures: 3,
            })
            .is_empty());
    }

    #[test]
    fn missing_ancestry_triggers_synchronizer() {
        let setup = TestCommittee::new(4, 7);
        let mut dag = DagBuilder::new(setup);
        dag.add_full_round();
        let r2 = dag.add_full_round();
        let block = dag.store().get(&r2[1]).unwrap().clone();

        let mut engine = engine(0, false);
        let outputs = engine.handle(Input::BlockReceived { from: 1, block });
        assert!(outputs.iter().any(|output| matches!(output,
            Output::SendTo(1, Envelope::Request(references)) if !references.is_empty())));
    }

    #[test]
    fn sync_requests_answered_with_blocks_and_convictions() {
        let mut engine = engine(0, false);
        engine.handle(Input::TimerFired { now: 0 });
        let own = engine
            .store()
            .blocks_at_round(1)
            .first()
            .map(|block| block.reference())
            .unwrap();
        let outputs = engine.handle(Input::SyncRequest {
            from: 3,
            references: vec![own],
        });
        assert!(
            matches!(&outputs[..], [Output::SendTo(3, Envelope::Response(blocks))]
                if blocks.len() == 1)
        );
    }

    #[test]
    fn evidence_is_persisted_gossiped_and_surfaced_once() {
        let setup = TestCommittee::new(4, 7);
        let proof = conflicting_pair(&setup, 2);
        let mut engine = engine(0, false);
        // Produce round 1 first so the evidence handle emits nothing else.
        engine.handle(Input::TimerFired { now: 0 });
        let outputs = engine.handle(Input::EvidenceReceived {
            from: 1,
            proof: proof.clone(),
        });
        assert!(matches!(
            &outputs[..],
            [
                Output::Persist(WalRecord::Evidence(_)),
                Output::Broadcast(Envelope::Evidence(_)),
                Output::Convicted(_),
            ]
        ));
        assert_eq!(engine.convicted(), vec![AuthorityIndex(2)]);
        // A second proof against the same author is deduplicated silently.
        let again = engine.handle(Input::EvidenceReceived { from: 3, proof });
        assert!(again.is_empty());
    }

    fn conflicting_pair(setup: &TestCommittee, author: u32) -> EquivocationProof {
        EquivocationProof::synthetic(setup, AuthorityIndex(author))
    }

    #[test]
    fn convicted_authors_are_excluded_from_parent_selection() {
        // Validator 0 convicts authority 2, then sees all four round-1
        // blocks before producing round 2 (the inclusion wait holds
        // production open): the convicted author's block must be in the
        // store yet absent from the parent list.
        let setup = TestCommittee::new(4, 7);
        let committee = setup.committee().clone();
        let proof = conflicting_pair(&setup, 2);
        let mut config = EngineConfig::new(AuthorityIndex(0), setup.clone());
        config.inclusion_wait = 1_000;
        let mut engine = ValidatorEngine::honest(
            config,
            Box::new(Committer::new(committee, CommitterOptions::mahi_mahi_5(2))),
        );
        // Round 1 production happens before the conviction (genesis is
        // complete, so the wait does not apply).
        engine.handle(Input::TimerFired { now: 0 });
        engine.handle(Input::EvidenceReceived { from: 1, proof });
        assert_eq!(engine.convicted(), vec![AuthorityIndex(2)]);

        // Deliver the peers' round-1 blocks (including the culprit's).
        let mut dag = DagBuilder::new(setup.clone());
        let r1 = dag.add_full_round();
        let mut produced = Vec::new();
        for reference in &r1 {
            if reference.author == AuthorityIndex(0) {
                continue; // own round-1 block was produced locally
            }
            let block = dag.store().get(reference).unwrap().clone();
            let outputs = engine.handle(Input::BlockReceived {
                from: reference.author.as_usize(),
                block,
            });
            produced.extend(broadcast_blocks(&outputs));
        }
        // All four present: production fired without waiting further…
        assert_eq!(engine.round(), 2);
        assert_eq!(produced.len(), 1);
        let block = &produced[0];
        assert_eq!(block.round(), 2);
        // …with a quorum of honest parents and no reference to the
        // convicted equivocator.
        assert!(
            block
                .parents()
                .iter()
                .all(|parent| parent.author != AuthorityIndex(2)),
            "convicted author referenced: {:?}",
            block.parents()
        );
        assert_eq!(block.parents().len(), 3);
        assert!(block.verify(setup.committee()).is_ok());
        // The culprit's block is in the store (admission is unchanged —
        // only parent selection shuns it).
        assert_eq!(engine.store().blocks_at_round(1).len(), 4);
    }

    #[test]
    fn parent_quorum_floor_readmits_convicted_blocks_when_unavoidable() {
        // Only the convicted author and one honest peer are present at
        // round 1: shunning the culprit outright would make the produced
        // block invalid (parent quorum < 2f + 1) and stall the DAG, so
        // exactly enough convicted blocks are re-admitted.
        let setup = TestCommittee::new(4, 7);
        let committee = setup.committee().clone();
        let proof = conflicting_pair(&setup, 2);
        let mut engine = ValidatorEngine::honest(
            EngineConfig::new(AuthorityIndex(0), setup.clone()),
            Box::new(Committer::new(committee, CommitterOptions::mahi_mahi_5(2))),
        );
        engine.handle(Input::TimerFired { now: 0 });
        engine.handle(Input::EvidenceReceived { from: 1, proof });

        let mut dag = DagBuilder::new(setup.clone());
        let r1 = dag.add_full_round();
        let mut produced = Vec::new();
        for reference in &r1 {
            // Deliver only authorities 1 and 2 (2 is convicted): quorum
            // completes with the culprit as its third member.
            if !matches!(reference.author.0, 1 | 2) {
                continue;
            }
            let block = dag.store().get(reference).unwrap().clone();
            let outputs = engine.handle(Input::BlockReceived {
                from: reference.author.as_usize(),
                block,
            });
            produced.extend(broadcast_blocks(&outputs));
        }
        assert_eq!(engine.round(), 2, "the floor must keep the DAG live");
        assert_eq!(produced.len(), 1);
        let block = &produced[0];
        assert!(
            block
                .parents()
                .iter()
                .any(|parent| parent.author == AuthorityIndex(2)),
            "the validity floor re-admits the convicted parent"
        );
        assert!(block.verify(setup.committee()).is_ok());
    }

    #[test]
    fn restore_round_trips_blocks_and_evidence() {
        let setup = TestCommittee::new(4, 7);
        let proof = conflicting_pair(&setup, 3);
        let mut dag = DagBuilder::new(setup);
        dag.add_full_rounds(2);

        let mut engine = engine(0, false);
        for block in dag.store().iter() {
            if block.round() > 0 {
                engine.restore_block(block.clone());
            }
        }
        engine.restore_evidence(proof);
        assert_eq!(engine.round(), 2, "own produced round recovered");
        assert_eq!(engine.store().highest_round(), 2);
        assert_eq!(engine.convicted(), vec![AuthorityIndex(3)]);
    }

    #[test]
    fn wal_records_round_trip() {
        let setup = TestCommittee::new(4, 7);
        let block = Block::genesis(AuthorityIndex(1)).into_arc();
        let records = vec![
            WalRecord::Block(block.clone()),
            WalRecord::Evidence(conflicting_pair(&setup, 1)),
        ];
        for record in records {
            let bytes = record.to_bytes_vec();
            let decoded = WalRecord::from_bytes_exact(&bytes).unwrap();
            match (&record, &decoded) {
                (WalRecord::Block(a), WalRecord::Block(b)) => {
                    assert_eq!(a.reference(), b.reference());
                }
                (WalRecord::Evidence(a), WalRecord::Evidence(b)) => assert_eq!(a, b),
                _ => panic!("record kind changed in round trip"),
            }
        }
        assert!(WalRecord::from_bytes_exact(&[7]).is_err());
    }

    #[test]
    fn inclusion_wait_paces_production() {
        let setup = TestCommittee::new(4, 7);
        let committee = setup.committee().clone();
        let mut config = EngineConfig::new(AuthorityIndex(0), setup.clone());
        config.inclusion_wait = 1_000;
        let mut engine = ValidatorEngine::honest(
            config,
            Box::new(Committer::new(committee, CommitterOptions::mahi_mahi_5(2))),
        );
        // Genesis is complete (all four present): round 1 comes instantly.
        engine.handle(Input::TimerFired { now: 0 });
        assert_eq!(engine.round(), 1);
        // Deliver only a quorum (not all) of round-1 peers: the engine
        // must wait out the inclusion window before producing round 2.
        let mut dag = DagBuilder::new(setup);
        let r1 = dag.add_full_round();
        let mut outputs = Vec::new();
        for reference in r1.iter().filter(|r| r.author.0 != 0).take(2) {
            let block = dag.store().get(reference).unwrap().clone();
            outputs = engine.handle(Input::BlockReceived {
                from: reference.author.as_usize(),
                block,
            });
        }
        assert_eq!(engine.round(), 1, "must wait for the inclusion window");
        assert!(outputs
            .iter()
            .any(|output| matches!(output, Output::WakeAt(1_000))));
        let outputs = engine.handle(Input::TimerFired { now: 1_000 });
        assert_eq!(engine.round(), 2);
        assert_eq!(broadcast_blocks(&outputs).len(), 1);
    }

    fn engine_with_interval(authority: u32, interval: u64) -> ValidatorEngine {
        let setup = TestCommittee::new(4, 7);
        let committee = setup.committee().clone();
        let mut config = EngineConfig::new(AuthorityIndex(authority), setup);
        config.mempool = MempoolConfig::test(10_000, 100);
        config.checkpoint_interval = interval;
        ValidatorEngine::honest(
            config,
            Box::new(Committer::new(committee, CommitterOptions::mahi_mahi_5(2))),
        )
    }

    /// Flood-delivers every broadcast envelope (blocks, checkpoints,
    /// evidence) between the engines until quiescent, bounding block
    /// production at `round_horizon`. Returns every `CheckpointProduced`
    /// per engine, in order.
    fn flood(engines: &mut [ValidatorEngine], round_horizon: Round) -> Vec<Vec<Checkpoint>> {
        let mut produced: Vec<Vec<Checkpoint>> = vec![Vec::new(); engines.len()];
        let mut inflight: VecDeque<(usize, Envelope)> = VecDeque::new();
        for engine in engines.iter_mut() {
            let from = engine.authority().as_usize();
            let outputs = engine.handle(Input::TimerFired { now: 0 });
            for output in outputs {
                if let Output::Broadcast(envelope) = output {
                    inflight.push_back((from, envelope));
                }
            }
        }
        while let Some((from, envelope)) = inflight.pop_front() {
            if let Envelope::Block(block) = &envelope {
                if block.round() > round_horizon {
                    continue;
                }
            }
            for to in 0..engines.len() {
                if to == from {
                    continue;
                }
                let outputs = engines[to].handle(Input::from_envelope(from, envelope.clone()));
                for output in outputs {
                    match output {
                        Output::Broadcast(envelope) => inflight.push_back((to, envelope)),
                        Output::CheckpointProduced(checkpoint) => produced[to].push(checkpoint),
                        _ => {}
                    }
                }
            }
        }
        produced
    }

    #[test]
    fn checkpoints_are_emitted_certified_and_agree() {
        let setup = TestCommittee::new(4, 7);
        let mut engines: Vec<ValidatorEngine> =
            (0..4).map(|a| engine_with_interval(a, 4)).collect();
        let produced = flood(&mut engines, 12);

        // Every validator reached at least one boundary, every signature
        // verifies, and positions land exactly on multiples of the
        // interval.
        let mut by_position: HashMap<u64, Checkpoint> = HashMap::new();
        for (validator, checkpoints) in produced.iter().enumerate() {
            assert!(
                !checkpoints.is_empty(),
                "validator {validator} produced no checkpoint"
            );
            for checkpoint in checkpoints {
                assert_eq!(checkpoint.authority(), AuthorityIndex(validator as u32));
                assert_eq!(checkpoint.position() % 4, 0);
                assert!(checkpoint.verify(setup.committee()).is_ok());
                // Execution determinism: any two validators' checkpoints
                // at the same position attest the same cut and root.
                match by_position.get(&checkpoint.position()) {
                    Some(existing) => assert!(
                        existing.attests_same(checkpoint),
                        "diverging checkpoints at position {}",
                        checkpoint.position()
                    ),
                    None => {
                        by_position.insert(checkpoint.position(), checkpoint.clone());
                    }
                }
            }
        }
        // Gossiped attestations certified a quorum at every engine.
        for engine in &engines {
            assert!(
                engine.latest_certified_checkpoint().is_some(),
                "no certified checkpoint at {:?}",
                engine.authority()
            );
            assert_ne!(engine.state_root(), StateRoot::genesis());
        }
    }

    #[test]
    fn checkpoint_response_bootstraps_a_fresh_engine() {
        let mut engines: Vec<ValidatorEngine> =
            (0..4).map(|a| engine_with_interval(a, 4)).collect();
        flood(&mut engines, 12);
        let certified = engines[0]
            .latest_certified_checkpoint()
            .expect("flood certified a checkpoint");

        // A joiner asks; the synced engine answers with the certified cut
        // plus the quorum of attestations and both snapshots.
        let outputs = engines[0].handle(Input::CheckpointRequested { from: 3 });
        let response = outputs
            .iter()
            .find_map(|output| match output {
                Output::SendTo(3, envelope @ Envelope::CheckpointResponse { .. }) => {
                    Some(envelope.clone())
                }
                _ => None,
            })
            .expect("expected a checkpoint response");

        let mut joiner = engine_with_interval(3, 4);
        let outputs = joiner.handle(Input::from_envelope(0, response));
        assert!(
            outputs
                .iter()
                .any(|output| matches!(output, Output::Persist(WalRecord::Checkpoint { .. }))),
            "adoption must persist the checkpoint for crash recovery"
        );
        assert_eq!(joiner.commit_log_base(), certified);
        assert!(joiner.commit_log().is_empty(), "no replayed prefix");
        let checkpoint = joiner.latest_checkpoint().expect("adopted");
        assert_eq!(checkpoint.position(), certified);
        assert_eq!(joiner.state_root(), checkpoint.state_root());
    }

    #[test]
    fn checkpoint_adoption_rejects_tampered_or_underquorum_responses() {
        let mut engines: Vec<ValidatorEngine> =
            (0..4).map(|a| engine_with_interval(a, 4)).collect();
        flood(&mut engines, 12);
        let outputs = engines[0].handle(Input::CheckpointRequested { from: 3 });
        let (checkpoints, execution, resume) = outputs
            .iter()
            .find_map(|output| match output {
                Output::SendTo(
                    3,
                    Envelope::CheckpointResponse {
                        checkpoints,
                        execution,
                        resume,
                    },
                ) => Some((checkpoints.clone(), execution.clone(), resume.clone())),
                _ => None,
            })
            .expect("expected a checkpoint response");

        // Under-quorum: a single attestation must not be adopted.
        let mut joiner = engine_with_interval(3, 4);
        joiner.handle(Input::CheckpointSyncReceived {
            from: 0,
            checkpoints: checkpoints[..1].to_vec(),
            execution: execution.clone(),
            resume: resume.clone(),
        });
        assert!(joiner.latest_checkpoint().is_none());

        // Tampered execution snapshot: hash no longer matches the
        // quorum-certified root.
        let mut tampered = execution.clone();
        tampered[0] ^= 0xff;
        joiner.handle(Input::CheckpointSyncReceived {
            from: 0,
            checkpoints: checkpoints.clone(),
            execution: tampered,
            resume: resume.clone(),
        });
        assert!(joiner.latest_checkpoint().is_none());
        assert_eq!(joiner.commit_log_base(), 0);

        // The untampered response is adopted by the same engine.
        joiner.handle(Input::CheckpointSyncReceived {
            from: 0,
            checkpoints,
            execution,
            resume,
        });
        assert!(joiner.latest_checkpoint().is_some());
    }

    #[test]
    fn restore_checkpoint_round_trips_through_the_wal_record() {
        let mut engines: Vec<ValidatorEngine> =
            (0..4).map(|a| engine_with_interval(a, 4)).collect();
        flood(&mut engines, 12);
        let record = engines[0]
            .handle(Input::CheckpointRequested { from: 2 })
            .into_iter()
            .find_map(|output| match output {
                Output::SendTo(
                    2,
                    Envelope::CheckpointResponse {
                        checkpoints,
                        execution,
                        resume,
                    },
                ) => Some((checkpoints[0].clone(), execution, resume)),
                _ => None,
            })
            .expect("expected a checkpoint response");
        let (checkpoint, execution, resume) = record;

        // Own-WAL restore: no quorum needed, but the snapshots must hash
        // to the signed roots.
        let mut recovered = engine_with_interval(0, 4);
        assert!(recovered.restore_checkpoint(
            checkpoint.clone(),
            execution.clone(),
            resume.clone()
        ));
        assert_eq!(recovered.state_root(), checkpoint.state_root());
        assert_eq!(recovered.commit_log_base(), checkpoint.position());

        let mut fresh = engine_with_interval(0, 4);
        let mut bad = execution.clone();
        bad[0] ^= 0xff;
        assert!(!fresh.restore_checkpoint(checkpoint.clone(), bad, resume.clone()));
        let mut bad_resume = resume.clone();
        bad_resume[0] ^= 0xff;
        assert!(!fresh.restore_checkpoint(checkpoint, execution, bad_resume));
        assert_eq!(fresh.commit_log_base(), 0, "rejected restores are no-ops");
    }
}
