//! The Mahi-Mahi committer — the paper's primary contribution.
//!
//! Mahi-Mahi interprets an uncertified DAG through overlapping *waves*
//! (Section 2.3): every round `R` starts a wave `Propose(R)`, `Boost…`,
//! `Vote(R + w − 2)`, `Certify(R + w − 1)`, where the wave length `w` is 5
//! (maximum asynchronous resilience), 4 (the latency-optimized
//! configuration), or 3 (safe but not live; Appendix C note). The global
//! perfect coin opened in the Certify round retroactively elects `ℓ` leader
//! slots per Propose round, and two decision rules classify each slot:
//!
//! - the **direct decision rule** (Section 3.2, step 2): commit a slot block
//!   with `2f + 1` certificates; skip a slot no block of which can ever be
//!   certified;
//! - the **indirect decision rule** (step 3): resolve a stuck slot through
//!   the earliest non-skipped *anchor* slot of a later wave.
//!
//! [`Committer::try_decide`] implements Algorithm 1's `TryDecide`;
//! [`CommitSequencer`] implements `ExtendCommitSequence` (steps 4–5),
//! producing the totally-ordered block sequence.
//!
//! # Example
//!
//! ```
//! use mahimahi_types::TestCommittee;
//! use mahimahi_dag::DagBuilder;
//! use mahimahi_core::{Committer, CommitterOptions, CommitSequencer, CommitDecision};
//!
//! let setup = TestCommittee::new(4, 7);
//! let committee = setup.committee().clone();
//! let mut dag = DagBuilder::new(setup);
//! dag.add_full_rounds(8);
//!
//! let committer = Committer::new(committee, CommitterOptions::default());
//! let mut sequencer = CommitSequencer::new(committer);
//! let decisions = sequencer.try_commit(dag.store());
//! // With a full DAG every decided slot commits.
//! assert!(decisions.iter().all(|d| matches!(d, CommitDecision::Commit(_))));
//! assert!(!decisions.is_empty());
//! ```

pub mod admission;
mod committer;
mod decider;
mod election;
pub mod engine;
mod evidence;
pub mod execution;
pub mod ingress;
pub mod mempool;
mod protocol;
mod sequencer;
mod status;
pub mod telemetry;

pub use admission::{AdmissionConfig, AdmissionPipeline};
pub use committer::{Committer, CommitterOptions};
pub use election::{CoinElector, FixedElector, LeaderElector};
pub use engine::{
    EngineConfig, HonestProposer, Input, Output, ProposeCtx, ProposerStrategy, Route,
    ValidatorEngine, WalRecord,
};
pub use evidence::{EvidencePool, RecordingSlashingHook, SlashingHook};
pub use execution::{BalanceLedger, ExecutionState, BLOCK_REWARD};
pub use ingress::{IngressConfig, IngressPolicy, IngressReport};
pub use mempool::{Mempool, MempoolConfig, SubmitResult, TxIntegrityReport};
pub use protocol::ProtocolCommitter;
pub use sequencer::{CommitDecision, CommitSequencer, CommittedSubDag, SequencerSnapshot};
pub use status::LeaderStatus;
pub use telemetry::{NoopSink, TelemetrySink};
