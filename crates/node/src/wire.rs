//! Wire messages between networked validators.
//!
//! The node frames the workspace-wide [`Envelope`] enum over its TCP
//! transport — the exact same message vocabulary the simulator passes
//! by value through its virtual network, with the codec defined next to
//! the types in `mahimahi-types`. This alias is what the rest of the node
//! crate (and its tests) speak; nothing node-specific exists on the wire,
//! which is the point: the drivers cannot drift apart in what they can
//! say.

pub use mahimahi_types::Envelope;

/// The node's wire message — the shared driver vocabulary.
pub type NodeMessage = Envelope;

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_types::{AuthorityIndex, Block, Decode, Encode};

    #[test]
    fn messages_round_trip() {
        let genesis = Block::genesis(AuthorityIndex(1)).into_arc();
        let messages = vec![
            NodeMessage::Block(genesis.clone()),
            NodeMessage::Request(vec![genesis.reference()]),
            NodeMessage::Response(vec![genesis.clone()]),
        ];
        for message in messages {
            let bytes = message.to_bytes_vec();
            let decoded = NodeMessage::from_bytes_exact(&bytes).unwrap();
            match (&message, &decoded) {
                (NodeMessage::Block(a), NodeMessage::Block(b)) => {
                    assert_eq!(a.reference(), b.reference())
                }
                (NodeMessage::Request(a), NodeMessage::Request(b)) => assert_eq!(a, b),
                (NodeMessage::Response(a), NodeMessage::Response(b)) => {
                    assert_eq!(a.len(), b.len());
                    assert_eq!(a[0].reference(), b[0].reference());
                }
                _ => panic!("variant changed in round trip"),
            }
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(NodeMessage::from_bytes_exact(&[9]).is_err());
    }

    #[test]
    fn truncated_message_rejected() {
        let genesis = Block::genesis(AuthorityIndex(1)).into_arc();
        let bytes = NodeMessage::Block(genesis).to_bytes_vec();
        assert!(NodeMessage::from_bytes_exact(&bytes[..bytes.len() - 1]).is_err());
    }
}
