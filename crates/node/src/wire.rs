//! Wire messages between networked validators.

use mahimahi_types::{Block, BlockRef, CodecError, Decode, Decoder, Encode, Encoder};
use std::sync::Arc;

/// Messages exchanged by networked validators (uncertified protocols).
#[derive(Debug, Clone)]
pub enum NodeMessage {
    /// Best-effort block dissemination.
    Block(Arc<Block>),
    /// Ask the peer for the listed blocks (synchronizer).
    Request(Vec<BlockRef>),
    /// Answer to a [`NodeMessage::Request`].
    Response(Vec<Arc<Block>>),
}

const TAG_BLOCK: u8 = 1;
const TAG_REQUEST: u8 = 2;
const TAG_RESPONSE: u8 = 3;

impl Encode for NodeMessage {
    fn encode(&self, encoder: &mut Encoder) {
        match self {
            NodeMessage::Block(block) => {
                encoder.put_u8(TAG_BLOCK);
                block.as_ref().encode(encoder);
            }
            NodeMessage::Request(references) => {
                encoder.put_u8(TAG_REQUEST);
                references.encode(encoder);
            }
            NodeMessage::Response(blocks) => {
                encoder.put_u8(TAG_RESPONSE);
                encoder.put_u32(u32::try_from(blocks.len()).expect("block count fits u32"));
                for block in blocks {
                    block.as_ref().encode(encoder);
                }
            }
        }
    }
}

impl Decode for NodeMessage {
    fn decode(decoder: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match decoder.get_u8()? {
            TAG_BLOCK => Ok(NodeMessage::Block(Block::decode(decoder)?.into_arc())),
            TAG_REQUEST => Ok(NodeMessage::Request(Vec::<BlockRef>::decode(decoder)?)),
            TAG_RESPONSE => {
                let count = decoder.get_u32()? as usize;
                let mut blocks = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    blocks.push(Block::decode(decoder)?.into_arc());
                }
                Ok(NodeMessage::Response(blocks))
            }
            _ => Err(CodecError::InvalidValue("node message tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_types::AuthorityIndex;

    #[test]
    fn messages_round_trip() {
        let genesis = Block::genesis(AuthorityIndex(1)).into_arc();
        let messages = vec![
            NodeMessage::Block(genesis.clone()),
            NodeMessage::Request(vec![genesis.reference()]),
            NodeMessage::Response(vec![genesis.clone()]),
        ];
        for message in messages {
            let bytes = message.to_bytes_vec();
            let decoded = NodeMessage::from_bytes_exact(&bytes).unwrap();
            match (&message, &decoded) {
                (NodeMessage::Block(a), NodeMessage::Block(b)) => {
                    assert_eq!(a.reference(), b.reference())
                }
                (NodeMessage::Request(a), NodeMessage::Request(b)) => assert_eq!(a, b),
                (NodeMessage::Response(a), NodeMessage::Response(b)) => {
                    assert_eq!(a.len(), b.len());
                    assert_eq!(a[0].reference(), b[0].reference());
                }
                _ => panic!("variant changed in round trip"),
            }
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(NodeMessage::from_bytes_exact(&[9]).is_err());
    }

    #[test]
    fn truncated_message_rejected() {
        let genesis = Block::genesis(AuthorityIndex(1)).into_arc();
        let bytes = NodeMessage::Block(genesis).to_bytes_vec();
        assert!(NodeMessage::from_bytes_exact(&bytes[..bytes.len() - 1]).is_err());
    }
}
