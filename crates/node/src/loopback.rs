//! A deterministic in-memory "node" driver: the third shell over the
//! shared sans-I/O engine, built for equivalence and replay testing.
//!
//! [`LoopbackCluster`] drives `n` [`ValidatorEngine`]s exactly the way the
//! TCP node does — every message is serialized through the real wire codec
//! ([`NodeMessage`]/`Envelope`), every [`Output::Persist`] lands in a real
//! (in-memory) write-ahead log — but the transport is a deterministic
//! event queue with a constant link delay and a virtual clock, so the
//! whole run is a pure function of its inputs. The cluster records every
//! [`Input`] each engine handled (plus the rendered outputs), which makes
//! two end-to-end properties testable:
//!
//! - **driver equivalence**: the same seeded workload through the
//!   simulator and through this wire-faithful node driver must commit the
//!   byte-identical leader sequence (`tests/driver_equivalence.rs`);
//! - **replayability**: feeding a recorded trace into a freshly
//!   constructed engine must reproduce the recorded outputs exactly — the
//!   engine's determinism contract.

use mahimahi_core::{
    engine::{EngineConfig, Input, Time},
    CommittedSubDag, Committer, CommitterOptions, IngressConfig, IngressReport, MempoolConfig,
    Output, ValidatorEngine, WalRecord,
};
use mahimahi_telemetry::{Registry, Stage, StageSnapshot, StageStats};
use mahimahi_types::{
    AuthorityIndex, Decode, Encode, Envelope, TestCommittee, Transaction, TxReceipt, TxVerdict,
};
use mahimahi_wal::{MemStorage, Wal};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::Arc;

use crate::wire::NodeMessage;

/// A serialized frame in flight on the loopback "network" (wake-ups ride
/// the deduplicated `timers` set instead).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Frame {
    /// The sending validator.
    from: usize,
    /// The receiving validator.
    to: usize,
    /// The encoded [`NodeMessage`].
    bytes: Vec<u8>,
    /// Virtual send time — the delivery delta is the ingress flight time.
    /// (Heap order is decided by the `(time, sequence)` tuple prefix, so
    /// this field never participates in a comparison that matters.)
    sent: Time,
}

/// Configuration of a [`LoopbackCluster`].
#[derive(Debug, Clone)]
pub struct LoopbackConfig {
    /// Committee size.
    pub nodes: usize,
    /// Committee provisioning seed (must match the simulator's for
    /// equivalence runs).
    pub seed: u64,
    /// Committer parameters.
    pub options: CommitterOptions,
    /// Constant one-way link delay (microseconds of virtual time).
    pub link_delay: Time,
    /// Engine inclusion wait (post-quorum pacing).
    pub inclusion_wait: Time,
    /// Mempool bounds and per-block payload budget (must match the
    /// simulator's for equivalence runs).
    pub mempool: MempoolConfig,
    /// Client-ingress policy: per-client token buckets, fair-queue
    /// admission, and age-based forwarding. Default permissive.
    pub ingress: IngressConfig,
}

/// An `n`-engine cluster over a deterministic loopback fabric.
pub struct LoopbackCluster {
    config: LoopbackConfig,
    setup: TestCommittee,
    engines: Vec<ValidatorEngine>,
    wals: Vec<Wal<MemStorage>>,
    /// (delivery time, sequence, frame) — total order, FIFO per tie.
    queue: BinaryHeap<Reverse<(Time, u64, Frame)>>,
    /// Deduplicated pending wake-ups.
    timers: BTreeSet<(Time, usize)>,
    sequence: u64,
    now: Time,
    started: bool,
    /// Per-validator recorded input traces.
    traces: Vec<Vec<Input>>,
    /// Per-validator rendered outputs, parallel to `traces`.
    rendered: Vec<Vec<String>>,
    /// Per-validator committed sub-DAGs, in commit order.
    commits: Vec<Vec<CommittedSubDag>>,
    /// Per-validator `(commit time, tag)` pairs from `TxsCommitted` — the
    /// client-observed commit-latency samples of the load generator.
    tx_commits: Vec<Vec<(Time, u64)>>,
    /// Per-validator mempool rejections observed: `TxRejected` outputs
    /// plus non-`Accepted` verdicts in emitted `Admission` receipts.
    rejections: Vec<u64>,
    /// Per-validator emitted receipts, `(destination peer, receipt)` in
    /// emission order — what the TCP node would frame down the client's
    /// connection (or the local handle's channel).
    receipts: Vec<Vec<(usize, TxReceipt)>>,
    /// Per-validator metric registries (stage histograms live here).
    registries: Vec<Arc<Registry>>,
    /// Per-validator commit-path stage histograms: the cluster records the
    /// driver-side boundaries, the engine reports its own through the
    /// shared sink.
    stage_stats: Vec<StageStats>,
}

impl LoopbackCluster {
    /// Builds the cluster (no events scheduled until [`Self::run_until`]).
    pub fn new(config: LoopbackConfig) -> Self {
        let setup = TestCommittee::new(config.nodes, config.seed);
        let registries: Vec<Arc<Registry>> = (0..config.nodes)
            .map(|_| Arc::new(Registry::new()))
            .collect();
        let stage_stats: Vec<StageStats> = registries
            .iter()
            .map(|registry| StageStats::new(registry))
            .collect();
        let engines = (0..config.nodes)
            .map(|index| {
                let mut engine =
                    Self::fresh_engine_for(&config, &setup, AuthorityIndex::from(index));
                // Record-only sink: replay equivalence against a fresh
                // (no-op-sink) engine is untouched.
                engine.set_telemetry(Arc::new(stage_stats[index].clone()));
                engine
            })
            .collect();
        let wals = (0..config.nodes)
            .map(|_| Wal::open(MemStorage::new()).expect("fresh in-memory wal"))
            .collect();
        LoopbackCluster {
            setup,
            engines,
            wals,
            queue: BinaryHeap::new(),
            timers: BTreeSet::new(),
            sequence: 0,
            now: 0,
            started: false,
            traces: vec![Vec::new(); config.nodes],
            rendered: vec![Vec::new(); config.nodes],
            commits: vec![Vec::new(); config.nodes],
            tx_commits: vec![Vec::new(); config.nodes],
            rejections: vec![0; config.nodes],
            receipts: vec![Vec::new(); config.nodes],
            registries,
            stage_stats,
            config,
        }
    }

    fn fresh_engine_for(
        config: &LoopbackConfig,
        setup: &TestCommittee,
        authority: AuthorityIndex,
    ) -> ValidatorEngine {
        let committer = Committer::new(setup.committee().clone(), config.options);
        let mut engine_config = EngineConfig::new(authority, setup.clone());
        engine_config.inclusion_wait = config.inclusion_wait;
        engine_config.mempool = config.mempool;
        engine_config.ingress = config.ingress;
        ValidatorEngine::honest(engine_config, Box::new(committer))
    }

    /// A fresh, un-driven engine configured exactly like `validator`'s —
    /// the starting point for replaying a recorded trace.
    pub fn fresh_engine(&self, validator: usize) -> ValidatorEngine {
        Self::fresh_engine_for(
            &self.config,
            &self.setup,
            self.engines[validator].authority(),
        )
    }

    /// Submits a client transaction to `validator` (virtual time 0 if
    /// called before the run; the current virtual time otherwise).
    pub fn submit(&mut self, validator: usize, transaction: Transaction, tag: u64) {
        self.feed(validator, Input::TxSubmitted { transaction, tag });
    }

    /// Submits a client batch to `validator` through the real wire codec —
    /// an [`Envelope::TxBatch`] frame enqueued on the fabric, delivered
    /// one link delay later and tagged by the engine with its receive
    /// time, exactly as the TCP node's client listener behaves.
    pub fn submit_batch(&mut self, validator: usize, transactions: Vec<Transaction>) {
        self.submit_batch_as(validator, validator, transactions);
    }

    /// Submits a client batch to `validator` under an explicit `client`
    /// identity — the id the engine's per-client rate limiter and fair
    /// queue key on. Ids at or above the committee size model external
    /// clients (subject to rate limiting, like the TCP transport's
    /// client-range connection ids); `submit_batch` uses the validator's
    /// own index (exempt, like the local `NodeHandle` path).
    pub fn submit_batch_as(
        &mut self,
        validator: usize,
        client: usize,
        transactions: Vec<Transaction>,
    ) {
        if transactions.is_empty() {
            return;
        }
        let bytes = Envelope::TxBatch(transactions).to_bytes_vec();
        self.enqueue_frame(client, validator, bytes);
    }

    /// Runs the event loop up to (and including) virtual time `horizon`.
    pub fn run_until(&mut self, horizon: Time) {
        if !self.started {
            self.started = true;
            for validator in 0..self.config.nodes {
                self.feed(validator, Input::TimerFired { now: 0 });
            }
        }
        loop {
            let next_frame = self.queue.peek().map(|Reverse((time, ..))| *time);
            let next_timer = self.timers.first().map(|&(time, _)| time);
            let next = match (next_frame, next_timer) {
                (Some(frame), Some(timer)) => frame.min(timer),
                (Some(frame), None) => frame,
                (None, Some(timer)) => timer,
                (None, None) => break,
            };
            if next > horizon {
                break;
            }
            self.now = next;
            // Timers first at a tie: a wake-up scheduled for `t` precedes
            // deliveries at `t`, matching the simulator's event loop.
            if next_timer == Some(next) {
                let &(time, validator) = self.timers.first().expect("peeked");
                self.timers.remove(&(time, validator));
                self.feed(validator, Input::TimerFired { now: time });
                continue;
            }
            let Reverse((
                time,
                _,
                Frame {
                    from,
                    to,
                    bytes,
                    sent,
                },
            )) = self.queue.pop().expect("peeked");
            let Ok(message) = NodeMessage::from_bytes_exact(&bytes) else {
                continue; // torn frame: dropped, like the node
            };
            // Driver-side stage boundaries: the link flight is the ingress
            // stage; dequeue, verification, and resequencing happen inline
            // in virtual time — honest zeros keep the histograms complete.
            let stats = &self.stage_stats[to];
            stats.record(Stage::IngressReceived, time.saturating_sub(sent));
            stats.record(Stage::VerifyDequeued, 0);
            stats.record(Stage::Verified, 0);
            stats.record(Stage::Resequenced, 0);
            self.feed(to, Input::TimerFired { now: time });
            self.feed(to, Input::from_envelope(from, message));
        }
    }

    /// Hands `input` to one engine, records it, and renders the outputs
    /// back onto the fabric (frames, timers, WAL, commit log).
    fn feed(&mut self, validator: usize, input: Input) {
        self.traces[validator].push(input.clone());
        let outputs = self.engines[validator].handle(input);
        self.rendered[validator].push(format!("{outputs:?}"));
        for output in outputs {
            match output {
                Output::Broadcast(envelope) => {
                    let bytes = envelope.to_bytes_vec();
                    for peer in 0..self.config.nodes {
                        if peer != validator {
                            self.enqueue_frame(validator, peer, bytes.clone());
                        }
                    }
                }
                Output::SendTo(peer, envelope) => {
                    let bytes = envelope.to_bytes_vec();
                    self.enqueue_frame(validator, peer, bytes);
                }
                Output::WakeAt(time) => {
                    self.timers.insert((time.max(self.now), validator));
                }
                Output::Persist(record) => {
                    let wal = &mut self.wals[validator];
                    let _ = wal.append(&record.to_bytes_vec());
                    if matches!(&record, WalRecord::Block(block)
                        if block.author() == self.engines[validator].authority())
                        || matches!(record, WalRecord::Evidence(_))
                    {
                        let _ = wal.sync();
                    }
                }
                Output::Committed(sub_dag) => {
                    self.commits[validator].push(sub_dag);
                }
                Output::TxsCommitted(tags) => {
                    let now = self.now;
                    self.tx_commits[validator].extend(tags.into_iter().map(|tag| (now, tag)));
                }
                Output::TxRejected { .. } => {
                    self.rejections[validator] += 1;
                }
                Output::TxReceipt { peer, receipt } => {
                    // Clients live outside the fabric (like the TCP node's
                    // client connections): receipts are recorded at the
                    // emitting validator, never re-enqueued as frames.
                    if let TxReceipt::Admission { verdicts, .. } = &receipt {
                        self.rejections[validator] += verdicts
                            .iter()
                            .filter(|verdict| !matches!(verdict, TxVerdict::Accepted))
                            .count() as u64;
                    }
                    self.receipts[validator].push((peer, receipt));
                }
                Output::Convicted(_) | Output::CheckpointProduced(_) => {}
            }
        }
    }

    fn enqueue_frame(&mut self, from: usize, to: usize, bytes: Vec<u8>) {
        self.sequence += 1;
        self.queue.push(Reverse((
            self.now + self.config.link_delay,
            self.sequence,
            Frame {
                from,
                to,
                bytes,
                sent: self.now,
            },
        )));
    }

    /// The engine running as `validator`.
    pub fn engine(&self, validator: usize) -> &ValidatorEngine {
        &self.engines[validator]
    }

    /// Every input `validator`'s engine handled, in order.
    pub fn trace(&self, validator: usize) -> &[Input] {
        &self.traces[validator]
    }

    /// The rendered (`Debug`) outputs of every handled input, parallel to
    /// [`Self::trace`].
    pub fn rendered_outputs(&self, validator: usize) -> &[String] {
        &self.rendered[validator]
    }

    /// The committed sub-DAGs `validator` emitted, in commit order.
    pub fn commits(&self, validator: usize) -> &[CommittedSubDag] {
        &self.commits[validator]
    }

    /// `(commit time, tag)` pairs for `validator`'s own committed
    /// transactions — with time-valued tags (wire batches, or `submit`
    /// tagged with the submission time), each pair is one client-observed
    /// commit-latency sample.
    pub fn tx_commits(&self, validator: usize) -> &[(Time, u64)] {
        &self.tx_commits[validator]
    }

    /// Mempool rejections observed at `validator`: `TxRejected` outputs
    /// plus non-`Accepted` verdicts in its `Admission` receipts.
    pub fn rejections(&self, validator: usize) -> u64 {
        self.rejections[validator]
    }

    /// Every receipt `validator` emitted, as `(destination peer, receipt)`
    /// pairs in emission order.
    pub fn receipts(&self, validator: usize) -> &[(usize, TxReceipt)] {
        &self.receipts[validator]
    }

    /// The ingress conservation ledger of `validator`'s engine — what the
    /// receipt-integrity oracle and the fairness bench gate on.
    pub fn ingress_report(&self, validator: usize) -> IngressReport {
        self.engines[validator].ingress_report()
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Point-in-time copy of `validator`'s commit-path stage histograms.
    pub fn stage_snapshot(&self, validator: usize) -> StageSnapshot {
        self.stage_stats[validator].snapshot()
    }

    /// `validator`'s metric registry (renders the same exposition the TCP
    /// node's metrics endpoint serves).
    pub fn registry(&self, validator: usize) -> &Arc<Registry> {
        &self.registries[validator]
    }

    /// Replays `validator`'s WAL into a fresh engine (recovery check).
    pub fn recover_from_wal(&mut self, validator: usize) -> ValidatorEngine {
        let mut engine = self.fresh_engine(validator);
        for record in self.wals[validator].records().expect("in-memory wal") {
            match WalRecord::from_bytes_exact(&record.payload) {
                Ok(WalRecord::Block(block)) => engine.restore_block(block),
                Ok(WalRecord::Evidence(proof)) => engine.restore_evidence(proof),
                Ok(WalRecord::Checkpoint {
                    checkpoint,
                    execution,
                    resume,
                }) => {
                    engine.restore_checkpoint(checkpoint, execution, resume);
                }
                Err(_) => continue,
            }
        }
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> LoopbackConfig {
        LoopbackConfig {
            nodes: 4,
            seed: 11,
            options: CommitterOptions::mahi_mahi_5(2),
            link_delay: 30_000,
            inclusion_wait: 20_000,
            mempool: MempoolConfig::test(10_000, 100),
            ingress: IngressConfig::default(),
        }
    }

    #[test]
    fn cluster_advances_and_commits_in_lockstep() {
        let mut cluster = LoopbackCluster::new(config());
        for validator in 0..4 {
            cluster.submit(validator, Transaction::benchmark(validator as u64), 0);
        }
        cluster.run_until(3_000_000); // 3 s of virtual time, 30 ms links
        for validator in 0..4 {
            assert!(
                cluster.engine(validator).round() > 50,
                "validator {validator} stalled at {}",
                cluster.engine(validator).round()
            );
            assert!(!cluster.commits(validator).is_empty());
        }
        // All four commit logs are identical (not merely prefix-consistent:
        // the fabric is symmetric).
        let log = cluster.engine(0).commit_log().to_vec();
        for validator in 1..4 {
            assert_eq!(cluster.engine(validator).commit_log(), &log[..]);
        }
    }

    #[test]
    fn wire_batches_commit_and_yield_latency_samples() {
        let mut cluster = LoopbackCluster::new(config());
        cluster.run_until(200_000); // warm up a few rounds
        let submitted_at = cluster.now();
        cluster.submit_batch(
            0,
            vec![Transaction::benchmark(1), Transaction::benchmark(2)],
        );
        cluster.run_until(3_000_000);
        let samples = cluster.tx_commits(0);
        assert_eq!(samples.len(), 2, "both batched transactions committed");
        for &(committed, tag) in samples {
            assert!(tag >= submitted_at, "tag is the engine receive time");
            assert!(committed > tag, "commit strictly after submission");
        }
        let integrity = cluster.engine(0).tx_integrity();
        assert_eq!(integrity.accepted, 2);
        assert_eq!(integrity.own_committed, 2);
        assert!(integrity.conserves_transactions());
        assert_eq!(cluster.rejections(0), 0);
        // A duplicate batch after the fact is rejected, visibly.
        cluster.submit_batch(0, vec![Transaction::benchmark(1)]);
        cluster.run_until(3_200_000);
        assert_eq!(cluster.rejections(0), 1);
    }

    #[test]
    fn external_clients_are_rate_limited_and_every_batch_is_receipted() {
        let mut limited = config();
        limited.ingress.rate_limit_per_client = 10;
        limited.ingress.burst_per_client = 2;
        let mut cluster = LoopbackCluster::new(limited);
        cluster.run_until(200_000);
        // External client 9 bursts four single-tx batches at one instant:
        // the bucket admits two and sheds two, but all four batches get
        // admission receipts.
        for i in 0..4u64 {
            cluster.submit_batch_as(0, 9, vec![Transaction::benchmark(100 + i)]);
        }
        cluster.run_until(3_000_000);
        let to_client: Vec<_> = cluster
            .receipts(0)
            .iter()
            .filter(|(peer, _)| *peer == 9)
            .collect();
        let admissions = to_client
            .iter()
            .filter(|(_, receipt)| matches!(receipt, TxReceipt::Admission { .. }))
            .count();
        assert_eq!(admissions, 4, "one admission receipt per batch");
        assert!(
            to_client
                .iter()
                .any(|(_, receipt)| matches!(receipt, TxReceipt::Committed { .. })),
            "accepted transactions owe the client a commit notice"
        );
        let report = cluster.ingress_report(0);
        assert_eq!(report.batches_received, 4);
        assert_eq!(report.rate_limited, 2);
        assert!(report.violations().is_empty(), "{report:?}");
        // The committee-id path (`submit_batch`) stays exempt: a batch
        // from the validator's own index is never rate limited.
        let before = cluster.ingress_report(0).rate_limited;
        cluster.submit_batch(0, (0..8).map(|i| Transaction::benchmark(900 + i)).collect());
        cluster.run_until(3_400_000);
        assert_eq!(cluster.ingress_report(0).rate_limited, before);
    }

    #[test]
    fn stage_histograms_cover_all_eight_stages() {
        let mut cluster = LoopbackCluster::new(config());
        cluster.run_until(200_000);
        cluster.submit_batch(
            0,
            vec![Transaction::benchmark(1), Transaction::benchmark(2)],
        );
        cluster.run_until(3_000_000);
        let snapshot = cluster.stage_snapshot(0);
        assert!(
            snapshot.all_stages_populated(),
            "every stage histogram must see at least one sample"
        );
        // Ingress samples are link flights: exactly the configured delay.
        let ingress = snapshot.stage(Stage::IngressReceived);
        assert!((ingress.quantile_s(1.0) - 0.03).abs() < 0.005);
        // The registry serves the same histograms as Prometheus text.
        let text = cluster.registry(0).render_prometheus();
        assert!(text.contains("mahimahi_stage_sequenced_seconds_bucket"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn wal_recovery_reproduces_the_dag() {
        let mut cluster = LoopbackCluster::new(config());
        cluster.run_until(1_000_000);
        let live_round = cluster.engine(0).round();
        assert!(live_round > 10);
        let recovered = cluster.recover_from_wal(0);
        assert_eq!(recovered.round(), live_round);
        assert_eq!(
            recovered.store().highest_round(),
            cluster.engine(0).store().highest_round()
        );
    }
}
