//! Localhost cluster assembly for examples and integration tests.

use mahimahi_core::{CommittedSubDag, CommitterOptions};
use mahimahi_transport::Transport;
use mahimahi_types::{TestCommittee, Transaction};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use crate::node::{NodeConfig, NodeHandle, ValidatorNode};

/// An `n`-validator Mahi-Mahi cluster on 127.0.0.1.
///
/// # Example
///
/// ```no_run
/// use mahimahi_node::LocalCluster;
/// use mahimahi_types::Transaction;
///
/// let cluster = LocalCluster::start(4, 7).unwrap();
/// cluster.submit(0, Transaction::benchmark(1));
/// let sub_dag = cluster.wait_for_commit(0, std::time::Duration::from_secs(30)).unwrap();
/// assert!(sub_dag.blocks.len() > 0);
/// cluster.stop();
/// ```
pub struct LocalCluster {
    handles: Vec<NodeHandle>,
    /// Listener addresses by authority index (including silent slots) —
    /// where `TxClient`s connect to submit transaction batches.
    addresses: Vec<SocketAddr>,
}

impl LocalCluster {
    /// Starts `n` validators with default options, fully meshed over
    /// ephemeral localhost ports.
    ///
    /// # Errors
    ///
    /// Propagates socket/WAL errors from node start-up.
    pub fn start(n: usize, seed: u64) -> std::io::Result<Self> {
        Self::start_with(n, seed, CommitterOptions::default(), &[])
    }

    /// Starts a cluster with explicit committer options; authorities listed
    /// in `silent` are *not* started (crash-from-boot faults).
    ///
    /// # Errors
    ///
    /// Propagates socket/WAL errors from node start-up.
    pub fn start_with(
        n: usize,
        seed: u64,
        options: CommitterOptions,
        silent: &[u32],
    ) -> std::io::Result<Self> {
        let setup = TestCommittee::new(n, seed);
        // Bind all transports first so every address is known.
        let transports: Vec<Transport> = (0..n as u32)
            .map(|id| Transport::bind(id, "127.0.0.1:0"))
            .collect::<std::io::Result<_>>()?;
        let addresses: Vec<SocketAddr> = transports.iter().map(Transport::local_addr).collect();
        for transport in &transports {
            for (peer, address) in addresses.iter().enumerate() {
                if peer as u32 != transport.id() {
                    transport.connect(peer as u32, *address);
                }
            }
        }
        let mut handles = Vec::with_capacity(n);
        for (id, transport) in transports.into_iter().enumerate() {
            if silent.contains(&(id as u32)) {
                // Crashed from boot: transport dropped, node never runs.
                continue;
            }
            let mut config = NodeConfig::local(id as u32, setup.clone());
            config.options = options;
            let node = ValidatorNode::new(config, transport)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            handles.push(node.start());
        }
        Ok(LocalCluster { handles, addresses })
    }

    /// Number of running validators.
    pub fn running(&self) -> usize {
        self.handles.len()
    }

    /// The listener address of the validator with `authority` index —
    /// where a `TxClient` connects to submit batches over the wire.
    ///
    /// Indexed by **authority**, unlike [`Self::handle`]/[`Self::submit`],
    /// which index the *running* validators only: when clusters start with
    /// silent slots the two numberings differ, and a silent authority's
    /// address belongs to a dropped transport (connections there fail or
    /// submissions go nowhere).
    ///
    /// # Panics
    ///
    /// Panics if `authority` is out of range.
    pub fn address(&self, authority: usize) -> SocketAddr {
        self.addresses[authority]
    }

    /// The handle of the `index`-th *running* validator (silent slots are
    /// skipped — see [`Self::address`] for the authority-indexed view).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn handle(&self, index: usize) -> &NodeHandle {
        &self.handles[index]
    }

    /// Submits a transaction to the `index`-th *running* validator.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn submit(&self, index: usize, transaction: Transaction) {
        self.handles[index].submit(transaction);
    }

    /// Submits a transaction batch to the `index`-th *running* validator
    /// (the in-process twin of the `TxClient` wire path).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn submit_batch(&self, index: usize, batch: Vec<Transaction>) {
        self.handles[index].submit_batch(batch);
    }

    /// The commit stream of the `index`-th running validator.
    pub fn commits(&self, index: usize) -> &crossbeam::channel::Receiver<CommittedSubDag> {
        self.handles[index].commits()
    }

    /// Waits until the `index`-th validator commits a sub-DAG containing at
    /// least one transaction, returning it.
    pub fn wait_for_commit(&self, index: usize, timeout: Duration) -> Option<CommittedSubDag> {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            match self.handles[index]
                .commits()
                .recv_timeout(Duration::from_millis(100))
            {
                Ok(sub_dag) => {
                    if sub_dag.blocks.iter().any(|b| !b.transactions().is_empty()) {
                        return Some(sub_dag);
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return None,
            }
        }
        None
    }

    /// Stops every validator.
    pub fn stop(self) {
        for handle in self.handles {
            handle.stop();
        }
    }
}
