//! Localhost cluster assembly for examples and integration tests.

use mahimahi_core::{CommittedSubDag, CommitterOptions};
use mahimahi_transport::Transport;
use mahimahi_types::{TestCommittee, Transaction};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use crate::node::{NodeConfig, NodeHandle, ValidatorNode};

/// An `n`-validator Mahi-Mahi cluster on 127.0.0.1.
///
/// # Example
///
/// ```no_run
/// use mahimahi_node::LocalCluster;
/// use mahimahi_types::Transaction;
///
/// let cluster = LocalCluster::start(4, 7).unwrap();
/// cluster.submit(0, Transaction::benchmark(1));
/// let sub_dag = cluster.wait_for_commit(0, std::time::Duration::from_secs(30)).unwrap();
/// assert!(sub_dag.blocks.len() > 0);
/// cluster.stop();
/// ```
pub struct LocalCluster {
    handles: Vec<NodeHandle>,
    /// Listener addresses by authority index (including silent slots) —
    /// where `TxClient`s connect to submit transaction batches.
    addresses: Vec<SocketAddr>,
}

impl LocalCluster {
    /// Starts `n` validators with default options, fully meshed over
    /// ephemeral localhost ports.
    ///
    /// # Errors
    ///
    /// Propagates socket/WAL errors from node start-up.
    pub fn start(n: usize, seed: u64) -> std::io::Result<Self> {
        Self::start_with(n, seed, CommitterOptions::default(), &[])
    }

    /// Starts `n` validators with default options and a metrics endpoint
    /// per node on an ephemeral localhost port (see
    /// [`LocalCluster::metrics_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates socket/WAL errors from node start-up.
    pub fn start_observed(n: usize, seed: u64) -> std::io::Result<Self> {
        Self::assemble(n, seed, CommitterOptions::default(), &[], true)
    }

    /// Starts a cluster with explicit committer options; authorities listed
    /// in `silent` are *not* started (crash-from-boot faults).
    ///
    /// # Errors
    ///
    /// Propagates socket/WAL errors from node start-up.
    pub fn start_with(
        n: usize,
        seed: u64,
        options: CommitterOptions,
        silent: &[u32],
    ) -> std::io::Result<Self> {
        Self::assemble(n, seed, options, silent, false)
    }

    fn assemble(
        n: usize,
        seed: u64,
        options: CommitterOptions,
        silent: &[u32],
        observed: bool,
    ) -> std::io::Result<Self> {
        let setup = TestCommittee::new(n, seed);
        // Bind all transports first so every address is known.
        let transports: Vec<Transport> = (0..n as u32)
            .map(|id| Transport::bind(id, "127.0.0.1:0"))
            .collect::<std::io::Result<_>>()?;
        let addresses: Vec<SocketAddr> = transports.iter().map(Transport::local_addr).collect();
        for transport in &transports {
            for (peer, address) in addresses.iter().enumerate() {
                if peer as u32 != transport.id() {
                    transport.connect(peer as u32, *address);
                }
            }
        }
        let mut handles = Vec::with_capacity(n);
        for (id, transport) in transports.into_iter().enumerate() {
            if silent.contains(&(id as u32)) {
                // Crashed from boot: transport dropped, node never runs.
                continue;
            }
            let mut config = NodeConfig::local(id as u32, setup.clone());
            config.options = options;
            if observed {
                config.metrics_addr = Some("127.0.0.1:0".parse().expect("literal address"));
            }
            let node = ValidatorNode::new(config, transport)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            handles.push(node.start());
        }
        Ok(LocalCluster { handles, addresses })
    }

    /// Number of running validators.
    pub fn running(&self) -> usize {
        self.handles.len()
    }

    /// The listener address of the validator with `authority` index —
    /// where a `TxClient` connects to submit batches over the wire.
    ///
    /// Indexed by **authority**, unlike [`Self::handle`]/[`Self::submit`],
    /// which index the *running* validators only: when clusters start with
    /// silent slots the two numberings differ, and a silent authority's
    /// address belongs to a dropped transport (connections there fail or
    /// submissions go nowhere).
    ///
    /// # Panics
    ///
    /// Panics if `authority` is out of range.
    pub fn address(&self, authority: usize) -> SocketAddr {
        self.addresses[authority]
    }

    /// The handle of the `index`-th *running* validator (silent slots are
    /// skipped — see [`Self::address`] for the authority-indexed view).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn handle(&self, index: usize) -> &NodeHandle {
        &self.handles[index]
    }

    /// The metrics-endpoint address of the `index`-th *running* validator
    /// (`None` unless the cluster was started with
    /// [`LocalCluster::start_observed`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn metrics_addr(&self, index: usize) -> Option<std::net::SocketAddr> {
        self.handles[index].metrics_addr()
    }

    /// Submits a transaction to the `index`-th *running* validator.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn submit(&self, index: usize, transaction: Transaction) {
        self.handles[index].submit(transaction);
    }

    /// Submits a transaction batch to the `index`-th *running* validator
    /// (the in-process twin of the `TxClient` wire path).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn submit_batch(&self, index: usize, batch: Vec<Transaction>) {
        self.handles[index].submit_batch(batch);
    }

    /// The commit stream of the `index`-th running validator.
    pub fn commits(&self, index: usize) -> &crossbeam::channel::Receiver<CommittedSubDag> {
        self.handles[index].commits()
    }

    /// Waits until the `index`-th validator commits a sub-DAG containing at
    /// least one transaction, returning it.
    pub fn wait_for_commit(&self, index: usize, timeout: Duration) -> Option<CommittedSubDag> {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            match self.handles[index]
                .commits()
                .recv_timeout(Duration::from_millis(100))
            {
                Ok(sub_dag) => {
                    if sub_dag.blocks.iter().any(|b| !b.transactions().is_empty()) {
                        return Some(sub_dag);
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return None,
            }
        }
        None
    }

    /// Stops every validator.
    pub fn stop(self) {
        for handle in self.handles {
            handle.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    /// One blocking HTTP GET against a node's metrics endpoint.
    fn scrape(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
        )
        .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    /// The value of the sample `name` in a Prometheus text exposition.
    fn sample(body: &str, name: &str) -> f64 {
        body.lines()
            .find_map(|line| line.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("sample {name} missing"))
            .trim()
            .parse()
            .expect("sample value parses")
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_and_status() {
        let cluster = LocalCluster::start_observed(4, 99).expect("cluster starts");
        for id in 0..16u64 {
            cluster.submit(0, Transaction::benchmark(id));
        }
        cluster
            .wait_for_commit(0, Duration::from_secs(30))
            .expect("first commit");
        let addr = cluster
            .metrics_addr(0)
            .expect("observed cluster exposes a metrics endpoint");

        let first = scrape(addr, "/metrics");
        assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
        let body = first.split("\r\n\r\n").nth(1).expect("response body");
        // Every sample line parses: name, one space, a finite number.
        for line in body
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty(), "{line}");
            assert!(value.parse::<f64>().is_ok(), "unparsable sample: {line}");
        }
        assert!(body.contains("# TYPE mahimahi_round gauge"));
        assert!(body.contains("# TYPE mahimahi_stage_sequenced_seconds histogram"));
        assert!(body.contains("mahimahi_stage_sequenced_seconds_bucket{le=\"+Inf\"}"));
        let committed = sample(body, "mahimahi_committed_transactions");
        assert!(committed >= 1.0, "commits visible in the exposition");

        // More traffic advances the counters between scrapes.
        for id in 100..116u64 {
            cluster.submit(0, Transaction::benchmark(id));
        }
        cluster
            .wait_for_commit(0, Duration::from_secs(30))
            .expect("second commit");
        let second = scrape(addr, "/metrics");
        let body = second.split("\r\n\r\n").nth(1).expect("response body");
        assert!(
            sample(body, "mahimahi_committed_transactions") > committed,
            "committed-transaction gauge must advance between scrapes"
        );
        assert!(sample(body, "mahimahi_mempool_accepted") >= 32.0);

        let status = scrape(addr, "/status");
        assert!(status.starts_with("HTTP/1.1 200 OK"), "{status}");
        let json = status.split("\r\n\r\n").nth(1).expect("status body");
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        for field in [
            "\"round\":",
            "\"committed_transactions\":",
            "\"mempool_pending\":",
            "\"verify_depth\":",
        ] {
            assert!(json.contains(field), "{field} missing from {json}");
        }

        let missing = scrape(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        cluster.stop();
    }

    #[test]
    fn unobserved_clusters_have_no_endpoint() {
        let cluster = LocalCluster::start(4, 100).expect("cluster starts");
        assert_eq!(cluster.metrics_addr(0), None);
        cluster.stop();
    }
}
