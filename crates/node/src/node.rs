//! The networked validator: protocol loop, WAL persistence, recovery.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use mahimahi_core::{
    CommitDecision, CommitSequencer, CommittedSubDag, Committer, CommitterOptions,
};
use mahimahi_dag::{BlockStore, InsertResult};
use mahimahi_transport::Transport;
use mahimahi_types::{
    AuthorityIndex, Block, BlockBuilder, BlockRef, Decode, Encode, Round, TestCommittee,
    Transaction,
};
use mahimahi_wal::{FileWal, MemStorage, Wal};
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::wire::NodeMessage;

/// Configuration of one networked validator.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's authority index.
    pub authority: AuthorityIndex,
    /// Committee provisioning. A production deployment would hand each node
    /// only its own secrets; the test committee carries them all (the node
    /// uses only its own).
    pub setup: TestCommittee,
    /// Committer parameters (wave length, leaders per round).
    pub options: CommitterOptions,
    /// Write-ahead log path; `None` uses a volatile in-memory log.
    pub wal_path: Option<PathBuf>,
    /// Maximum transactions per block.
    pub max_block_transactions: usize,
    /// Minimum spacing between produced rounds (pacing; localhost clusters
    /// would otherwise spin thousands of rounds per second).
    pub min_round_interval: Duration,
    /// Garbage-collection depth: blocks more than this many rounds below
    /// the commit frontier are deterministically excluded from commits and
    /// periodically dropped from memory. `None` disables GC.
    pub gc_depth: Option<u64>,
}

impl NodeConfig {
    /// A sensible localhost configuration.
    pub fn local(authority: u32, setup: TestCommittee) -> Self {
        NodeConfig {
            authority: AuthorityIndex(authority),
            setup,
            options: CommitterOptions::default(),
            wal_path: None,
            max_block_transactions: 1_000,
            min_round_interval: Duration::from_millis(2),
            gc_depth: Some(128),
        }
    }
}

/// Handle to a running [`ValidatorNode`].
pub struct NodeHandle {
    /// Committed sub-DAGs, in commit order.
    commits: Receiver<CommittedSubDag>,
    transactions: Sender<Transaction>,
    stop: Arc<AtomicBool>,
    round: Arc<AtomicU64>,
    join: Option<JoinHandle<()>>,
}

impl NodeHandle {
    /// The stream of committed sub-DAGs.
    pub fn commits(&self) -> &Receiver<CommittedSubDag> {
        &self.commits
    }

    /// Submits a client transaction to this validator.
    pub fn submit(&self, transaction: Transaction) {
        let _ = self.transactions.send(transaction);
    }

    /// The node's current round (last produced).
    pub fn round(&self) -> Round {
        self.round.load(Ordering::SeqCst)
    }

    /// Stops the node and waits for its thread to exit.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

enum AnyWal {
    File(FileWal),
    Memory(Wal<MemStorage>),
}

impl AnyWal {
    fn append(&mut self, payload: &[u8]) -> Result<u64, mahimahi_wal::WalError> {
        match self {
            AnyWal::File(wal) => wal.append(payload),
            AnyWal::Memory(wal) => wal.append(payload),
        }
    }

    fn sync(&mut self) -> Result<(), mahimahi_wal::WalError> {
        match self {
            AnyWal::File(wal) => wal.sync(),
            AnyWal::Memory(wal) => wal.sync(),
        }
    }

    fn records(&mut self) -> Result<Vec<mahimahi_wal::Record>, mahimahi_wal::WalError> {
        match self {
            AnyWal::File(wal) => wal.records(),
            AnyWal::Memory(wal) => wal.records(),
        }
    }
}

/// A networked Mahi-Mahi validator.
pub struct ValidatorNode {
    config: NodeConfig,
    transport: Transport,
    store: BlockStore,
    sequencer: CommitSequencer<Committer>,
    wal: AnyWal,
    round: Round,
    tx_queue: VecDeque<Transaction>,
    unreferenced: BTreeSet<BlockRef>,
    last_production: Instant,
}

impl ValidatorNode {
    /// Creates the node over an already-bound transport, replaying the WAL
    /// (if any) to recover the DAG.
    ///
    /// # Errors
    ///
    /// Propagates WAL I/O failures.
    pub fn new(config: NodeConfig, transport: Transport) -> Result<Self, mahimahi_wal::WalError> {
        let committee = config.setup.committee().clone();
        let mut store = BlockStore::new(committee.size(), committee.quorum_threshold());
        let mut unreferenced: BTreeSet<BlockRef> = Block::all_genesis(committee.size())
            .iter()
            .map(Block::reference)
            .collect();

        let mut wal = match &config.wal_path {
            Some(path) => AnyWal::File(FileWal::open_path(path)?),
            None => AnyWal::Memory(Wal::open(MemStorage::new())?),
        };

        // Recovery: replay every valid block in log order. The pending
        // buffer tolerates out-of-order records (e.g. after a torn tail
        // elsewhere in the causal history).
        let mut own_round = 0;
        for record in wal.records()? {
            let Ok(block) = Block::from_bytes_exact(&record.payload) else {
                continue;
            };
            if block.verify(&committee).is_err() {
                continue;
            }
            let block = block.into_arc();
            if block.author() == config.authority {
                own_round = own_round.max(block.round());
            }
            if let Ok(InsertResult::Inserted(admitted)) = store.insert(block) {
                for reference in admitted {
                    note_admitted(&mut unreferenced, &store, reference);
                }
            }
        }

        let committer = Committer::new(committee, config.options);
        let mut sequencer = CommitSequencer::new(committer);
        if let Some(depth) = config.gc_depth {
            sequencer = sequencer.with_gc_depth(depth);
        }
        Ok(ValidatorNode {
            round: own_round,
            config,
            transport,
            store,
            sequencer,
            wal,
            tx_queue: VecDeque::new(),
            unreferenced,
            last_production: Instant::now() - Duration::from_secs(1),
        })
    }

    /// The node's local DAG (inspection).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// The last produced round (0 after a fresh start).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Spawns the protocol loop, returning the control handle.
    pub fn start(self) -> NodeHandle {
        let (commit_tx, commit_rx) = unbounded();
        let (tx_tx, tx_rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let round = Arc::new(AtomicU64::new(self.round));
        let loop_stop = Arc::clone(&stop);
        let loop_round = Arc::clone(&round);
        let authority = self.config.authority;
        let join = std::thread::Builder::new()
            .name(format!("validator-{authority}"))
            .spawn(move || self.run(commit_tx, tx_rx, loop_stop, loop_round))
            .expect("spawn validator thread");
        NodeHandle {
            commits: commit_rx,
            transactions: tx_tx,
            stop,
            round,
            join: Some(join),
        }
    }

    fn run(
        mut self,
        commits: Sender<CommittedSubDag>,
        transactions: Receiver<Transaction>,
        stop: Arc<AtomicBool>,
        round: Arc<AtomicU64>,
    ) {
        while !stop.load(Ordering::SeqCst) {
            // Drain client transactions.
            loop {
                match transactions.try_recv() {
                    Ok(tx) => self.tx_queue.push_back(tx),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return,
                }
            }
            // Handle one incoming frame (with a short poll timeout).
            match self
                .transport
                .incoming()
                .recv_timeout(Duration::from_millis(2))
            {
                Ok((peer, frame)) => {
                    if let Ok(message) = NodeMessage::from_bytes_exact(&frame) {
                        self.on_message(peer, message);
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
            self.maybe_advance();
            round.store(self.round, Ordering::SeqCst);
            for decision in self.sequencer.try_commit(&self.store) {
                if let CommitDecision::Commit(sub_dag) = decision {
                    if commits.send(sub_dag).is_err() {
                        return;
                    }
                }
            }
            // Periodic garbage collection once the frontier moved far
            // enough past the last cutoff.
            let floor = self.sequencer.gc_floor();
            if floor >= self.store.gc_cutoff() + 64 {
                self.store.compact(floor);
                self.unreferenced
                    .retain(|reference| reference.round >= floor);
            }
        }
        self.transport.shutdown();
    }

    fn on_message(&mut self, peer: u32, message: NodeMessage) {
        match message {
            NodeMessage::Block(block) => self.accept_block(peer, block),
            NodeMessage::Request(references) => {
                let blocks: Vec<Arc<Block>> = references
                    .iter()
                    .filter_map(|reference| self.store.get(reference).cloned())
                    .collect();
                if !blocks.is_empty() {
                    self.send(peer, &NodeMessage::Response(blocks));
                }
            }
            NodeMessage::Response(blocks) => {
                for block in blocks {
                    self.accept_block(peer, block);
                }
            }
        }
    }

    fn accept_block(&mut self, peer: u32, block: Arc<Block>) {
        if block.verify(self.config.setup.committee()).is_err() {
            return;
        }
        // Persist before acting: recovery must see everything we acted on.
        let _ = self.wal.append(&block.as_ref().to_bytes_vec());
        match self.store.insert(block) {
            Ok(InsertResult::Inserted(admitted)) => {
                for reference in admitted {
                    note_admitted(&mut self.unreferenced, &self.store, reference);
                }
            }
            Ok(InsertResult::Pending(missing)) => {
                self.send(peer, &NodeMessage::Request(missing));
            }
            _ => {}
        }
    }

    fn maybe_advance(&mut self) {
        let quorum = self.config.setup.committee().quorum_threshold();
        while self.store.authorities_at_round(self.round).len() >= quorum
            && self.last_production.elapsed() >= self.config.min_round_interval
        {
            let next = self.round + 1;
            self.produce(next);
            self.round = next;
            self.last_production = Instant::now();
        }
    }

    fn produce(&mut self, round: Round) {
        let authority = self.config.authority;
        let own_previous = self
            .store
            .blocks_in_slot(mahimahi_types::Slot::new(round - 1, authority))
            .first()
            .map(|block| block.reference())
            .expect("own chain extends round by round");
        let mut parents = vec![own_previous];
        let mut seen: HashSet<BlockRef> = parents.iter().copied().collect();
        for block in self.store.blocks_at_round(round - 1) {
            let reference = block.reference();
            if seen.insert(reference) {
                parents.push(reference);
            }
        }
        for &reference in &self.unreferenced {
            if reference.round < round - 1 && seen.insert(reference) {
                parents.push(reference);
            }
        }
        let take = self.tx_queue.len().min(self.config.max_block_transactions);
        let transactions: Vec<Transaction> = self.tx_queue.drain(..take).collect();
        let block = BlockBuilder::new(authority, round)
            .parents(parents)
            .transactions(transactions)
            .build_with(
                self.config.setup.keypair(authority),
                self.config.setup.coin_secret(authority),
            )
            .into_arc();
        // Durability before dissemination (crash recovery resumes from the
        // produced block, preventing accidental equivocation).
        let _ = self.wal.append(&block.as_ref().to_bytes_vec());
        let _ = self.wal.sync();
        if let Ok(InsertResult::Inserted(admitted)) = self.store.insert(block.clone()) {
            for reference in admitted {
                note_admitted(&mut self.unreferenced, &self.store, reference);
            }
        }
        self.transport
            .broadcast(NodeMessage::Block(block).to_bytes_vec());
    }

    fn send(&self, peer: u32, message: &NodeMessage) {
        self.transport.send(peer, message.to_bytes_vec());
    }
}

fn note_admitted(unreferenced: &mut BTreeSet<BlockRef>, store: &BlockStore, reference: BlockRef) {
    if let Some(block) = store.get(&reference) {
        for parent in block.parents() {
            unreferenced.remove(parent);
        }
    }
    unreferenced.insert(reference);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_restores_rounds_from_wal() {
        let dir = std::env::temp_dir().join(format!("mahimahi-node-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("v0.wal");
        let setup = TestCommittee::new(4, 5);

        // Build a few rounds worth of blocks and log them as a node would.
        {
            let mut dag = mahimahi_dag::DagBuilder::new(setup.clone());
            dag.add_full_rounds(3);
            let mut wal = FileWal::open_path(&wal_path).unwrap();
            for block in dag.store().iter() {
                if block.round() > 0 {
                    wal.append(&block.as_ref().to_bytes_vec()).unwrap();
                }
            }
            wal.sync().unwrap();
        }

        let transport = Transport::bind(0, "127.0.0.1:0").unwrap();
        let mut config = NodeConfig::local(0, setup);
        config.wal_path = Some(wal_path);
        let node = ValidatorNode::new(config, transport).unwrap();
        assert_eq!(node.store().highest_round(), 3);
        assert_eq!(node.round(), 3, "own round recovered");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_node_starts_at_round_zero() {
        let setup = TestCommittee::new(4, 5);
        let transport = Transport::bind(1, "127.0.0.1:0").unwrap();
        let node = ValidatorNode::new(NodeConfig::local(1, setup), transport).unwrap();
        assert_eq!(node.round(), 0);
        assert_eq!(node.store().highest_round(), 0);
    }

    #[test]
    fn corrupt_wal_records_are_skipped() {
        let setup = TestCommittee::new(4, 5);
        let storage = MemStorage::new();
        {
            let mut wal: Wal<MemStorage> = Wal::open(storage.clone()).unwrap();
            wal.append(b"not a block").unwrap();
        }
        // An in-memory WAL cannot be handed to the node directly (it opens
        // its own), so this exercises the decode-failure path through a
        // file WAL instead.
        let dir = std::env::temp_dir().join(format!("mahimahi-node-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("bad.wal");
        {
            let mut wal = FileWal::open_path(&wal_path).unwrap();
            wal.append(b"garbage record").unwrap();
            wal.sync().unwrap();
        }
        let transport = Transport::bind(2, "127.0.0.1:0").unwrap();
        let mut config = NodeConfig::local(2, setup);
        config.wal_path = Some(wal_path);
        let node = ValidatorNode::new(config, transport).unwrap();
        assert_eq!(node.store().highest_round(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
        drop(storage);
    }
}
