//! The networked validator: a thin transport/WAL/clock shell over the
//! shared sans-I/O engine.
//!
//! All consensus logic — DAG admission, synchronization, round pacing,
//! block production, the commit rule, evidence handling — lives in the
//! shared [`ValidatorEngine`] (`mahimahi-core`), the same state machine
//! the simulator drives. This shell only maps engine effects onto the
//! real world:
//!
//! - [`Output::Broadcast`]/[`Output::SendTo`] → the length-prefixed TCP
//!   [`Transport`];
//! - [`Output::Persist`] → the write-ahead log (own blocks and evidence
//!   are fsynced before dissemination: crash recovery must never cause
//!   accidental equivocation or lose a conviction);
//! - [`Output::Committed`] → the application's commit channel;
//! - time → [`Input::TimerFired`] from an `Instant`-derived microsecond
//!   counter, fed once per poll-loop iteration (which bounds every
//!   [`Output::WakeAt`] request by the 2 ms poll timeout).
//!
//! Recovery replays the WAL's [`WalRecord`]s into the engine before the
//! first input: blocks rebuild the DAG and the produced-round watermark,
//! evidence records restore convictions.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use mahimahi_core::{
    engine::{EngineConfig, Input, Time as EngineTime},
    AdmissionConfig, AdmissionPipeline, CommittedSubDag, Committer, CommitterOptions, EvidencePool,
    IngressConfig, MempoolConfig, Output, SequencerSnapshot, TxIntegrityReport, ValidatorEngine,
    WalRecord,
};
use mahimahi_dag::BlockStore;
use mahimahi_transport::Transport;
use mahimahi_types::{
    AuthorityIndex, Committee, Decode, Encode, Envelope, Round, TestCommittee, Transaction,
    TxReceipt, Verified,
};
use mahimahi_wal::{FileWal, MemStorage, Wal};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on frames handled per event-loop iteration, so a flooding
/// peer cannot starve the timer tick (production pacing, wake-ups).
const MAX_FRAMES_PER_ITERATION: usize = 128;

/// A recorded engine interaction: the input handled and the `Debug`
/// rendering of the outputs it produced — the exact artifact the
/// trace-replay test compares against a fresh engine.
pub type RecordedStep = (Input, String);

/// Configuration of one networked validator.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's authority index.
    pub authority: AuthorityIndex,
    /// Committee provisioning. A production deployment would hand each node
    /// only its own secrets; the test committee carries them all (the node
    /// uses only its own).
    pub setup: TestCommittee,
    /// Committer parameters (wave length, leaders per round).
    pub options: CommitterOptions,
    /// Write-ahead log path; `None` uses a volatile in-memory log.
    pub wal_path: Option<PathBuf>,
    /// Mempool bounds and per-block payload budget: pool capacity in
    /// transactions and bytes, plus the `max_block_txs`/`max_block_bytes`
    /// drained into each produced block (see
    /// [`MempoolConfig`]). Submissions past the capacity are rejected with
    /// `SubmitResult::Full` instead of growing the queue.
    pub mempool: MempoolConfig,
    /// Client-ingress policy: per-client token buckets, the fair-queue
    /// admission order, and age-based mempool forwarding (see
    /// [`IngressConfig`]). The default is fully permissive — no rate
    /// limit, no forwarding — matching the pre-ingress behavior.
    pub ingress: IngressConfig,
    /// Record every engine [`Input`] and the `Debug` rendering of its
    /// outputs while the node runs (retrieved with
    /// [`NodeHandle::stop_into_trace`]). Off by default — the buffer grows
    /// with the run; it exists for the determinism-contract replay tests.
    pub record_trace: bool,
    /// Minimum spacing between produced rounds (pacing; localhost clusters
    /// would otherwise spin thousands of rounds per second).
    pub min_round_interval: Duration,
    /// How long to keep collecting previous-round blocks after the quorum
    /// arrived before producing the next round — the simulator's
    /// post-quorum pacing knob, exposed here so both drivers configure the
    /// engine identically. Zero (the default) advances at quorum.
    pub inclusion_wait: Duration,
    /// Garbage-collection depth: blocks more than this many rounds below
    /// the commit frontier are deterministically excluded from commits and
    /// periodically dropped from memory. `None` disables GC.
    pub gc_depth: Option<u64>,
    /// Sequencing decisions between signed checkpoints (`0` disables
    /// checkpointing). Each checkpoint is persisted durably and, when
    /// `gc_depth` is set, triggers WAL compaction below the checkpointed
    /// frontier — see [`EngineConfig::checkpoint_interval`] for the safety
    /// contract.
    pub checkpoint_interval: u64,
    /// Verify-stage worker threads for the admission pipeline. `0` checks
    /// signatures and proofs inline on the event-loop thread (the pre-split
    /// behavior); higher values decode and verify incoming frames in
    /// parallel while the apply stage stays sequential and deterministic.
    pub verify_workers: usize,
    /// Bound on inputs in flight inside the verify stage. When the bound is
    /// reached the event loop stops pulling frames from the transport —
    /// backpressure propagates to the peer's TCP connection rather than
    /// growing an unbounded local queue.
    pub verify_queue_bound: usize,
}

impl NodeConfig {
    /// A sensible localhost configuration.
    pub fn local(authority: u32, setup: TestCommittee) -> Self {
        NodeConfig {
            authority: AuthorityIndex(authority),
            setup,
            options: CommitterOptions::default(),
            wal_path: None,
            mempool: MempoolConfig {
                max_block_txs: 1_000,
                ..MempoolConfig::default()
            },
            ingress: IngressConfig::default(),
            record_trace: false,
            min_round_interval: Duration::from_millis(2),
            inclusion_wait: Duration::ZERO,
            gc_depth: Some(128),
            checkpoint_interval: 32,
            verify_workers: 2,
            verify_queue_bound: 1024,
        }
    }

    /// The engine configuration both this node and the test harnesses
    /// derive from these parameters — public so replay tests can construct
    /// a fresh engine identical to the one a recorded node ran.
    pub fn engine_config(&self) -> EngineConfig {
        let mut config = EngineConfig::new(self.authority, self.setup.clone());
        config.mempool = self.mempool;
        config.ingress = self.ingress;
        config.min_round_interval = self.min_round_interval.as_micros() as EngineTime;
        config.inclusion_wait = self.inclusion_wait.as_micros() as EngineTime;
        config.gc_depth = self.gc_depth;
        config.checkpoint_interval = self.checkpoint_interval;
        config
    }
}

/// Mempool/ingress gauges exported by a running node, updated once per
/// event-loop iteration (lock-free reads for load generators and
/// monitoring).
#[derive(Debug, Default)]
pub struct MempoolGauges {
    accepted: AtomicU64,
    rejected_duplicate: AtomicU64,
    rejected_full: AtomicU64,
    rejected_rate_limited: AtomicU64,
    forwarded: AtomicU64,
    pending: AtomicU64,
    peak_occupancy: AtomicU64,
}

impl MempoolGauges {
    fn update(&self, report: &TxIntegrityReport) {
        self.accepted.store(report.accepted, Ordering::Relaxed);
        self.rejected_duplicate
            .store(report.rejected_duplicate, Ordering::Relaxed);
        self.rejected_full
            .store(report.rejected_full, Ordering::Relaxed);
        self.rejected_rate_limited
            .store(report.rejected_rate_limited, Ordering::Relaxed);
        self.forwarded.store(report.forwarded, Ordering::Relaxed);
        self.pending.store(report.pending, Ordering::Relaxed);
        self.peak_occupancy
            .store(report.peak_occupancy_txs, Ordering::Relaxed);
    }

    /// Transactions accepted into the pool so far.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Submissions rejected as digest duplicates so far.
    pub fn rejected_duplicate(&self) -> u64 {
        self.rejected_duplicate.load(Ordering::Relaxed)
    }

    /// Submissions rejected for capacity (`SubmitResult::Full`) so far.
    pub fn rejected_full(&self) -> u64 {
        self.rejected_full.load(Ordering::Relaxed)
    }

    /// Submissions bounced by the per-client rate limiter so far.
    pub fn rejected_rate_limited(&self) -> u64 {
        self.rejected_rate_limited.load(Ordering::Relaxed)
    }

    /// Transactions handed to a peer by age-based mempool forwarding.
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Transactions currently pending inclusion.
    pub fn pending(&self) -> u64 {
        self.pending.load(Ordering::Relaxed)
    }

    /// Peak pool occupancy (transactions) observed so far.
    pub fn peak_occupancy(&self) -> u64 {
        self.peak_occupancy.load(Ordering::Relaxed)
    }
}

/// Verify-stage gauges exported by a running node, updated once per
/// event-loop iteration (lock-free reads for load generators and
/// monitoring).
#[derive(Debug, Default)]
pub struct VerifyGauges {
    depth: AtomicU64,
    peak_depth: AtomicU64,
    verified: AtomicU64,
    rejected: AtomicU64,
}

impl VerifyGauges {
    fn update(&self, pipeline: &AdmissionPipeline) {
        self.depth.store(pipeline.depth() as u64, Ordering::Relaxed);
        self.peak_depth
            .store(pipeline.peak_depth() as u64, Ordering::Relaxed);
        self.verified.store(pipeline.verified(), Ordering::Relaxed);
        self.rejected.store(pipeline.rejected(), Ordering::Relaxed);
    }

    /// Inputs currently in flight inside the verify stage.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// High-water mark of the verify-stage depth.
    pub fn peak_depth(&self) -> u64 {
        self.peak_depth.load(Ordering::Relaxed)
    }

    /// Inputs that passed verification and reached the engine.
    pub fn verified(&self) -> u64 {
        self.verified.load(Ordering::Relaxed)
    }

    /// Inputs the verify stage dropped (undecodable frames, invalid
    /// signatures or proofs).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

/// Handle to a running [`ValidatorNode`].
pub struct NodeHandle {
    /// Committed sub-DAGs, in commit order.
    commits: Receiver<CommittedSubDag>,
    /// Receipts for batches submitted through this handle (the local twin
    /// of the receipt frames wire clients receive).
    receipts: Receiver<TxReceipt>,
    transactions: Sender<Vec<Transaction>>,
    stop: Arc<AtomicBool>,
    round: Arc<AtomicU64>,
    gauges: Arc<MempoolGauges>,
    verify: Arc<VerifyGauges>,
    trace: Option<Arc<Mutex<Vec<RecordedStep>>>>,
    join: Option<JoinHandle<()>>,
}

impl NodeHandle {
    /// The stream of committed sub-DAGs.
    pub fn commits(&self) -> &Receiver<CommittedSubDag> {
        &self.commits
    }

    /// The stream of receipts for batches submitted through this handle:
    /// one `Admission` receipt per [`Self::submit_batch`], then `Committed`
    /// notices as the accepted transactions are sequenced — the exact
    /// frames a wire client would receive.
    pub fn receipts(&self) -> &Receiver<TxReceipt> {
        &self.receipts
    }

    /// Submits a client transaction to this validator.
    pub fn submit(&self, transaction: Transaction) {
        self.submit_batch(vec![transaction]);
    }

    /// Submits a client transaction batch to this validator — the same
    /// ingestion vocabulary as the wire's `Envelope::TxBatch` frame (the
    /// run loop feeds both through `Input::TxBatchReceived`).
    pub fn submit_batch(&self, batch: Vec<Transaction>) {
        if batch.is_empty() {
            return;
        }
        let _ = self.transactions.send(batch);
    }

    /// The node's current round (last produced).
    pub fn round(&self) -> Round {
        self.round.load(Ordering::SeqCst)
    }

    /// Mempool/ingress gauges (occupancy, acceptance and rejection
    /// counters), refreshed once per event-loop iteration.
    pub fn mempool_gauges(&self) -> &MempoolGauges {
        &self.gauges
    }

    /// Verify-stage gauges (pipeline depth, peak depth, verified/rejected
    /// counters), refreshed once per event-loop iteration.
    pub fn verify_gauges(&self) -> &VerifyGauges {
        &self.verify
    }

    /// Stops the node and waits for its thread to exit.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// Stops the node and returns the recorded engine trace (every
    /// [`Input`] handled, with the `Debug` rendering of its outputs), if
    /// the node was started with [`NodeConfig::record_trace`].
    pub fn stop_into_trace(mut self) -> Option<Vec<RecordedStep>> {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        let trace = self.trace.take()?;
        let steps = std::mem::take(&mut *trace.lock());
        Some(steps)
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

enum AnyWal {
    File(FileWal),
    Memory(Wal<MemStorage>),
}

impl AnyWal {
    fn append(&mut self, payload: &[u8]) -> Result<u64, mahimahi_wal::WalError> {
        match self {
            AnyWal::File(wal) => wal.append(payload),
            AnyWal::Memory(wal) => wal.append(payload),
        }
    }

    fn sync(&mut self) -> Result<(), mahimahi_wal::WalError> {
        match self {
            AnyWal::File(wal) => wal.sync(),
            AnyWal::Memory(wal) => wal.sync(),
        }
    }

    fn records(&mut self) -> Result<Vec<mahimahi_wal::Record>, mahimahi_wal::WalError> {
        match self {
            AnyWal::File(wal) => wal.records(),
            AnyWal::Memory(wal) => wal.records(),
        }
    }

    /// Replaces the whole log with `payloads` — crash-atomically for file
    /// logs (temp file + rename + directory fsync), in place for memory
    /// logs (which have no crash to survive).
    fn rewrite(&mut self, payloads: &[Vec<u8>]) -> Result<(), mahimahi_wal::WalError> {
        match self {
            AnyWal::File(wal) => wal.rewrite_atomic(payloads),
            AnyWal::Memory(wal) => wal.rewrite(payloads),
        }
    }
}

/// The store-compaction floor a persisted checkpoint implies: decodes the
/// record's sequencer snapshot and applies the GC depth. `None` if the
/// snapshot does not decode (never truncate on a parse failure).
fn checkpoint_floor(resume: &[u8], gc_depth: u64) -> Option<Round> {
    let snapshot = SequencerSnapshot::from_bytes_exact(resume).ok()?;
    let floor = snapshot.next_round.saturating_sub(gc_depth);
    (floor > 0).then_some(floor)
}

/// A networked Mahi-Mahi validator.
pub struct ValidatorNode {
    authority: AuthorityIndex,
    transport: Transport,
    engine: ValidatorEngine,
    /// Committee copy for the verify workers (stateless checks only).
    committee: Committee,
    /// Verify-stage sizing, forwarded to the [`AdmissionPipeline`].
    admission: AdmissionConfig,
    wal: AnyWal,
    /// Deferred WAL fsync: set by a durable Persist, flushed before the
    /// next network send (durability-before-dissemination) or at the end
    /// of the batch.
    pending_sync: bool,
    /// Input/output recording (determinism-contract replay tests).
    trace: Option<Arc<Mutex<Vec<RecordedStep>>>>,
}

impl ValidatorNode {
    /// Creates the node over an already-bound transport, replaying the WAL
    /// (if any) to recover the DAG and the recorded convictions.
    ///
    /// # Errors
    ///
    /// Propagates WAL I/O failures.
    pub fn new(config: NodeConfig, transport: Transport) -> Result<Self, mahimahi_wal::WalError> {
        let committee = config.setup.committee().clone();
        let committer = Committer::new(committee, config.options);
        let mut engine = ValidatorEngine::honest(config.engine_config(), Box::new(committer));

        let mut wal = match &config.wal_path {
            Some(path) => AnyWal::File(FileWal::open_path(path)?),
            None => AnyWal::Memory(Wal::open(MemStorage::new())?),
        };

        // Recovery: replay every decodable record in log order. The
        // engine's pending buffer tolerates out-of-order blocks (e.g.
        // after a torn tail elsewhere in the causal history); evidence
        // records restore convictions so slashing state survives crashes.
        // Logs written before the tagged WalRecord framing held raw Block
        // encodings; fall back to that so an upgraded node never forgets
        // rounds it already broadcast (re-producing them under different
        // parents would be accidental equivocation).
        for record in wal.records()? {
            match WalRecord::from_bytes_exact(&record.payload) {
                Ok(WalRecord::Block(block)) => engine.restore_block(block),
                Ok(WalRecord::Evidence(proof)) => engine.restore_evidence(proof),
                // A checkpoint record jumps the execution and sequencer
                // state to its cut: the blocks the compacted log no longer
                // holds are never needed again.
                Ok(WalRecord::Checkpoint {
                    checkpoint,
                    execution,
                    resume,
                }) => {
                    engine.restore_checkpoint(checkpoint, execution, resume);
                }
                Err(_) => match mahimahi_types::Block::from_bytes_exact(&record.payload) {
                    Ok(block) => engine.restore_block(block.into_arc()),
                    Err(_) => continue, // corrupt or foreign record: skip
                },
            }
        }

        Ok(ValidatorNode {
            authority: config.authority,
            transport,
            engine,
            committee: config.setup.committee().clone(),
            admission: AdmissionConfig {
                verify_workers: config.verify_workers,
                queue_bound: config.verify_queue_bound,
            },
            wal,
            pending_sync: false,
            trace: config
                .record_trace
                .then(|| Arc::new(Mutex::new(Vec::new()))),
        })
    }

    /// The node's local DAG (inspection).
    pub fn store(&self) -> &BlockStore {
        self.engine.store()
    }

    /// The shared engine this shell drives (inspection).
    pub fn engine(&self) -> &ValidatorEngine {
        &self.engine
    }

    /// The evidence pool (verified convictions, slashing hooks).
    pub fn evidence(&self) -> &EvidencePool {
        self.engine.evidence()
    }

    /// The authorities this node has convicted of equivocation, in index
    /// order (restored from the WAL after a restart).
    pub fn convicted(&self) -> Vec<AuthorityIndex> {
        self.engine.convicted()
    }

    /// The last produced round (0 after a fresh start).
    pub fn round(&self) -> Round {
        self.engine.round()
    }

    /// Spawns the protocol loop, returning the control handle.
    pub fn start(self) -> NodeHandle {
        let (commit_tx, commit_rx) = unbounded();
        let (receipt_tx, receipt_rx) = unbounded();
        let (tx_tx, tx_rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let round = Arc::new(AtomicU64::new(self.engine.round()));
        let gauges = Arc::new(MempoolGauges::default());
        let verify = Arc::new(VerifyGauges::default());
        let trace = self.trace.clone();
        let loop_stop = Arc::clone(&stop);
        let loop_round = Arc::clone(&round);
        let loop_gauges = Arc::clone(&gauges);
        let loop_verify = Arc::clone(&verify);
        let authority = self.authority;
        let join = std::thread::Builder::new()
            .name(format!("validator-{authority}"))
            .spawn(move || {
                self.run(
                    commit_tx,
                    receipt_tx,
                    tx_rx,
                    loop_stop,
                    loop_round,
                    loop_gauges,
                    loop_verify,
                )
            })
            .expect("spawn validator thread");
        NodeHandle {
            commits: commit_rx,
            receipts: receipt_rx,
            transactions: tx_tx,
            stop,
            round,
            gauges,
            verify,
            trace,
            join: Some(join),
        }
    }

    /// The event loop: per iteration, feed *all* ready inputs — one timer
    /// tick, every queued client batch, and every frame already received
    /// (bounded by [`MAX_FRAMES_PER_ITERATION`] and the verify queue
    /// bound) — through the admission pipeline, apply whatever verified
    /// inputs it releases (in submission order) as one output batch, then
    /// render that batch against the transport/WAL/commit channel once.
    ///
    /// The pipeline is the verify stage of the verify/apply split: frame
    /// decoding, signature checks, and coin-share proofs run on its worker
    /// threads ([`NodeConfig::verify_workers`]) while the engine — the
    /// apply stage — stays single-threaded and deterministic. Because the
    /// pipeline re-sequences results into submission order, the engine
    /// observes the same input stream a serial node would, minus the
    /// invalid inputs the verify stage drops. Batching also amortizes WAL
    /// fsyncs across the inputs of an iteration (the sync is still forced
    /// before any network send, so durability-before-dissemination holds).
    #[allow(clippy::too_many_arguments)]
    fn run(
        mut self,
        commits: Sender<CommittedSubDag>,
        receipts: Sender<TxReceipt>,
        transactions: Receiver<Vec<Transaction>>,
        stop: Arc<AtomicBool>,
        round: Arc<AtomicU64>,
        gauges: Arc<MempoolGauges>,
        verify: Arc<VerifyGauges>,
    ) {
        let mut pipeline = AdmissionPipeline::new(self.admission, self.committee.clone());
        let started = Instant::now();
        let client_from = self.authority.as_usize();
        // State-sync: ask the committee for its latest quorum-certified
        // checkpoint. A fresh or long-offline validator adopts any cut
        // ahead of its own frontier instead of replaying from genesis;
        // responses at or below the local frontier are simply rejected by
        // the engine, so the request is safe to send unconditionally.
        self.transport
            .broadcast(Envelope::CheckpointRequest.to_bytes_vec());
        while !stop.load(Ordering::SeqCst) {
            // Wait for one incoming frame (with a short poll timeout that
            // also serves every WakeAt the engine asked for).
            let first = match self
                .transport
                .incoming()
                .recv_timeout(Duration::from_millis(2))
            {
                Ok(frame) => Some(frame),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            };
            let now = started.elapsed().as_micros() as EngineTime;
            pipeline.submit(Input::TimerFired { now });
            // Drain client batches (enqueue-only inputs).
            loop {
                match transactions.try_recv() {
                    Ok(batch) => pipeline.submit(Input::TxBatchReceived {
                        from: client_from,
                        transactions: batch,
                    }),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return,
                }
            }
            // The blocking frame plus everything else already queued.
            // Decoding happens in the verify stage; when the pipeline is
            // at its bound, leave the rest in the transport channel —
            // that is the backpressure path toward the peer.
            let mut frame = first;
            let mut drained = 0;
            while let Some((peer, bytes)) = frame.take() {
                pipeline.submit_frame(peer as usize, bytes);
                drained += 1;
                if drained < MAX_FRAMES_PER_ITERATION && pipeline.has_capacity() {
                    frame = self.transport.incoming().try_recv().ok();
                }
            }
            // Apply every verified input the pipeline has released, in
            // submission order, and render the outputs once.
            let mut outputs = Vec::new();
            for input in pipeline.drain_ready() {
                self.handle_verified(input, &mut outputs);
            }
            if self.apply(outputs, &commits, &receipts).is_err() {
                return;
            }
            round.store(self.engine.round(), Ordering::SeqCst);
            gauges.update(&self.engine.tx_integrity());
            verify.update(&pipeline);
        }
        // Inputs still in flight inside the verify stage are dropped with
        // the pipeline: never applied, never traced.
        self.transport.shutdown();
    }

    /// Applies one verified input to the engine, recording the step when
    /// tracing. The trace records the *verified* inputs in sequenced
    /// order, so replaying it through the plain [`ValidatorEngine::handle`]
    /// path reproduces these outputs byte for byte.
    fn handle_verified(&mut self, input: Verified<Input>, outputs: &mut Vec<Output>) {
        if let Some(trace) = &self.trace {
            let recorded = input.get().clone();
            let produced = self.engine.handle_verified(input);
            trace.lock().push((recorded, format!("{produced:?}")));
            outputs.extend(produced);
        } else {
            outputs.extend(self.engine.handle_verified(input));
        }
    }

    /// Carries out engine effects against the transport, the WAL, and the
    /// commit channel. Durable WAL records (own blocks, convictions) defer
    /// their fsync until just before the next network send — or the end of
    /// the batch — so consecutive records share one sync without ever
    /// disseminating an unsynced own block. Errors only when the
    /// application hung up.
    fn apply(
        &mut self,
        outputs: Vec<Output>,
        commits: &Sender<CommittedSubDag>,
        receipts: &Sender<TxReceipt>,
    ) -> Result<(), ()> {
        for output in outputs {
            match output {
                Output::Broadcast(envelope) => {
                    self.flush_wal();
                    self.transport.broadcast(envelope.to_bytes_vec());
                }
                Output::SendTo(peer, envelope) => {
                    self.flush_wal();
                    self.transport.send(peer as u32, envelope.to_bytes_vec());
                }
                Output::Persist(record) => {
                    // Durability before dissemination: own blocks (the
                    // engine emits their Persist ahead of the Broadcast)
                    // and convictions are fsynced before anything else
                    // leaves this node; peers' blocks can be re-fetched,
                    // so their records ride the next sync. Checkpoints are
                    // durable too — the subsequent log truncation is only
                    // safe once the cut they carry is on disk.
                    let durable = match &record {
                        WalRecord::Block(block) => block.author() == self.authority,
                        WalRecord::Evidence(_) => true,
                        WalRecord::Checkpoint { .. } => true,
                    };
                    let compact_floor = match &record {
                        WalRecord::Checkpoint { resume, .. } => self
                            .engine
                            .config()
                            .gc_depth
                            .and_then(|depth| checkpoint_floor(resume, depth)),
                        _ => None,
                    };
                    let _ = self.wal.append(&record.to_bytes_vec());
                    self.pending_sync |= durable;
                    if let Some(floor) = compact_floor {
                        self.flush_wal();
                        self.compact_wal(floor);
                    }
                }
                Output::Committed(sub_dag) => {
                    if commits.send(sub_dag).is_err() {
                        return Err(());
                    }
                }
                Output::TxReceipt { peer, receipt } => {
                    if peer == self.authority.as_usize() {
                        // A batch submitted through the local NodeHandle
                        // (the run loop stamps those with this node's own
                        // index): the receipt goes to the handle's channel.
                        // A closed receiver means the application does not
                        // care — drop it, receipts are advisory.
                        let _ = receipts.send(receipt);
                    } else {
                        // A wire client's batch: the transport routes ids
                        // in the client range down the client's own
                        // connection (gone connections drop the frame).
                        self.flush_wal();
                        self.transport
                            .send(peer as u32, Envelope::TxReceipt(receipt).to_bytes_vec());
                    }
                }
                // The 2 ms poll loop revisits the engine well within any
                // requested wake-up; commit tags and conviction notices
                // have no node-side consumer beyond the gauges.
                // `TxRejected` is only produced by the `TxSubmitted` input
                // path, which this driver never feeds — both the local
                // handle and the wire submit batches, and batches answer
                // with `TxReceipt` verdicts instead.
                Output::WakeAt(_)
                | Output::TxsCommitted(_)
                | Output::Convicted(_)
                | Output::TxRejected { .. }
                | Output::CheckpointProduced(_) => {}
            }
        }
        self.flush_wal();
        Ok(())
    }

    /// Performs the deferred WAL fsync, if one is pending.
    fn flush_wal(&mut self) {
        if self.pending_sync {
            let _ = self.wal.sync();
            self.pending_sync = false;
        }
    }

    /// Truncates the WAL below a checkpointed commit frontier.
    ///
    /// Safe only because the checkpoint record that triggered it is
    /// already fsynced: recovery restores the checkpoint first and then
    /// replays the surviving records on top of it. The rewrite keeps
    ///
    /// - the *latest* checkpoint record (earlier ones are subsumed),
    /// - every evidence record (convictions must never expire),
    /// - every own-authored block (the produced-round watermark is the
    ///   equivocation guard and must survive any number of compactions),
    /// - peers' blocks at `round >= floor` (still referenced by the
    ///   post-checkpoint DAG), and
    /// - any record that fails to decode (never drop what we cannot
    ///   classify).
    fn compact_wal(&mut self, floor: Round) {
        let Ok(records) = self.wal.records() else {
            return;
        };
        let mut kept: Vec<Vec<u8>> = Vec::with_capacity(records.len());
        let mut last_checkpoint: Option<Vec<u8>> = None;
        for record in records {
            match WalRecord::from_bytes_exact(&record.payload) {
                Ok(WalRecord::Checkpoint { .. }) => {
                    last_checkpoint = Some(record.payload);
                }
                Ok(WalRecord::Block(block)) => {
                    if block.author() == self.authority || block.round() >= floor {
                        kept.push(record.payload);
                    }
                }
                Ok(WalRecord::Evidence(_)) | Err(_) => kept.push(record.payload),
            }
        }
        // The checkpoint leads the rewritten log so recovery installs it
        // before replaying the retained records.
        let mut payloads = Vec::with_capacity(kept.len() + 1);
        payloads.extend(last_checkpoint);
        payloads.extend(kept);
        let _ = self.wal.rewrite(&payloads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::NodeMessage;
    use mahimahi_types::EquivocationProof;

    fn wal_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mahimahi-node-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn conflicting_pair(setup: &TestCommittee, author: u32) -> EquivocationProof {
        EquivocationProof::synthetic(setup, AuthorityIndex(author))
    }

    #[test]
    fn recovery_restores_rounds_from_wal() {
        let dir = wal_dir("rounds");
        let wal_path = dir.join("v0.wal");
        let setup = TestCommittee::new(4, 5);

        // Build a few rounds worth of blocks and log them as a node would.
        {
            let mut dag = mahimahi_dag::DagBuilder::new(setup.clone());
            dag.add_full_rounds(3);
            let mut wal = FileWal::open_path(&wal_path).unwrap();
            for block in dag.store().iter() {
                if block.round() > 0 {
                    wal.append(&WalRecord::Block(block.clone()).to_bytes_vec())
                        .unwrap();
                }
            }
            wal.sync().unwrap();
        }

        let transport = Transport::bind(0, "127.0.0.1:0").unwrap();
        let mut config = NodeConfig::local(0, setup);
        config.wal_path = Some(wal_path);
        let node = ValidatorNode::new(config, transport).unwrap();
        assert_eq!(node.store().highest_round(), 3);
        assert_eq!(node.round(), 3, "own round recovered");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_reads_legacy_raw_block_wals() {
        // WALs written before the tagged WalRecord framing held raw Block
        // encodings; an upgraded node must still recover them (forgetting
        // broadcast rounds would cause accidental equivocation).
        let dir = wal_dir("legacy");
        let wal_path = dir.join("v0.wal");
        let setup = TestCommittee::new(4, 5);
        {
            let mut dag = mahimahi_dag::DagBuilder::new(setup.clone());
            dag.add_full_rounds(2);
            let mut wal = FileWal::open_path(&wal_path).unwrap();
            for block in dag.store().iter() {
                if block.round() > 0 {
                    wal.append(&block.as_ref().to_bytes_vec()).unwrap();
                }
            }
            wal.sync().unwrap();
        }
        let transport = Transport::bind(0, "127.0.0.1:0").unwrap();
        let mut config = NodeConfig::local(0, setup);
        config.wal_path = Some(wal_path);
        let node = ValidatorNode::new(config, transport).unwrap();
        assert_eq!(node.round(), 2, "legacy own rounds recovered");
        assert_eq!(node.store().highest_round(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_node_starts_at_round_zero() {
        let setup = TestCommittee::new(4, 5);
        let transport = Transport::bind(1, "127.0.0.1:0").unwrap();
        let node = ValidatorNode::new(NodeConfig::local(1, setup), transport).unwrap();
        assert_eq!(node.round(), 0);
        assert_eq!(node.store().highest_round(), 0);
    }

    #[test]
    fn corrupt_wal_records_are_skipped() {
        let setup = TestCommittee::new(4, 5);
        let dir = wal_dir("bad");
        let wal_path = dir.join("bad.wal");
        {
            let mut wal = FileWal::open_path(&wal_path).unwrap();
            wal.append(b"garbage record").unwrap();
            wal.sync().unwrap();
        }
        let transport = Transport::bind(2, "127.0.0.1:0").unwrap();
        let mut config = NodeConfig::local(2, setup);
        config.wal_path = Some(wal_path);
        let node = ValidatorNode::new(config, transport).unwrap();
        assert_eq!(node.store().highest_round(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evidence_received_on_the_wire_is_persisted_and_survives_restart() {
        // Feed an Evidence frame through the engine exactly as the run
        // loop would, applying the Persist outputs to a file WAL; a fresh
        // node over the same WAL must come up already convinced.
        let setup = TestCommittee::new(4, 5);
        let proof = conflicting_pair(&setup, 3);
        let dir = wal_dir("evidence");
        let wal_path = dir.join("v0.wal");

        {
            let transport = Transport::bind(0, "127.0.0.1:0").unwrap();
            let mut config = NodeConfig::local(0, setup.clone());
            config.wal_path = Some(wal_path.clone());
            let mut node = ValidatorNode::new(config, transport).unwrap();
            let (commit_tx, _commit_rx) = unbounded();
            let (receipt_tx, _receipt_rx) = unbounded();
            let outputs = node.engine.handle(Input::from_envelope(
                1,
                NodeMessage::Evidence(proof.clone()),
            ));
            assert!(
                outputs
                    .iter()
                    .any(|output| matches!(output, Output::Persist(WalRecord::Evidence(_)))),
                "conviction must be persisted: {outputs:?}"
            );
            node.apply(outputs, &commit_tx, &receipt_tx).unwrap();
            assert_eq!(node.convicted(), vec![AuthorityIndex(3)]);
        }

        let transport = Transport::bind(0, "127.0.0.1:0").unwrap();
        let mut config = NodeConfig::local(0, setup);
        config.wal_path = Some(wal_path);
        let recovered = ValidatorNode::new(config, transport).unwrap();
        assert_eq!(
            recovered.convicted(),
            vec![AuthorityIndex(3)],
            "conviction must survive the restart"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inclusion_wait_is_forwarded_to_the_engine() {
        let setup = TestCommittee::new(4, 5);
        let mut config = NodeConfig::local(3, setup);
        config.inclusion_wait = Duration::from_millis(40);
        assert_eq!(config.engine_config().inclusion_wait, 40_000);
        assert_eq!(config.engine_config().min_round_interval, 2_000);
    }
}
