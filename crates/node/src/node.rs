//! The networked validator: a thin transport/WAL/clock shell over the
//! shared sans-I/O engine.
//!
//! All consensus logic — DAG admission, synchronization, round pacing,
//! block production, the commit rule, evidence handling — lives in the
//! shared [`ValidatorEngine`] (`mahimahi-core`), the same state machine
//! the simulator drives. This shell only maps engine effects onto the
//! real world:
//!
//! - [`Output::Broadcast`]/[`Output::SendTo`] → the length-prefixed TCP
//!   [`Transport`];
//! - [`Output::Persist`] → the write-ahead log (own blocks and evidence
//!   are fsynced before dissemination: crash recovery must never cause
//!   accidental equivocation or lose a conviction);
//! - [`Output::Committed`] → the application's commit channel;
//! - time → [`Input::TimerFired`] from an `Instant`-derived microsecond
//!   counter, fed once per poll-loop iteration (which bounds every
//!   [`Output::WakeAt`] request by the 2 ms poll timeout).
//!
//! Recovery replays the WAL's [`WalRecord`]s into the engine before the
//! first input: blocks rebuild the DAG and the produced-round watermark,
//! evidence records restore convictions.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use mahimahi_core::{
    engine::{EngineConfig, Input, Time as EngineTime},
    AdmissionConfig, AdmissionPipeline, CommittedSubDag, Committer, CommitterOptions, EvidencePool,
    IngressConfig, MempoolConfig, Output, SequencerSnapshot, TxIntegrityReport, ValidatorEngine,
    WalRecord,
};
use mahimahi_dag::BlockStore;
use mahimahi_telemetry::{Gauge, Registry, Stage, StageSnapshot, StageStats};
use mahimahi_transport::Transport;
use mahimahi_types::{
    AuthorityIndex, Committee, Decode, Encode, Envelope, Round, TestCommittee, Transaction,
    TxReceipt, Verified,
};
use mahimahi_wal::{FileWal, MemStorage, Wal};
use parking_lot::Mutex;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on frames handled per event-loop iteration, so a flooding
/// peer cannot starve the timer tick (production pacing, wake-ups).
const MAX_FRAMES_PER_ITERATION: usize = 128;

/// A recorded engine interaction: the input handled and the `Debug`
/// rendering of the outputs it produced — the exact artifact the
/// trace-replay test compares against a fresh engine.
pub type RecordedStep = (Input, String);

/// Configuration of one networked validator.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's authority index.
    pub authority: AuthorityIndex,
    /// Committee provisioning. A production deployment would hand each node
    /// only its own secrets; the test committee carries them all (the node
    /// uses only its own).
    pub setup: TestCommittee,
    /// Committer parameters (wave length, leaders per round).
    pub options: CommitterOptions,
    /// Write-ahead log path; `None` uses a volatile in-memory log.
    pub wal_path: Option<PathBuf>,
    /// Mempool bounds and per-block payload budget: pool capacity in
    /// transactions and bytes, plus the `max_block_txs`/`max_block_bytes`
    /// drained into each produced block (see
    /// [`MempoolConfig`]). Submissions past the capacity are rejected with
    /// `SubmitResult::Full` instead of growing the queue.
    pub mempool: MempoolConfig,
    /// Client-ingress policy: per-client token buckets, the fair-queue
    /// admission order, and age-based mempool forwarding (see
    /// [`IngressConfig`]). The default is fully permissive — no rate
    /// limit, no forwarding — matching the pre-ingress behavior.
    pub ingress: IngressConfig,
    /// Record every engine [`Input`] and the `Debug` rendering of its
    /// outputs while the node runs (retrieved with
    /// [`NodeHandle::stop_into_trace`]). Off by default — the buffer grows
    /// with the run; it exists for the determinism-contract replay tests.
    pub record_trace: bool,
    /// Minimum spacing between produced rounds (pacing; localhost clusters
    /// would otherwise spin thousands of rounds per second).
    pub min_round_interval: Duration,
    /// How long to keep collecting previous-round blocks after the quorum
    /// arrived before producing the next round — the simulator's
    /// post-quorum pacing knob, exposed here so both drivers configure the
    /// engine identically. Zero (the default) advances at quorum.
    pub inclusion_wait: Duration,
    /// Garbage-collection depth: blocks more than this many rounds below
    /// the commit frontier are deterministically excluded from commits and
    /// periodically dropped from memory. `None` disables GC.
    pub gc_depth: Option<u64>,
    /// Sequencing decisions between signed checkpoints (`0` disables
    /// checkpointing). Each checkpoint is persisted durably and, when
    /// `gc_depth` is set, triggers WAL compaction below the checkpointed
    /// frontier — see [`EngineConfig::checkpoint_interval`] for the safety
    /// contract.
    pub checkpoint_interval: u64,
    /// Verify-stage worker threads for the admission pipeline. `0` checks
    /// signatures and proofs inline on the event-loop thread (the pre-split
    /// behavior); higher values decode and verify incoming frames in
    /// parallel while the apply stage stays sequential and deterministic.
    pub verify_workers: usize,
    /// Bound on inputs in flight inside the verify stage. When the bound is
    /// reached the event loop stops pulling frames from the transport —
    /// backpressure propagates to the peer's TCP connection rather than
    /// growing an unbounded local queue.
    pub verify_queue_bound: usize,
    /// Where to serve this node's metrics endpoint, or `None` (the default)
    /// to run without one. Binding `127.0.0.1:0` picks an ephemeral port;
    /// the bound address is available as [`NodeHandle::metrics_addr`]. The
    /// endpoint is a minimal HTTP server with two routes: `GET /metrics`
    /// returns the node's [`Registry`] in the Prometheus text exposition
    /// (commit-path stage histograms plus every mempool/verify/commit
    /// gauge), and `GET /status` returns a [`StatusReport`] as JSON. The
    /// server thread only *reads* lock-free metric handles — it cannot
    /// perturb the consensus loop, and a bind failure downgrades to running
    /// without the endpoint rather than failing the node.
    pub metrics_addr: Option<SocketAddr>,
}

impl NodeConfig {
    /// A sensible localhost configuration.
    pub fn local(authority: u32, setup: TestCommittee) -> Self {
        NodeConfig {
            authority: AuthorityIndex(authority),
            setup,
            options: CommitterOptions::default(),
            wal_path: None,
            mempool: MempoolConfig {
                max_block_txs: 1_000,
                ..MempoolConfig::default()
            },
            ingress: IngressConfig::default(),
            record_trace: false,
            min_round_interval: Duration::from_millis(2),
            inclusion_wait: Duration::ZERO,
            gc_depth: Some(128),
            checkpoint_interval: 32,
            verify_workers: 2,
            verify_queue_bound: 1024,
            metrics_addr: None,
        }
    }

    /// The engine configuration both this node and the test harnesses
    /// derive from these parameters — public so replay tests can construct
    /// a fresh engine identical to the one a recorded node ran.
    pub fn engine_config(&self) -> EngineConfig {
        let mut config = EngineConfig::new(self.authority, self.setup.clone());
        config.mempool = self.mempool;
        config.ingress = self.ingress;
        config.min_round_interval = self.min_round_interval.as_micros() as EngineTime;
        config.inclusion_wait = self.inclusion_wait.as_micros() as EngineTime;
        config.gc_depth = self.gc_depth;
        config.checkpoint_interval = self.checkpoint_interval;
        config
    }
}

/// Registry-backed node metrics, refreshed once per event-loop iteration
/// (lock-free reads for load generators and monitoring).
///
/// Every gauge lives in the node's [`Registry`], so in-process readers
/// (tests, the bench harness) and the HTTP metrics endpoint observe the
/// same values — there is no parallel set of ad-hoc atomics to keep in
/// sync. The same registry also holds the eight commit-path stage
/// histograms ([`StageStats`]).
pub struct NodeMetrics {
    registry: Arc<Registry>,
    round: Arc<Gauge>,
    highest_round: Arc<Gauge>,
    committed_slots: Arc<Gauge>,
    committed_transactions: Arc<Gauge>,
    convictions: Arc<Gauge>,
    mempool_accepted: Arc<Gauge>,
    mempool_rejected_duplicate: Arc<Gauge>,
    mempool_rejected_full: Arc<Gauge>,
    mempool_rejected_rate_limited: Arc<Gauge>,
    mempool_forwarded: Arc<Gauge>,
    mempool_pending: Arc<Gauge>,
    mempool_peak_occupancy: Arc<Gauge>,
    verify_depth: Arc<Gauge>,
    verify_peak_depth: Arc<Gauge>,
    verify_verified: Arc<Gauge>,
    verify_rejected: Arc<Gauge>,
    stage_stats: StageStats,
}

impl NodeMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        let gauge = |name, help| registry.gauge(name, help);
        NodeMetrics {
            stage_stats: StageStats::new(&registry),
            round: gauge("mahimahi_round", "Last produced DAG round"),
            highest_round: gauge("mahimahi_highest_round", "Highest round in the local DAG"),
            committed_slots: gauge("mahimahi_committed_slots", "Leader slots committed"),
            committed_transactions: gauge(
                "mahimahi_committed_transactions",
                "Transactions linearized into the committed order",
            ),
            convictions: gauge(
                "mahimahi_convictions",
                "Authorities convicted of equivocation",
            ),
            mempool_accepted: gauge(
                "mahimahi_mempool_accepted",
                "Transactions accepted into the pool",
            ),
            mempool_rejected_duplicate: gauge(
                "mahimahi_mempool_rejected_duplicate",
                "Submissions rejected as digest duplicates",
            ),
            mempool_rejected_full: gauge(
                "mahimahi_mempool_rejected_full",
                "Submissions rejected for pool capacity",
            ),
            mempool_rejected_rate_limited: gauge(
                "mahimahi_mempool_rejected_rate_limited",
                "Submissions bounced by the per-client rate limiter",
            ),
            mempool_forwarded: gauge(
                "mahimahi_mempool_forwarded",
                "Transactions handed to a peer by age-based forwarding",
            ),
            mempool_pending: gauge(
                "mahimahi_mempool_pending",
                "Transactions currently pending inclusion",
            ),
            mempool_peak_occupancy: gauge(
                "mahimahi_mempool_peak_occupancy",
                "Peak pool occupancy in transactions",
            ),
            verify_depth: gauge(
                "mahimahi_verify_depth",
                "Inputs in flight inside the verify stage",
            ),
            verify_peak_depth: gauge(
                "mahimahi_verify_peak_depth",
                "High-water mark of the verify-stage depth",
            ),
            verify_verified: gauge(
                "mahimahi_verify_verified",
                "Inputs that passed verification and reached the engine",
            ),
            verify_rejected: gauge(
                "mahimahi_verify_rejected",
                "Inputs dropped by the verify stage",
            ),
            registry,
        }
    }

    /// Refreshes the engine-derived gauges (rounds, commits, mempool).
    fn update_engine(&self, engine: &ValidatorEngine) {
        let report: TxIntegrityReport = engine.tx_integrity();
        self.round.set(engine.round());
        self.highest_round.set(engine.store().highest_round());
        self.committed_slots.set(engine.committed_slots());
        self.committed_transactions
            .set(engine.committed_transactions());
        self.convictions.set(engine.convicted().len() as u64);
        self.mempool_accepted.set(report.accepted);
        self.mempool_rejected_duplicate
            .set(report.rejected_duplicate);
        self.mempool_rejected_full.set(report.rejected_full);
        self.mempool_rejected_rate_limited
            .set(report.rejected_rate_limited);
        self.mempool_forwarded.set(report.forwarded);
        self.mempool_pending.set(report.pending);
        self.mempool_peak_occupancy.set(report.peak_occupancy_txs);
    }

    /// Refreshes the verify-stage gauges from the admission pipeline.
    fn update_pipeline(&self, pipeline: &AdmissionPipeline) {
        self.verify_depth.set(pipeline.depth() as u64);
        self.verify_peak_depth.set(pipeline.peak_depth() as u64);
        self.verify_verified.set(pipeline.verified());
        self.verify_rejected.set(pipeline.rejected());
    }

    /// The registry every metric of this node lives in (stage histograms
    /// included) — render it with [`Registry::render_prometheus`].
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Point-in-time copy of the eight commit-path stage histograms
    /// (mergeable across validators — see `StageSnapshot::merge`).
    pub fn stage_snapshot(&self) -> StageSnapshot {
        self.stage_stats.snapshot()
    }

    /// A point-in-time status summary (the `/status` endpoint's payload).
    pub fn status(&self) -> StatusReport {
        StatusReport {
            round: self.round.get(),
            highest_round: self.highest_round.get(),
            committed_slots: self.committed_slots.get(),
            committed_transactions: self.committed_transactions.get(),
            convictions: self.convictions.get(),
            mempool_pending: self.mempool_pending.get(),
            mempool_accepted: self.mempool_accepted.get(),
            verify_depth: self.verify_depth.get(),
        }
    }

    /// Last produced DAG round.
    pub fn round(&self) -> u64 {
        self.round.get()
    }

    /// Leader slots committed so far.
    pub fn committed_slots(&self) -> u64 {
        self.committed_slots.get()
    }

    /// Transactions accepted into the pool so far.
    pub fn accepted(&self) -> u64 {
        self.mempool_accepted.get()
    }

    /// Submissions rejected as digest duplicates so far.
    pub fn rejected_duplicate(&self) -> u64 {
        self.mempool_rejected_duplicate.get()
    }

    /// Submissions rejected for capacity (`SubmitResult::Full`) so far.
    pub fn rejected_full(&self) -> u64 {
        self.mempool_rejected_full.get()
    }

    /// Submissions bounced by the per-client rate limiter so far.
    pub fn rejected_rate_limited(&self) -> u64 {
        self.mempool_rejected_rate_limited.get()
    }

    /// Transactions handed to a peer by age-based mempool forwarding.
    pub fn forwarded(&self) -> u64 {
        self.mempool_forwarded.get()
    }

    /// Transactions currently pending inclusion.
    pub fn pending(&self) -> u64 {
        self.mempool_pending.get()
    }

    /// Peak pool occupancy (transactions) observed so far.
    pub fn peak_occupancy(&self) -> u64 {
        self.mempool_peak_occupancy.get()
    }

    /// Inputs currently in flight inside the verify stage.
    pub fn verify_depth(&self) -> u64 {
        self.verify_depth.get()
    }

    /// High-water mark of the verify-stage depth.
    pub fn verify_peak_depth(&self) -> u64 {
        self.verify_peak_depth.get()
    }

    /// Inputs that passed verification and reached the engine.
    pub fn verified(&self) -> u64 {
        self.verify_verified.get()
    }

    /// Inputs the verify stage dropped (undecodable frames, invalid
    /// signatures or proofs).
    pub fn rejected(&self) -> u64 {
        self.verify_rejected.get()
    }
}

impl std::fmt::Debug for NodeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeMetrics")
            .field("status", &self.status())
            .finish_non_exhaustive()
    }
}

/// A point-in-time node status summary, served as JSON by the metrics
/// endpoint's `GET /status` route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusReport {
    /// Last produced DAG round.
    pub round: u64,
    /// Highest round in the local DAG.
    pub highest_round: u64,
    /// Leader slots committed.
    pub committed_slots: u64,
    /// Transactions linearized into the committed order.
    pub committed_transactions: u64,
    /// Authorities convicted of equivocation.
    pub convictions: u64,
    /// Transactions currently pending inclusion.
    pub mempool_pending: u64,
    /// Transactions accepted into the pool so far.
    pub mempool_accepted: u64,
    /// Inputs in flight inside the verify stage.
    pub verify_depth: u64,
}

impl StatusReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"round\":{},\"highest_round\":{},\"committed_slots\":{},",
                "\"committed_transactions\":{},\"convictions\":{},",
                "\"mempool_pending\":{},\"mempool_accepted\":{},",
                "\"verify_depth\":{}}}"
            ),
            self.round,
            self.highest_round,
            self.committed_slots,
            self.committed_transactions,
            self.convictions,
            self.mempool_pending,
            self.mempool_accepted,
            self.verify_depth,
        )
    }
}

/// The metrics endpoint's accept loop: a deliberately minimal HTTP/1.1
/// server (request line + headers in, one response out, close). It reads
/// only lock-free metric handles, so a slow or hostile scraper can never
/// back-pressure consensus.
fn serve_metrics(listener: TcpListener, metrics: Arc<NodeMetrics>, stop: Arc<AtomicBool>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = answer_scrape(stream, &metrics);
            }
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
}

/// Serves one metrics-endpoint request (see [`NodeConfig::metrics_addr`]).
fn answer_scrape(mut stream: TcpStream, metrics: &NodeMetrics) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut request = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        request.extend_from_slice(&buf[..n]);
        if request.windows(4).any(|w| w == b"\r\n\r\n") || request.len() > 8192 {
            break;
        }
    }
    let first_line = String::from_utf8_lossy(&request);
    let path = first_line
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            metrics.registry().render_prometheus(),
        ),
        "/status" => ("200 OK", "application/json", metrics.status().to_json()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

/// Handle to a running [`ValidatorNode`].
pub struct NodeHandle {
    /// Committed sub-DAGs, in commit order.
    commits: Receiver<CommittedSubDag>,
    /// Receipts for batches submitted through this handle (the local twin
    /// of the receipt frames wire clients receive).
    receipts: Receiver<TxReceipt>,
    transactions: Sender<Vec<Transaction>>,
    stop: Arc<AtomicBool>,
    metrics: Arc<NodeMetrics>,
    metrics_addr: Option<SocketAddr>,
    trace: Option<Arc<Mutex<Vec<RecordedStep>>>>,
    join: Option<JoinHandle<()>>,
    metrics_join: Option<JoinHandle<()>>,
}

impl NodeHandle {
    /// The stream of committed sub-DAGs.
    pub fn commits(&self) -> &Receiver<CommittedSubDag> {
        &self.commits
    }

    /// The stream of receipts for batches submitted through this handle:
    /// one `Admission` receipt per [`Self::submit_batch`], then `Committed`
    /// notices as the accepted transactions are sequenced — the exact
    /// frames a wire client would receive.
    pub fn receipts(&self) -> &Receiver<TxReceipt> {
        &self.receipts
    }

    /// Submits a client transaction to this validator.
    pub fn submit(&self, transaction: Transaction) {
        self.submit_batch(vec![transaction]);
    }

    /// Submits a client transaction batch to this validator — the same
    /// ingestion vocabulary as the wire's `Envelope::TxBatch` frame (the
    /// run loop feeds both through `Input::TxBatchReceived`).
    pub fn submit_batch(&self, batch: Vec<Transaction>) {
        if batch.is_empty() {
            return;
        }
        let _ = self.transactions.send(batch);
    }

    /// The node's current round (last produced), refreshed once per
    /// event-loop iteration.
    pub fn round(&self) -> Round {
        self.metrics.round()
    }

    /// The node's registry-backed metrics: mempool/ingress occupancy and
    /// rejection gauges, verify-stage depth, commit progress — refreshed
    /// once per event-loop iteration, read lock-free.
    pub fn metrics(&self) -> &NodeMetrics {
        &self.metrics
    }

    /// The bound address of the node's metrics endpoint, when
    /// [`NodeConfig::metrics_addr`] was set and the bind succeeded.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Stops the node and waits for its thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Stops the node and returns the recorded engine trace (every
    /// [`Input`] handled, with the `Debug` rendering of its outputs), if
    /// the node was started with [`NodeConfig::record_trace`].
    pub fn stop_into_trace(mut self) -> Option<Vec<RecordedStep>> {
        self.shutdown();
        let trace = self.trace.take()?;
        let steps = std::mem::take(&mut *trace.lock());
        Some(steps)
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        if let Some(join) = self.metrics_join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

enum AnyWal {
    File(FileWal),
    Memory(Wal<MemStorage>),
}

impl AnyWal {
    fn append(&mut self, payload: &[u8]) -> Result<u64, mahimahi_wal::WalError> {
        match self {
            AnyWal::File(wal) => wal.append(payload),
            AnyWal::Memory(wal) => wal.append(payload),
        }
    }

    fn sync(&mut self) -> Result<(), mahimahi_wal::WalError> {
        match self {
            AnyWal::File(wal) => wal.sync(),
            AnyWal::Memory(wal) => wal.sync(),
        }
    }

    fn records(&mut self) -> Result<Vec<mahimahi_wal::Record>, mahimahi_wal::WalError> {
        match self {
            AnyWal::File(wal) => wal.records(),
            AnyWal::Memory(wal) => wal.records(),
        }
    }

    /// Replaces the whole log with `payloads` — crash-atomically for file
    /// logs (temp file + rename + directory fsync), in place for memory
    /// logs (which have no crash to survive).
    fn rewrite(&mut self, payloads: &[Vec<u8>]) -> Result<(), mahimahi_wal::WalError> {
        match self {
            AnyWal::File(wal) => wal.rewrite_atomic(payloads),
            AnyWal::Memory(wal) => wal.rewrite(payloads),
        }
    }
}

/// The store-compaction floor a persisted checkpoint implies: decodes the
/// record's sequencer snapshot and applies the GC depth. `None` if the
/// snapshot does not decode (never truncate on a parse failure).
fn checkpoint_floor(resume: &[u8], gc_depth: u64) -> Option<Round> {
    let snapshot = SequencerSnapshot::from_bytes_exact(resume).ok()?;
    let floor = snapshot.next_round.saturating_sub(gc_depth);
    (floor > 0).then_some(floor)
}

/// A networked Mahi-Mahi validator.
pub struct ValidatorNode {
    authority: AuthorityIndex,
    transport: Transport,
    engine: ValidatorEngine,
    /// Committee copy for the verify workers (stateless checks only).
    committee: Committee,
    /// Verify-stage sizing, forwarded to the [`AdmissionPipeline`].
    admission: AdmissionConfig,
    wal: AnyWal,
    /// Deferred WAL fsync: set by a durable Persist, flushed before the
    /// next network send (durability-before-dissemination) or at the end
    /// of the batch.
    pending_sync: bool,
    /// Registry-backed gauges, refreshed once per event-loop iteration.
    metrics: Arc<NodeMetrics>,
    /// Commit-path stage histograms: this clone records the driver-side
    /// boundaries (ingress, verify, resequence); a second clone is the
    /// engine's telemetry sink.
    stage_stats: StageStats,
    /// Requested metrics-endpoint address ([`NodeConfig::metrics_addr`]).
    metrics_addr: Option<SocketAddr>,
    /// Input/output recording (determinism-contract replay tests).
    trace: Option<Arc<Mutex<Vec<RecordedStep>>>>,
}

impl ValidatorNode {
    /// Creates the node over an already-bound transport, replaying the WAL
    /// (if any) to recover the DAG and the recorded convictions.
    ///
    /// # Errors
    ///
    /// Propagates WAL I/O failures.
    pub fn new(config: NodeConfig, transport: Transport) -> Result<Self, mahimahi_wal::WalError> {
        let committee = config.setup.committee().clone();
        let committer = Committer::new(committee, config.options);
        let mut engine = ValidatorEngine::honest(config.engine_config(), Box::new(committer));

        let mut wal = match &config.wal_path {
            Some(path) => AnyWal::File(FileWal::open_path(path)?),
            None => AnyWal::Memory(Wal::open(MemStorage::new())?),
        };

        // Recovery: replay every decodable record in log order. The
        // engine's pending buffer tolerates out-of-order blocks (e.g.
        // after a torn tail elsewhere in the causal history); evidence
        // records restore convictions so slashing state survives crashes.
        // Logs written before the tagged WalRecord framing held raw Block
        // encodings; fall back to that so an upgraded node never forgets
        // rounds it already broadcast (re-producing them under different
        // parents would be accidental equivocation).
        for record in wal.records()? {
            match WalRecord::from_bytes_exact(&record.payload) {
                Ok(WalRecord::Block(block)) => engine.restore_block(block),
                Ok(WalRecord::Evidence(proof)) => engine.restore_evidence(proof),
                // A checkpoint record jumps the execution and sequencer
                // state to its cut: the blocks the compacted log no longer
                // holds are never needed again.
                Ok(WalRecord::Checkpoint {
                    checkpoint,
                    execution,
                    resume,
                }) => {
                    engine.restore_checkpoint(checkpoint, execution, resume);
                }
                Err(_) => match mahimahi_types::Block::from_bytes_exact(&record.payload) {
                    Ok(block) => engine.restore_block(block.into_arc()),
                    Err(_) => continue, // corrupt or foreign record: skip
                },
            }
        }

        // One registry per node: the gauges below, the eight stage
        // histograms, and the engine's telemetry sink all render through
        // the same `/metrics` exposition.
        let registry = Arc::new(Registry::new());
        let metrics = Arc::new(NodeMetrics::new(Arc::clone(&registry)));
        let stage_stats = StageStats::new(&registry);
        engine.set_telemetry(Arc::new(stage_stats.clone()));
        metrics.update_engine(&engine);

        Ok(ValidatorNode {
            authority: config.authority,
            transport,
            engine,
            committee: config.setup.committee().clone(),
            admission: AdmissionConfig {
                verify_workers: config.verify_workers,
                queue_bound: config.verify_queue_bound,
            },
            wal,
            pending_sync: false,
            metrics,
            stage_stats,
            metrics_addr: config.metrics_addr,
            trace: config
                .record_trace
                .then(|| Arc::new(Mutex::new(Vec::new()))),
        })
    }

    /// The node's local DAG (inspection).
    pub fn store(&self) -> &BlockStore {
        self.engine.store()
    }

    /// The shared engine this shell drives (inspection).
    pub fn engine(&self) -> &ValidatorEngine {
        &self.engine
    }

    /// The evidence pool (verified convictions, slashing hooks).
    pub fn evidence(&self) -> &EvidencePool {
        self.engine.evidence()
    }

    /// The authorities this node has convicted of equivocation, in index
    /// order (restored from the WAL after a restart).
    pub fn convicted(&self) -> Vec<AuthorityIndex> {
        self.engine.convicted()
    }

    /// The last produced round (0 after a fresh start).
    pub fn round(&self) -> Round {
        self.engine.round()
    }

    /// Spawns the protocol loop (and the metrics endpoint, when
    /// configured), returning the control handle.
    pub fn start(self) -> NodeHandle {
        let (commit_tx, commit_rx) = unbounded();
        let (receipt_tx, receipt_rx) = unbounded();
        let (tx_tx, tx_rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::clone(&self.metrics);
        let trace = self.trace.clone();
        let authority = self.authority;
        // Metrics are advisory: a bind failure downgrades to running
        // without the endpoint instead of failing the node.
        let mut metrics_addr = None;
        let mut metrics_join = None;
        if let Some(requested) = self.metrics_addr {
            if let Ok(listener) = TcpListener::bind(requested) {
                metrics_addr = listener.local_addr().ok();
                let server_metrics = Arc::clone(&metrics);
                let server_stop = Arc::clone(&stop);
                metrics_join = Some(
                    std::thread::Builder::new()
                        .name(format!("metrics-{authority}"))
                        .spawn(move || serve_metrics(listener, server_metrics, server_stop))
                        .expect("spawn metrics thread"),
                );
            }
        }
        let loop_stop = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name(format!("validator-{authority}"))
            .spawn(move || self.run(commit_tx, receipt_tx, tx_rx, loop_stop))
            .expect("spawn validator thread");
        NodeHandle {
            commits: commit_rx,
            receipts: receipt_rx,
            transactions: tx_tx,
            stop,
            metrics,
            metrics_addr,
            trace,
            join: Some(join),
            metrics_join,
        }
    }

    /// The event loop: per iteration, feed *all* ready inputs — one timer
    /// tick, every queued client batch, and every frame already received
    /// (bounded by [`MAX_FRAMES_PER_ITERATION`] and the verify queue
    /// bound) — through the admission pipeline, apply whatever verified
    /// inputs it releases (in submission order) as one output batch, then
    /// render that batch against the transport/WAL/commit channel once.
    ///
    /// The pipeline is the verify stage of the verify/apply split: frame
    /// decoding, signature checks, and coin-share proofs run on its worker
    /// threads ([`NodeConfig::verify_workers`]) while the engine — the
    /// apply stage — stays single-threaded and deterministic. Because the
    /// pipeline re-sequences results into submission order, the engine
    /// observes the same input stream a serial node would, minus the
    /// invalid inputs the verify stage drops. Batching also amortizes WAL
    /// fsyncs across the inputs of an iteration (the sync is still forced
    /// before any network send, so durability-before-dissemination holds).
    ///
    /// The loop also feeds the commit-path stage clocks: inputs enter the
    /// pipeline through the `_at` variants stamped with the loop's
    /// microsecond counter, so the verify and resequence histograms
    /// measure real queueing time across iterations. The ingress stages
    /// record honest zeros — a frame is submitted in the same iteration
    /// that pulls it off the transport channel, and the wire carries no
    /// send timestamp this driver could trust.
    fn run(
        mut self,
        commits: Sender<CommittedSubDag>,
        receipts: Sender<TxReceipt>,
        transactions: Receiver<Vec<Transaction>>,
        stop: Arc<AtomicBool>,
    ) {
        let mut pipeline = AdmissionPipeline::new(self.admission, self.committee.clone());
        pipeline.set_stage_stats(self.stage_stats.clone());
        let started = Instant::now();
        let client_from = self.authority.as_usize();
        // State-sync: ask the committee for its latest quorum-certified
        // checkpoint. A fresh or long-offline validator adopts any cut
        // ahead of its own frontier instead of replaying from genesis;
        // responses at or below the local frontier are simply rejected by
        // the engine, so the request is safe to send unconditionally.
        self.transport
            .broadcast(Envelope::CheckpointRequest.to_bytes_vec());
        while !stop.load(Ordering::SeqCst) {
            // Wait for one incoming frame (with a short poll timeout that
            // also serves every WakeAt the engine asked for).
            let first = match self
                .transport
                .incoming()
                .recv_timeout(Duration::from_millis(2))
            {
                Ok(frame) => Some(frame),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            };
            let now = started.elapsed().as_micros() as EngineTime;
            pipeline.submit_at(Input::TimerFired { now }, now);
            // Drain client batches (enqueue-only inputs).
            loop {
                match transactions.try_recv() {
                    Ok(batch) => {
                        self.stage_stats.record(Stage::IngressReceived, 0);
                        pipeline.submit_at(
                            Input::TxBatchReceived {
                                from: client_from,
                                transactions: batch,
                            },
                            now,
                        );
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return,
                }
            }
            // The blocking frame plus everything else already queued.
            // Decoding happens in the verify stage; when the pipeline is
            // at its bound, leave the rest in the transport channel —
            // that is the backpressure path toward the peer.
            let mut frame = first;
            let mut drained = 0;
            while let Some((peer, bytes)) = frame.take() {
                self.stage_stats.record(Stage::IngressReceived, 0);
                self.stage_stats.record(Stage::VerifyDequeued, 0);
                pipeline.submit_frame_at(peer as usize, bytes, now);
                drained += 1;
                if drained < MAX_FRAMES_PER_ITERATION && pipeline.has_capacity() {
                    frame = self.transport.incoming().try_recv().ok();
                }
            }
            // Apply every verified input the pipeline has released, in
            // submission order, and render the outputs once.
            let mut outputs = Vec::new();
            for input in pipeline.drain_ready_at(now) {
                self.handle_verified(input, &mut outputs);
            }
            if self.apply(outputs, &commits, &receipts).is_err() {
                return;
            }
            self.metrics.update_engine(&self.engine);
            self.metrics.update_pipeline(&pipeline);
        }
        // Inputs still in flight inside the verify stage are dropped with
        // the pipeline: never applied, never traced.
        self.transport.shutdown();
    }

    /// Applies one verified input to the engine, recording the step when
    /// tracing. The trace records the *verified* inputs in sequenced
    /// order, so replaying it through the plain [`ValidatorEngine::handle`]
    /// path reproduces these outputs byte for byte.
    fn handle_verified(&mut self, input: Verified<Input>, outputs: &mut Vec<Output>) {
        if let Some(trace) = &self.trace {
            let recorded = input.get().clone();
            let produced = self.engine.handle_verified(input);
            trace.lock().push((recorded, format!("{produced:?}")));
            outputs.extend(produced);
        } else {
            outputs.extend(self.engine.handle_verified(input));
        }
    }

    /// Carries out engine effects against the transport, the WAL, and the
    /// commit channel. Durable WAL records (own blocks, convictions) defer
    /// their fsync until just before the next network send — or the end of
    /// the batch — so consecutive records share one sync without ever
    /// disseminating an unsynced own block. Errors only when the
    /// application hung up.
    fn apply(
        &mut self,
        outputs: Vec<Output>,
        commits: &Sender<CommittedSubDag>,
        receipts: &Sender<TxReceipt>,
    ) -> Result<(), ()> {
        for output in outputs {
            match output {
                Output::Broadcast(envelope) => {
                    self.flush_wal();
                    self.transport.broadcast(envelope.to_bytes_vec());
                }
                Output::SendTo(peer, envelope) => {
                    self.flush_wal();
                    self.transport.send(peer as u32, envelope.to_bytes_vec());
                }
                Output::Persist(record) => {
                    // Durability before dissemination: own blocks (the
                    // engine emits their Persist ahead of the Broadcast)
                    // and convictions are fsynced before anything else
                    // leaves this node; peers' blocks can be re-fetched,
                    // so their records ride the next sync. Checkpoints are
                    // durable too — the subsequent log truncation is only
                    // safe once the cut they carry is on disk.
                    let durable = match &record {
                        WalRecord::Block(block) => block.author() == self.authority,
                        WalRecord::Evidence(_) => true,
                        WalRecord::Checkpoint { .. } => true,
                    };
                    let compact_floor = match &record {
                        WalRecord::Checkpoint { resume, .. } => self
                            .engine
                            .config()
                            .gc_depth
                            .and_then(|depth| checkpoint_floor(resume, depth)),
                        _ => None,
                    };
                    let _ = self.wal.append(&record.to_bytes_vec());
                    self.pending_sync |= durable;
                    if let Some(floor) = compact_floor {
                        self.flush_wal();
                        self.compact_wal(floor);
                    }
                }
                Output::Committed(sub_dag) => {
                    if commits.send(sub_dag).is_err() {
                        return Err(());
                    }
                }
                Output::TxReceipt { peer, receipt } => {
                    if peer == self.authority.as_usize() {
                        // A batch submitted through the local NodeHandle
                        // (the run loop stamps those with this node's own
                        // index): the receipt goes to the handle's channel.
                        // A closed receiver means the application does not
                        // care — drop it, receipts are advisory.
                        let _ = receipts.send(receipt);
                    } else {
                        // A wire client's batch: the transport routes ids
                        // in the client range down the client's own
                        // connection (gone connections drop the frame).
                        self.flush_wal();
                        self.transport
                            .send(peer as u32, Envelope::TxReceipt(receipt).to_bytes_vec());
                    }
                }
                // The 2 ms poll loop revisits the engine well within any
                // requested wake-up; commit tags and conviction notices
                // have no node-side consumer beyond the gauges.
                // `TxRejected` is only produced by the `TxSubmitted` input
                // path, which this driver never feeds — both the local
                // handle and the wire submit batches, and batches answer
                // with `TxReceipt` verdicts instead.
                Output::WakeAt(_)
                | Output::TxsCommitted(_)
                | Output::Convicted(_)
                | Output::TxRejected { .. }
                | Output::CheckpointProduced(_) => {}
            }
        }
        self.flush_wal();
        Ok(())
    }

    /// Performs the deferred WAL fsync, if one is pending.
    fn flush_wal(&mut self) {
        if self.pending_sync {
            let _ = self.wal.sync();
            self.pending_sync = false;
        }
    }

    /// Truncates the WAL below a checkpointed commit frontier.
    ///
    /// Safe only because the checkpoint record that triggered it is
    /// already fsynced: recovery restores the checkpoint first and then
    /// replays the surviving records on top of it. The rewrite keeps
    ///
    /// - the *latest* checkpoint record (earlier ones are subsumed),
    /// - every evidence record (convictions must never expire),
    /// - every own-authored block (the produced-round watermark is the
    ///   equivocation guard and must survive any number of compactions),
    /// - peers' blocks at `round >= floor` (still referenced by the
    ///   post-checkpoint DAG), and
    /// - any record that fails to decode (never drop what we cannot
    ///   classify).
    fn compact_wal(&mut self, floor: Round) {
        let Ok(records) = self.wal.records() else {
            return;
        };
        let mut kept: Vec<Vec<u8>> = Vec::with_capacity(records.len());
        let mut last_checkpoint: Option<Vec<u8>> = None;
        for record in records {
            match WalRecord::from_bytes_exact(&record.payload) {
                Ok(WalRecord::Checkpoint { .. }) => {
                    last_checkpoint = Some(record.payload);
                }
                Ok(WalRecord::Block(block)) => {
                    if block.author() == self.authority || block.round() >= floor {
                        kept.push(record.payload);
                    }
                }
                Ok(WalRecord::Evidence(_)) | Err(_) => kept.push(record.payload),
            }
        }
        // The checkpoint leads the rewritten log so recovery installs it
        // before replaying the retained records.
        let mut payloads = Vec::with_capacity(kept.len() + 1);
        payloads.extend(last_checkpoint);
        payloads.extend(kept);
        let _ = self.wal.rewrite(&payloads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::NodeMessage;
    use mahimahi_types::EquivocationProof;

    fn wal_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mahimahi-node-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn conflicting_pair(setup: &TestCommittee, author: u32) -> EquivocationProof {
        EquivocationProof::synthetic(setup, AuthorityIndex(author))
    }

    #[test]
    fn recovery_restores_rounds_from_wal() {
        let dir = wal_dir("rounds");
        let wal_path = dir.join("v0.wal");
        let setup = TestCommittee::new(4, 5);

        // Build a few rounds worth of blocks and log them as a node would.
        {
            let mut dag = mahimahi_dag::DagBuilder::new(setup.clone());
            dag.add_full_rounds(3);
            let mut wal = FileWal::open_path(&wal_path).unwrap();
            for block in dag.store().iter() {
                if block.round() > 0 {
                    wal.append(&WalRecord::Block(block.clone()).to_bytes_vec())
                        .unwrap();
                }
            }
            wal.sync().unwrap();
        }

        let transport = Transport::bind(0, "127.0.0.1:0").unwrap();
        let mut config = NodeConfig::local(0, setup);
        config.wal_path = Some(wal_path);
        let node = ValidatorNode::new(config, transport).unwrap();
        assert_eq!(node.store().highest_round(), 3);
        assert_eq!(node.round(), 3, "own round recovered");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_reads_legacy_raw_block_wals() {
        // WALs written before the tagged WalRecord framing held raw Block
        // encodings; an upgraded node must still recover them (forgetting
        // broadcast rounds would cause accidental equivocation).
        let dir = wal_dir("legacy");
        let wal_path = dir.join("v0.wal");
        let setup = TestCommittee::new(4, 5);
        {
            let mut dag = mahimahi_dag::DagBuilder::new(setup.clone());
            dag.add_full_rounds(2);
            let mut wal = FileWal::open_path(&wal_path).unwrap();
            for block in dag.store().iter() {
                if block.round() > 0 {
                    wal.append(&block.as_ref().to_bytes_vec()).unwrap();
                }
            }
            wal.sync().unwrap();
        }
        let transport = Transport::bind(0, "127.0.0.1:0").unwrap();
        let mut config = NodeConfig::local(0, setup);
        config.wal_path = Some(wal_path);
        let node = ValidatorNode::new(config, transport).unwrap();
        assert_eq!(node.round(), 2, "legacy own rounds recovered");
        assert_eq!(node.store().highest_round(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_node_starts_at_round_zero() {
        let setup = TestCommittee::new(4, 5);
        let transport = Transport::bind(1, "127.0.0.1:0").unwrap();
        let node = ValidatorNode::new(NodeConfig::local(1, setup), transport).unwrap();
        assert_eq!(node.round(), 0);
        assert_eq!(node.store().highest_round(), 0);
    }

    #[test]
    fn corrupt_wal_records_are_skipped() {
        let setup = TestCommittee::new(4, 5);
        let dir = wal_dir("bad");
        let wal_path = dir.join("bad.wal");
        {
            let mut wal = FileWal::open_path(&wal_path).unwrap();
            wal.append(b"garbage record").unwrap();
            wal.sync().unwrap();
        }
        let transport = Transport::bind(2, "127.0.0.1:0").unwrap();
        let mut config = NodeConfig::local(2, setup);
        config.wal_path = Some(wal_path);
        let node = ValidatorNode::new(config, transport).unwrap();
        assert_eq!(node.store().highest_round(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evidence_received_on_the_wire_is_persisted_and_survives_restart() {
        // Feed an Evidence frame through the engine exactly as the run
        // loop would, applying the Persist outputs to a file WAL; a fresh
        // node over the same WAL must come up already convinced.
        let setup = TestCommittee::new(4, 5);
        let proof = conflicting_pair(&setup, 3);
        let dir = wal_dir("evidence");
        let wal_path = dir.join("v0.wal");

        {
            let transport = Transport::bind(0, "127.0.0.1:0").unwrap();
            let mut config = NodeConfig::local(0, setup.clone());
            config.wal_path = Some(wal_path.clone());
            let mut node = ValidatorNode::new(config, transport).unwrap();
            let (commit_tx, _commit_rx) = unbounded();
            let (receipt_tx, _receipt_rx) = unbounded();
            let outputs = node.engine.handle(Input::from_envelope(
                1,
                NodeMessage::Evidence(proof.clone()),
            ));
            assert!(
                outputs
                    .iter()
                    .any(|output| matches!(output, Output::Persist(WalRecord::Evidence(_)))),
                "conviction must be persisted: {outputs:?}"
            );
            node.apply(outputs, &commit_tx, &receipt_tx).unwrap();
            assert_eq!(node.convicted(), vec![AuthorityIndex(3)]);
        }

        let transport = Transport::bind(0, "127.0.0.1:0").unwrap();
        let mut config = NodeConfig::local(0, setup);
        config.wal_path = Some(wal_path);
        let recovered = ValidatorNode::new(config, transport).unwrap();
        assert_eq!(
            recovered.convicted(),
            vec![AuthorityIndex(3)],
            "conviction must survive the restart"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inclusion_wait_is_forwarded_to_the_engine() {
        let setup = TestCommittee::new(4, 5);
        let mut config = NodeConfig::local(3, setup);
        config.inclusion_wait = Duration::from_millis(40);
        assert_eq!(config.engine_config().inclusion_wait, 40_000);
        assert_eq!(config.engine_config().min_round_interval, 2_000);
    }
}
