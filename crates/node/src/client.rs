//! The client-submission wire path.
//!
//! Clients are not validators: they hold no committee slot and speak the
//! transaction-ingress vocabulary only — [`Envelope::TxBatch`] up,
//! [`Envelope::TxReceipt`] down. A [`TxClient`] connects to a validator's
//! transport listener like any peer — hello frame, then length-prefixed
//! frames — but identifies itself with the reserved [`CLIENT_PEER`] id.
//! The transport assigns the connection a fresh id from its client range
//! and uses the socket duplex: batches flow up tagged with that id, and
//! the validator's receipts come back down the same connection.
//!
//! Every batch is answered: an `Admission` receipt carries one verdict
//! per transaction (accepted, duplicate, pool full, or rate limited), and
//! `Committed` notices follow as the accepted transactions are sequenced.
//! [`TxClient::submit_and_wait`] bundles the round trip;
//! [`TxClient::wait_committed`] blocks until a batch's commit notice
//! arrives. All waits are [`Duration`]-bounded and a lost connection is
//! recoverable with [`TxClient::reconnect`].
//!
//! # Example
//!
//! ```no_run
//! use mahimahi_node::TxClient;
//! use mahimahi_types::Transaction;
//! use std::time::Duration;
//!
//! let mut client = TxClient::connect("127.0.0.1:9000".parse().unwrap()).unwrap();
//! let receipt = client
//!     .submit_and_wait(
//!         &[Transaction::benchmark(1), Transaction::benchmark(2)],
//!         Duration::from_secs(5),
//!     )
//!     .unwrap();
//! println!("admitted under tag(s) {receipt:?}");
//! ```

use mahimahi_types::{Decode, Encode, Envelope, Transaction, TxReceipt, TxVerdict};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// The reserved hello id client connections present. Committee authority
/// indexes are small (`n ≤` a few hundred), so the maximum `u32` can never
/// collide with a validator id; the transport answers by assigning the
/// connection its own id from the client range.
pub const CLIENT_PEER: u32 = u32::MAX;

/// Why a client operation did not produce a receipt.
#[derive(Debug)]
pub enum ClientError {
    /// The deadline passed before the expected receipt arrived. The
    /// submission may still land — timeouts are about the wait, not the
    /// batch. After a mid-frame timeout the stream may be desynchronized;
    /// [`TxClient::reconnect`] restores a clean framing boundary.
    Timeout,
    /// The validator answered, but admitted none of the batch: every
    /// verdict is a rejection (duplicate, pool full, or rate limited).
    Rejected(Vec<TxVerdict>),
    /// The connection failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Timeout => write!(f, "timed out waiting for a receipt"),
            ClientError::Rejected(verdicts) => {
                write!(f, "batch fully rejected: {verdicts:?}")
            }
            ClientError::Io(error) => write!(f, "connection error: {error}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(error: std::io::Error) -> Self {
        ClientError::Io(error)
    }
}

/// A TCP client submitting transaction batches to one validator and
/// reading the receipts it sends back.
pub struct TxClient {
    addr: SocketAddr,
    stream: TcpStream,
}

impl TxClient {
    /// Connects to a validator's listener and sends the client hello.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = Self::open(addr)?;
        Ok(TxClient { addr, stream })
    }

    /// Drops the current connection and dials the validator again (fresh
    /// hello, fresh client id on the validator side). Receipts for batches
    /// submitted on the old connection are lost — resubmitting is safe,
    /// the validator's duplicate detection sheds the copies.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        self.stream = Self::open(self.addr)?;
        Ok(())
    }

    fn open(addr: SocketAddr) -> std::io::Result<TcpStream> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, &CLIENT_PEER.to_le_bytes())?;
        Ok(stream)
    }

    /// Submits one transaction batch as an [`Envelope::TxBatch`] frame,
    /// without waiting for its receipt (collect it later with
    /// [`Self::next_receipt`]). Empty batches are skipped (the codec
    /// rejects them structurally).
    ///
    /// # Errors
    ///
    /// Propagates socket errors; re-establish with [`Self::reconnect`] on
    /// failure.
    pub fn submit(&mut self, batch: &[Transaction]) -> std::io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let frame = Envelope::TxBatch(batch.to_vec()).to_bytes_vec();
        write_frame(&mut self.stream, &frame)
    }

    /// Submits `batch` and blocks until its `Admission` receipt arrives
    /// (skipping any `Committed` notices for earlier batches), up to
    /// `timeout`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] when no transaction in the batch was
    /// accepted, [`ClientError::Timeout`] when the receipt did not arrive
    /// in time, [`ClientError::Io`] on connection failures (including an
    /// empty batch, which can never be answered).
    pub fn submit_and_wait(
        &mut self,
        batch: &[Transaction],
        timeout: Duration,
    ) -> Result<TxReceipt, ClientError> {
        if batch.is_empty() {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "empty batches are not submitted and get no receipt",
            )));
        }
        let deadline = Instant::now() + timeout;
        self.submit(batch)?;
        loop {
            match self.receipt_by(deadline)? {
                TxReceipt::Admission { tag, verdicts } => {
                    if verdicts
                        .iter()
                        .all(|verdict| !matches!(verdict, TxVerdict::Accepted))
                    {
                        return Err(ClientError::Rejected(verdicts));
                    }
                    return Ok(TxReceipt::Admission { tag, verdicts });
                }
                TxReceipt::Committed { .. } => continue,
            }
        }
    }

    /// Blocks for the next receipt frame from the validator (admission or
    /// commit notice), up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] or [`ClientError::Io`].
    pub fn next_receipt(&mut self, timeout: Duration) -> Result<TxReceipt, ClientError> {
        self.receipt_by(Instant::now() + timeout)
    }

    /// Blocks until a `Committed` notice covering `tag` arrives, up to
    /// `timeout`. Receipts for other batches read along the way are
    /// skipped.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] or [`ClientError::Io`].
    pub fn wait_committed(&mut self, tag: u64, timeout: Duration) -> Result<(), ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let TxReceipt::Committed { tags } = self.receipt_by(deadline)? {
                if tags.contains(&tag) {
                    return Ok(());
                }
            }
        }
    }

    /// Reads frames until a receipt decodes, bounded by `deadline`.
    /// Non-receipt frames (nothing a validator currently sends to clients)
    /// are skipped.
    fn receipt_by(&mut self, deadline: Instant) -> Result<TxReceipt, ClientError> {
        loop {
            let frame = read_frame_by(&mut self.stream, deadline)?;
            if let Ok(Envelope::TxReceipt(receipt)) = Envelope::from_bytes_exact(&frame) {
                return Ok(receipt);
            }
        }
    }
}

/// Writes one length-prefixed frame (the transport's framing).
fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(frame.len() as u32).to_le_bytes())?;
    stream.write_all(frame)?;
    stream.flush()
}

/// Reads one length-prefixed frame, giving up at `deadline`. A timeout
/// mid-frame leaves the stream desynchronized (documented on
/// [`ClientError::Timeout`]).
fn read_frame_by(stream: &mut TcpStream, deadline: Instant) -> Result<Vec<u8>, ClientError> {
    let mut header = [0u8; 4];
    read_exact_by(stream, &mut header, deadline)?;
    let length = u32::from_le_bytes(header);
    if length > mahimahi_transport::MAX_FRAME_BYTES {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "oversized frame from validator",
        )));
    }
    let mut frame = vec![0u8; length as usize];
    read_exact_by(stream, &mut frame, deadline)?;
    Ok(frame)
}

/// `read_exact` against a deadline: short poll timeouts on the socket,
/// re-checked until the buffer fills or the deadline passes.
fn read_exact_by(
    stream: &mut TcpStream,
    buffer: &mut [u8],
    deadline: Instant,
) -> Result<(), ClientError> {
    let mut filled = 0;
    while filled < buffer.len() {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(ClientError::Timeout)?;
        stream.set_read_timeout(Some(remaining.min(Duration::from_millis(100))))?;
        match stream.read(&mut buffer[filled..]) {
            Ok(0) => {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "validator closed the connection",
                )))
            }
            Ok(read) => filled += read,
            Err(ref error)
                if error.kind() == std::io::ErrorKind::WouldBlock
                    || error.kind() == std::io::ErrorKind::TimedOut => {}
            Err(error) => return Err(ClientError::Io(error)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_transport::{Transport, FIRST_CLIENT_ID};
    use std::time::Duration;

    #[test]
    fn client_frames_arrive_tagged_with_a_client_range_id() {
        // A TxClient connecting straight to a validator's transport: the
        // batch must surface on the incoming channel tagged with an id the
        // transport assigned from the client range, and decode back into
        // the same transactions.
        let transport = Transport::bind(0, "127.0.0.1:0").unwrap();
        let mut client = TxClient::connect(transport.local_addr()).unwrap();
        let batch = vec![Transaction::benchmark(7), Transaction::new(vec![1, 2, 3])];
        client.submit(&batch).unwrap();
        let (peer, bytes) = transport
            .incoming()
            .recv_timeout(Duration::from_secs(5))
            .unwrap();
        assert!(peer >= FIRST_CLIENT_ID, "client id out of range: {peer}");
        let decoded = mahimahi_types::Decode::from_bytes_exact(&bytes);
        let Ok(Envelope::TxBatch(transactions)) = decoded else {
            panic!("expected a TxBatch frame, got {decoded:?}");
        };
        assert_eq!(transactions, batch);
    }

    #[test]
    fn empty_batches_are_not_sent() {
        let transport = Transport::bind(1, "127.0.0.1:0").unwrap();
        let mut client = TxClient::connect(transport.local_addr()).unwrap();
        client.submit(&[]).unwrap();
        assert!(transport
            .incoming()
            .recv_timeout(Duration::from_millis(300))
            .is_err());
    }

    #[test]
    fn submit_and_wait_round_trips_a_receipt() {
        // A fake validator over a bare transport: read the tagged batch,
        // answer with an Admission receipt addressed to the client id.
        let transport = Transport::bind(2, "127.0.0.1:0").unwrap();
        let addr = transport.local_addr();
        let server = std::thread::spawn(move || {
            let (peer, _bytes) = transport
                .incoming()
                .recv_timeout(Duration::from_secs(5))
                .unwrap();
            let receipt = TxReceipt::Admission {
                tag: 42,
                verdicts: vec![TxVerdict::Accepted, TxVerdict::Duplicate],
            };
            transport.send(peer, Envelope::TxReceipt(receipt).to_bytes_vec());
            // Keep the transport alive until the client has read the reply.
            std::thread::sleep(Duration::from_millis(500));
        });
        let mut client = TxClient::connect(addr).unwrap();
        let receipt = client
            .submit_and_wait(
                &[Transaction::benchmark(1), Transaction::benchmark(1)],
                Duration::from_secs(5),
            )
            .unwrap();
        let TxReceipt::Admission { tag, verdicts } = receipt else {
            panic!("expected an admission receipt, got {receipt:?}");
        };
        assert_eq!(tag, 42);
        assert_eq!(verdicts, vec![TxVerdict::Accepted, TxVerdict::Duplicate]);
        server.join().unwrap();
    }

    #[test]
    fn fully_rejected_batches_surface_as_rejections() {
        let transport = Transport::bind(3, "127.0.0.1:0").unwrap();
        let addr = transport.local_addr();
        let server = std::thread::spawn(move || {
            let (peer, _bytes) = transport
                .incoming()
                .recv_timeout(Duration::from_secs(5))
                .unwrap();
            let receipt = TxReceipt::Admission {
                tag: 7,
                verdicts: vec![TxVerdict::RateLimited],
            };
            transport.send(peer, Envelope::TxReceipt(receipt).to_bytes_vec());
            std::thread::sleep(Duration::from_millis(500));
        });
        let mut client = TxClient::connect(addr).unwrap();
        let result = client.submit_and_wait(&[Transaction::benchmark(9)], Duration::from_secs(5));
        let Err(ClientError::Rejected(verdicts)) = result else {
            panic!("expected a rejection, got {result:?}");
        };
        assert_eq!(verdicts, vec![TxVerdict::RateLimited]);
        server.join().unwrap();
    }

    #[test]
    fn waits_are_deadline_bounded() {
        // A validator that never answers: the wait must come back as a
        // Timeout in bounded time, not hang.
        let transport = Transport::bind(4, "127.0.0.1:0").unwrap();
        let mut client = TxClient::connect(transport.local_addr()).unwrap();
        let started = Instant::now();
        let result =
            client.submit_and_wait(&[Transaction::benchmark(1)], Duration::from_millis(300));
        assert!(matches!(result, Err(ClientError::Timeout)), "{result:?}");
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn reconnect_restores_a_usable_connection() {
        let transport = Transport::bind(5, "127.0.0.1:0").unwrap();
        let mut client = TxClient::connect(transport.local_addr()).unwrap();
        // First connection works.
        client.submit(&[Transaction::benchmark(1)]).unwrap();
        transport
            .incoming()
            .recv_timeout(Duration::from_secs(5))
            .unwrap();
        // After a reconnect the fresh connection carries frames again (the
        // validator side sees a new client id; resubmission is safe).
        client.reconnect().unwrap();
        client.submit(&[Transaction::benchmark(2)]).unwrap();
        let (peer, _) = transport
            .incoming()
            .recv_timeout(Duration::from_secs(5))
            .unwrap();
        assert!(peer >= FIRST_CLIENT_ID);
    }
}
