//! The client-submission wire path.
//!
//! Clients are not validators: they hold no committee slot and speak
//! exactly one frame, [`Envelope::TxBatch`]. A [`TxClient`] connects to a
//! validator's transport listener like any peer — hello frame carrying its
//! peer id, then length-prefixed frames — but identifies itself with the
//! reserved [`CLIENT_PEER`] id, far outside any committee's authority
//! range. The validator's event loop decodes the batch through the shared
//! codec (structural validation included) and submits every transaction to
//! its bounded mempool; rejected submissions are dropped there
//! (fire-and-forget ingress — production systems would add an ack frame,
//! which the `Envelope` vocabulary has room for).
//!
//! # Example
//!
//! ```no_run
//! use mahimahi_node::TxClient;
//! use mahimahi_types::Transaction;
//!
//! let mut client = TxClient::connect("127.0.0.1:9000".parse().unwrap()).unwrap();
//! client.submit(&[Transaction::benchmark(1), Transaction::benchmark(2)]).unwrap();
//! ```

use mahimahi_types::{Encode, Envelope, Transaction};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};

/// The reserved peer id client connections present in their hello frame.
/// Committee authority indexes are small (`n ≤` a few hundred), so the
/// maximum `u32` can never collide with a validator id.
pub const CLIENT_PEER: u32 = u32::MAX;

/// A TCP client submitting transaction batches to one validator.
pub struct TxClient {
    stream: TcpStream,
}

impl TxClient {
    /// Connects to a validator's listener and sends the client hello.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, &CLIENT_PEER.to_le_bytes())?;
        Ok(TxClient { stream })
    }

    /// Submits one transaction batch as an [`Envelope::TxBatch`] frame.
    /// Empty batches are skipped (the codec rejects them structurally).
    ///
    /// # Errors
    ///
    /// Propagates socket errors; the connection should be re-established
    /// on failure.
    pub fn submit(&mut self, batch: &[Transaction]) -> std::io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let frame = Envelope::TxBatch(batch.to_vec()).to_bytes_vec();
        write_frame(&mut self.stream, &frame)
    }
}

/// Writes one length-prefixed frame (the transport's framing).
fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(frame.len() as u32).to_le_bytes())?;
    stream.write_all(frame)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_transport::Transport;
    use std::time::Duration;

    #[test]
    fn client_frames_arrive_tagged_with_the_client_peer_id() {
        // A TxClient connecting straight to a validator's transport: the
        // batch must surface on the incoming channel from CLIENT_PEER and
        // decode back into the same transactions.
        let transport = Transport::bind(0, "127.0.0.1:0").unwrap();
        let mut client = TxClient::connect(transport.local_addr()).unwrap();
        let batch = vec![Transaction::benchmark(7), Transaction::new(vec![1, 2, 3])];
        client.submit(&batch).unwrap();
        let (peer, bytes) = transport
            .incoming()
            .recv_timeout(Duration::from_secs(5))
            .unwrap();
        assert_eq!(peer, CLIENT_PEER);
        let decoded = mahimahi_types::Decode::from_bytes_exact(&bytes);
        let Ok(Envelope::TxBatch(transactions)) = decoded else {
            panic!("expected a TxBatch frame, got {decoded:?}");
        };
        assert_eq!(transactions, batch);
    }

    #[test]
    fn empty_batches_are_not_sent() {
        let transport = Transport::bind(1, "127.0.0.1:0").unwrap();
        let mut client = TxClient::connect(transport.local_addr()).unwrap();
        client.submit(&[]).unwrap();
        assert!(transport
            .incoming()
            .recv_timeout(Duration::from_millis(300))
            .is_err());
    }
}
