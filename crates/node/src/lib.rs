//! Networked Mahi-Mahi validator.
//!
//! The production-shaped counterpart of the simulator's validators: a
//! [`ValidatorNode`] runs the uncertified-DAG protocol over real TCP
//! ([`mahimahi_transport`]), persists every block to a write-ahead log
//! before disseminating it, recovers its DAG from the log after a restart,
//! and emits committed sub-DAGs to the application through a channel —
//! Section 4 of the paper in miniature.
//!
//! [`LocalCluster`] assembles an `n`-node cluster on localhost for examples
//! and integration tests.

mod client;
mod cluster;
mod loopback;
mod node;
mod wire;

pub use client::{ClientError, TxClient, CLIENT_PEER};
pub use cluster::LocalCluster;
pub use loopback::{LoopbackCluster, LoopbackConfig};
pub use node::{NodeConfig, NodeHandle, NodeMetrics, RecordedStep, StatusReport, ValidatorNode};
pub use wire::NodeMessage;
