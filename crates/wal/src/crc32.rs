//! CRC-32 (IEEE 802.3) for record integrity checking.
//!
//! Table-driven implementation of the standard reflected CRC-32 with
//! polynomial `0xEDB88320`, as used by zlib/PNG/Ethernet. Verified against
//! the canonical check value `crc32(b"123456789") == 0xCBF43926`.

/// Lazily-built lookup table for one byte at a time processing.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// Computes the CRC-32 of `data`.
///
/// # Example
///
/// ```
/// assert_eq!(mahimahi_wal::crc32::crc32(b"123456789"), 0xCBF43926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let baseline = crc32(data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.to_vec();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), baseline, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }
}
