//! Write-ahead log substrate.
//!
//! Section 4 of the Mahi-Mahi paper: *"To ensure data persistence and crash
//! recovery, we implemented a Write-Ahead Log (WAL) tailored to the unique
//! requirements of our consensus protocol."* A validator appends every block
//! it creates or receives before acting on it; after a crash it replays the
//! log to rebuild its DAG and resume from its last round.
//!
//! The format is a flat sequence of CRC-framed records:
//!
//! ```text
//! ┌────────────┬───────────┬───────────┬─────────────┐
//! │ magic  u32 │ len   u32 │ crc32 u32 │ payload ... │
//! └────────────┴───────────┴───────────┴─────────────┘
//! ```
//!
//! Recovery scans from the start and stops at the first invalid frame — a
//! torn write at the tail (the common crash case) truncates back to the last
//! durable record and never corrupts the prefix (property-tested).
//!
//! Two storage backends are provided: [`FileWal`] (real files, used by the
//! networked node) and [`MemWal`] (in-memory, used by simulations and
//! crash-injection tests).

pub mod crc32;

use parking_lot::Mutex;
use std::error::Error as StdError;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crc32::crc32;

const MAGIC: u32 = 0x4d41_4849; // "MAHI"
const HEADER_BYTES: usize = 12;

/// Maximum payload accepted per record (64 MiB), mirroring the codec limit.
pub const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

/// Errors from WAL operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum WalError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The payload exceeds [`MAX_RECORD_BYTES`].
    RecordTooLarge(usize),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(error) => write!(f, "wal i/o error: {error}"),
            WalError::RecordTooLarge(size) => {
                write!(
                    f,
                    "record of {size} bytes exceeds the {MAX_RECORD_BYTES} limit"
                )
            }
        }
    }
}

impl StdError for WalError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            WalError::Io(error) => Some(error),
            WalError::RecordTooLarge(_) => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(error: std::io::Error) -> Self {
        WalError::Io(error)
    }
}

/// Abstract append-only byte storage for the log.
///
/// Implementations must support truncation (used once, at open, to discard a
/// torn tail) and positional reads (used by recovery).
pub trait Storage: Send {
    /// Appends bytes at the end of the storage.
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError>;
    /// Reads up to `buf.len()` bytes at `offset`; returns bytes read.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, WalError>;
    /// Current length in bytes.
    fn len(&mut self) -> Result<u64, WalError>;
    /// Whether the storage is empty.
    fn is_empty(&mut self) -> Result<bool, WalError> {
        Ok(self.len()? == 0)
    }
    /// Discards everything at and after `offset`.
    fn truncate(&mut self, offset: u64) -> Result<(), WalError>;
    /// Forces durability of previous appends.
    fn sync(&mut self) -> Result<(), WalError>;
}

/// File-backed storage.
#[derive(Debug)]
pub struct FileStorage {
    file: File,
    /// The file's path when known (opened via [`FileWal::open_path`]);
    /// enables the crash-atomic [`FileWal::rewrite_atomic`].
    path: Option<PathBuf>,
}

/// Forces the directory entry for `path` to disk, so a freshly created or
/// renamed file cannot vanish from its directory after a crash.
fn sync_parent_dir(path: &Path) -> Result<(), WalError> {
    let parent = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()?;
    Ok(())
}

impl Storage for FileStorage {
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(bytes)?;
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, WalError> {
        self.file.seek(SeekFrom::Start(offset))?;
        let mut read = 0;
        while read < buf.len() {
            match self.file.read(&mut buf[read..])? {
                0 => break,
                n => read += n,
            }
        }
        Ok(read)
    }

    fn len(&mut self) -> Result<u64, WalError> {
        Ok(self.file.metadata()?.len())
    }

    fn truncate(&mut self, offset: u64) -> Result<(), WalError> {
        // `sync_all`, not `sync_data`: the shrunk length is metadata, and a
        // recovery truncation that is not itself durable would let a
        // second crash resurrect the torn bytes it discarded.
        self.file.set_len(offset)?;
        self.file.sync_all()?;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// In-memory storage; clones share the same buffer so tests can inspect or
/// corrupt a log while a writer holds it.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    buffer: Arc<Mutex<Vec<u8>>>,
    /// Count of [`Storage::sync`] calls, shared across clones — lets
    /// crash-consistency tests assert that recovery actions were made
    /// durable, not merely performed.
    syncs: Arc<AtomicU64>,
}

impl MemStorage {
    /// Creates empty shared storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out the raw bytes (test inspection).
    pub fn snapshot(&self) -> Vec<u8> {
        self.buffer.lock().clone()
    }

    /// Overwrites the raw bytes (test corruption injection).
    pub fn replace(&self, bytes: Vec<u8>) {
        *self.buffer.lock() = bytes;
    }

    /// Number of [`Storage::sync`] calls observed so far.
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(Ordering::SeqCst)
    }
}

impl Storage for MemStorage {
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        self.buffer.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, WalError> {
        let buffer = self.buffer.lock();
        let start = (offset as usize).min(buffer.len());
        let end = (start + buf.len()).min(buffer.len());
        buf[..end - start].copy_from_slice(&buffer[start..end]);
        Ok(end - start)
    }

    fn len(&mut self) -> Result<u64, WalError> {
        Ok(self.buffer.lock().len() as u64)
    }

    fn truncate(&mut self, offset: u64) -> Result<(), WalError> {
        self.buffer.lock().truncate(offset as usize);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.syncs.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }
}

/// A write-ahead log over some [`Storage`].
///
/// # Example
///
/// ```
/// use mahimahi_wal::{MemWal, MemStorage};
///
/// let mut wal = MemWal::open(MemStorage::new())?;
/// wal.append(b"block one")?;
/// wal.append(b"block two")?;
/// let records = wal.records()?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[1].payload, b"block two");
/// # Ok::<(), mahimahi_wal::WalError>(())
/// ```
#[derive(Debug)]
pub struct Wal<S: Storage> {
    storage: S,
    /// End offset of the last valid record (the append position).
    tail: u64,
}

/// File-backed WAL.
pub type FileWal = Wal<FileStorage>;
/// In-memory WAL.
pub type MemWal = Wal<MemStorage>;

/// A record recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Byte offset of the record's header in the log.
    pub offset: u64,
    /// The record payload.
    pub payload: Vec<u8>,
}

impl FileWal {
    /// Opens (creating if missing) a file-backed log at `path`, scanning it
    /// and truncating any torn tail.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn open_path<P: AsRef<Path>>(path: P) -> Result<Self, WalError> {
        let path = path.as_ref();
        let existed = path.exists();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if !existed {
            // A crash right after creation must not lose the directory
            // entry — the log's existence is part of the durability
            // contract from the first append onward.
            sync_parent_dir(path)?;
        }
        Wal::open(FileStorage {
            file,
            path: Some(path.to_path_buf()),
        })
    }

    /// Atomically replaces the log's contents with `payloads` (compaction).
    ///
    /// The surviving records are written to a sibling temporary file,
    /// fsynced, renamed over the log, and the parent directory is fsynced —
    /// so a crash at any point leaves either the complete old log or the
    /// complete new one, never a mix. Requires the log to have been opened
    /// through [`FileWal::open_path`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; fails if the log was opened without a path.
    pub fn rewrite_atomic(&mut self, payloads: &[Vec<u8>]) -> Result<(), WalError> {
        let path = self
            .storage
            .path
            .clone()
            .ok_or_else(|| WalError::Io(std::io::Error::other("wal path unknown")))?;
        for payload in payloads {
            if payload.len() > MAX_RECORD_BYTES {
                return Err(WalError::RecordTooLarge(payload.len()));
            }
        }
        let mut temp_path = path.clone().into_os_string();
        temp_path.push(".compact");
        let temp_path = PathBuf::from(temp_path);
        let mut temp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&temp_path)?;
        let mut tail = 0u64;
        for payload in payloads {
            let frame = frame_record(payload);
            temp.write_all(&frame)?;
            tail += frame.len() as u64;
        }
        temp.sync_all()?;
        std::fs::rename(&temp_path, &path)?;
        sync_parent_dir(&path)?;
        self.storage.file = temp;
        self.tail = tail;
        Ok(())
    }
}

impl<S: Storage> Wal<S> {
    /// Opens a log over `storage`, validating existing contents and
    /// truncating everything after the last valid record.
    ///
    /// The truncation is synced before the log is handed out: recovery's
    /// discard of a torn tail must itself be durable, or a second crash
    /// could resurrect bytes that appends after reopen assume are gone.
    pub fn open(mut storage: S) -> Result<Self, WalError> {
        let tail = scan_valid_prefix(&mut storage)?.last().map_or(0, |record| {
            record.offset + HEADER_BYTES as u64 + record.payload.len() as u64
        });
        if storage.len()? > tail {
            storage.truncate(tail)?;
            storage.sync()?;
        }
        Ok(Wal { storage, tail })
    }

    /// Appends a record and returns its offset.
    ///
    /// The record is *framed* immediately but only durable after
    /// [`Wal::sync`].
    ///
    /// # Errors
    ///
    /// Fails if the payload exceeds [`MAX_RECORD_BYTES`] or on I/O error.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        if payload.len() > MAX_RECORD_BYTES {
            return Err(WalError::RecordTooLarge(payload.len()));
        }
        let offset = self.tail;
        let frame = frame_record(payload);
        self.storage.append(&frame)?;
        self.tail += frame.len() as u64;
        Ok(offset)
    }

    /// Replaces the log's contents with `payloads` (compaction), in place:
    /// truncate to zero, re-append, sync. **Not crash-atomic** — a crash
    /// mid-rewrite loses records. File-backed logs should use
    /// [`FileWal::rewrite_atomic`] instead; this variant serves in-memory
    /// logs and tests, where there is no crash window.
    ///
    /// # Errors
    ///
    /// Fails if any payload exceeds [`MAX_RECORD_BYTES`] or on I/O error.
    pub fn rewrite(&mut self, payloads: &[Vec<u8>]) -> Result<(), WalError> {
        for payload in payloads {
            if payload.len() > MAX_RECORD_BYTES {
                return Err(WalError::RecordTooLarge(payload.len()));
            }
        }
        self.storage.truncate(0)?;
        self.tail = 0;
        for payload in payloads {
            self.append(payload)?;
        }
        self.sync()
    }

    /// Forces durability of all appended records.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.storage.sync()
    }

    /// Reads back every valid record from the start of the log.
    pub fn records(&mut self) -> Result<Vec<Record>, WalError> {
        scan_valid_prefix(&mut self.storage)
    }

    /// The append position (end of the last valid record).
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Consumes the log, returning the underlying storage.
    pub fn into_storage(self) -> S {
        self.storage
    }
}

/// Builds the on-disk frame for one payload: header (magic, length, CRC)
/// followed by the payload bytes.
fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
    frame.extend_from_slice(&MAGIC.to_le_bytes());
    frame.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("payload length checked against MAX_RECORD_BYTES")
            .to_le_bytes(),
    );
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Scans storage from the start, returning every record up to (excluding)
/// the first invalid frame.
fn scan_valid_prefix<S: Storage>(storage: &mut S) -> Result<Vec<Record>, WalError> {
    let total = storage.len()?;
    let mut records = Vec::new();
    let mut offset = 0u64;
    let mut header = [0u8; HEADER_BYTES];
    loop {
        if offset + HEADER_BYTES as u64 > total {
            break;
        }
        if storage.read_at(offset, &mut header)? < HEADER_BYTES {
            break;
        }
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
        let expected_crc = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if magic != MAGIC || len > MAX_RECORD_BYTES {
            break;
        }
        if offset + (HEADER_BYTES + len) as u64 > total {
            break;
        }
        let mut payload = vec![0u8; len];
        if storage.read_at(offset + HEADER_BYTES as u64, &mut payload)? < len {
            break;
        }
        if crc32(&payload) != expected_crc {
            break;
        }
        records.push(Record { offset, payload });
        offset += (HEADER_BYTES + len) as u64;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mem_wal() -> (MemWal, MemStorage) {
        let storage = MemStorage::new();
        let wal = Wal::open(storage.clone()).unwrap();
        (wal, storage)
    }

    #[test]
    fn append_and_read_back() {
        let (mut wal, _) = mem_wal();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.append(b"").unwrap();
        let records = wal.records().unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].payload, b"one");
        assert_eq!(records[1].payload, b"two");
        assert_eq!(records[2].payload, b"");
    }

    #[test]
    fn offsets_are_monotonic_and_stable() {
        let (mut wal, _) = mem_wal();
        let first = wal.append(b"aaaa").unwrap();
        let second = wal.append(b"bb").unwrap();
        assert_eq!(first, 0);
        assert_eq!(second, HEADER_BYTES as u64 + 4);
        let records = wal.records().unwrap();
        assert_eq!(records[0].offset, first);
        assert_eq!(records[1].offset, second);
    }

    #[test]
    fn reopen_preserves_records_and_appends_continue() {
        let (mut wal, storage) = mem_wal();
        wal.append(b"before").unwrap();
        drop(wal);
        let mut reopened = Wal::open(storage).unwrap();
        assert_eq!(reopened.records().unwrap().len(), 1);
        reopened.append(b"after").unwrap();
        let records = reopened.records().unwrap();
        assert_eq!(records[1].payload, b"after");
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let (mut wal, storage) = mem_wal();
        wal.append(b"durable").unwrap();
        wal.append(b"torn-record-payload").unwrap();
        // Simulate a crash mid-write of the second record.
        let mut bytes = storage.snapshot();
        bytes.truncate(bytes.len() - 5);
        storage.replace(bytes);
        let syncs_before = storage.sync_count();
        let mut reopened = Wal::open(storage.clone()).unwrap();
        let records = reopened.records().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].payload, b"durable");
        // The truncation itself was synced: a crash immediately after
        // recovery must not resurrect the discarded tail.
        assert!(
            storage.sync_count() > syncs_before,
            "recovery truncation must be made durable"
        );
        // The torn bytes were discarded; new appends start clean.
        reopened.append(b"fresh").unwrap();
        assert_eq!(reopened.records().unwrap().len(), 2);
        drop(reopened);
        // Reopen-after-recovery: a second open sees exactly the recovered
        // prefix plus the new append, and truncates nothing further.
        let syncs_before = storage.sync_count();
        let mut second = Wal::open(storage.clone()).unwrap();
        let records = second.records().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].payload, b"fresh");
        assert_eq!(
            storage.sync_count(),
            syncs_before,
            "a clean log needs no recovery truncation (and no sync)"
        );
    }

    #[test]
    fn corrupt_crc_stops_scan() {
        let (mut wal, storage) = mem_wal();
        wal.append(b"good").unwrap();
        wal.append(b"bad!").unwrap();
        let mut bytes = storage.snapshot();
        let len = bytes.len();
        bytes[len - 1] ^= 0xff; // flip a payload bit of the second record
        storage.replace(bytes);
        let mut reopened = Wal::open(storage).unwrap();
        assert_eq!(reopened.records().unwrap().len(), 1);
    }

    #[test]
    fn corrupt_magic_stops_scan() {
        let (mut wal, storage) = mem_wal();
        wal.append(b"good").unwrap();
        wal.append(b"hidden").unwrap();
        let mut bytes = storage.snapshot();
        let second_offset = HEADER_BYTES + 4;
        bytes[second_offset] ^= 0xff;
        storage.replace(bytes);
        let mut reopened = Wal::open(storage).unwrap();
        assert_eq!(reopened.records().unwrap().len(), 1);
    }

    #[test]
    fn oversized_record_rejected() {
        let (mut wal, _) = mem_wal();
        let result = wal.append(&vec![0u8; MAX_RECORD_BYTES + 1]);
        assert!(matches!(result, Err(WalError::RecordTooLarge(_))));
    }

    #[test]
    fn empty_log_recovers_empty() {
        let (mut wal, _) = mem_wal();
        assert!(wal.records().unwrap().is_empty());
        assert_eq!(wal.tail(), 0);
    }

    #[test]
    fn file_backed_wal_round_trip() {
        let dir = std::env::temp_dir().join(format!("mahimahi-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        {
            let mut wal = FileWal::open_path(&path).unwrap();
            wal.append(b"persisted").unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = FileWal::open_path(&path).unwrap();
            let records = wal.records().unwrap();
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].payload, b"persisted");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_contents_in_place() {
        let (mut wal, storage) = mem_wal();
        wal.append(b"old-one").unwrap();
        wal.append(b"old-two").unwrap();
        wal.append(b"keep").unwrap();
        wal.rewrite(&[b"keep".to_vec(), b"new".to_vec()]).unwrap();
        let records = wal.records().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].payload, b"keep");
        assert_eq!(records[1].payload, b"new");
        // Appends continue from the rewritten tail, and a reopen agrees.
        wal.append(b"after").unwrap();
        let mut reopened = Wal::open(storage).unwrap();
        assert_eq!(reopened.records().unwrap().len(), 3);
    }

    #[test]
    fn file_rewrite_atomic_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("mahimahi-wal-compact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compact.wal");
        {
            let mut wal = FileWal::open_path(&path).unwrap();
            for i in 0..8u8 {
                wal.append(&[i; 16]).unwrap();
            }
            wal.sync().unwrap();
            wal.rewrite_atomic(&[vec![6; 16], vec![7; 16]]).unwrap();
            // The handle stays usable after the rename.
            wal.append(b"appended-after-compaction").unwrap();
            wal.sync().unwrap();
        }
        // No temporary file left behind, and the compacted log reopens.
        assert!(!dir.join("compact.wal.compact").exists());
        let mut reopened = FileWal::open_path(&path).unwrap();
        let records = reopened.records().unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].payload, vec![6; 16]);
        assert_eq!(records[1].payload, vec![7; 16]);
        assert_eq!(records[2].payload, b"appended-after-compaction");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_display() {
        let io = WalError::from(std::io::Error::other("x"));
        assert!(io.to_string().contains("i/o"));
        assert!(WalError::RecordTooLarge(1).to_string().contains("limit"));
    }

    proptest! {
        /// Crash-consistency: truncating the log at ANY byte boundary leaves
        /// a prefix of fully-written records intact.
        #[test]
        fn prop_arbitrary_truncation_preserves_prefix(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..64), 1..8),
            cut_fraction in 0.0f64..1.0,
        ) {
            let storage = MemStorage::new();
            let mut wal = Wal::open(storage.clone()).unwrap();
            let mut ends = Vec::new();
            for payload in &payloads {
                wal.append(payload).unwrap();
                ends.push(wal.tail());
            }
            let total = storage.snapshot().len();
            let cut = (total as f64 * cut_fraction) as usize;
            let mut bytes = storage.snapshot();
            bytes.truncate(cut);
            storage.replace(bytes);

            let mut reopened = Wal::open(storage.clone()).unwrap();
            let records = reopened.records().unwrap();
            // Every surviving record must be an exact prefix.
            let expected = ends.iter().take_while(|&&end| end <= cut as u64).count();
            prop_assert_eq!(records.len(), expected);
            for (record, payload) in records.iter().zip(&payloads) {
                prop_assert_eq!(&record.payload, payload);
            }
            // If a tail was discarded, the truncation was synced, and a
            // second open (a crash right after recovery) sees the
            // identical prefix with nothing left to truncate.
            if cut as u64 > ends.get(expected.wrapping_sub(1)).copied().unwrap_or(0) {
                prop_assert!(storage.sync_count() > 0);
            }
            drop(reopened);
            let syncs_after_first = storage.sync_count();
            let mut again = Wal::open(storage.clone()).unwrap();
            prop_assert_eq!(again.records().unwrap().len(), expected);
            prop_assert_eq!(storage.sync_count(), syncs_after_first);
        }

        /// Recovery never panics on arbitrary garbage.
        #[test]
        fn prop_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let storage = MemStorage::new();
            storage.replace(bytes);
            let mut wal = Wal::open(storage).unwrap();
            let _ = wal.records().unwrap();
        }
    }
}
