//! Closed-form models from the paper's latency analysis (Appendix C).
//!
//! The paper derives the probability that a round elects at least one
//! directly-committable leader slot under each network model:
//!
//! - **Lemma 13** (`w = 5`, asynchronous model): at least `2f + 1` of the
//!   `3f + 1` round-`r` blocks can be directly committed, so with `ℓ`
//!   coin-elected slots the failure probability is hypergeometric:
//!   `P(no direct commit) = C(f, ℓ) / C(3f+1, ℓ)` (and zero once `ℓ > f`).
//! - **Lemma 16** (`w = 4`, asynchronous model): only one block is
//!   guaranteed committable, giving `p⋆ = ℓ / (3f + 1)` (and 1 when
//!   `ℓ = 3f + 1`).
//! - **Lemma 17/18** (`w = 4`, random network model): every block is a vote
//!   for every block two rounds below with probability at least
//!   `1 − (3f+1)² (1 − p)^{2f+1}` where `p = (2f+1)/(3f+1)`, so direct
//!   commits happen with high probability every round.
//!
//! These functions are checked against Monte-Carlo simulation by the
//! `commit_probability` bench harness (EXPERIMENTS.md).

use std::f64::consts::E;

/// Binomial coefficient `C(n, k)` as `f64` (exact for the committee sizes
/// involved; stable up to n ≈ 170).
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut result = 1.0f64;
    for i in 0..k {
        result *= (n - i) as f64 / (i + 1) as f64;
    }
    result
}

/// Lemma 13: probability that a round directly commits at least one slot in
/// the `w = 5` configuration under the asynchronous model, with `f` faults
/// and `leaders` slots per round.
///
/// # Panics
///
/// Panics if `leaders` is zero or exceeds `3f + 1`.
pub fn direct_commit_probability_w5(f: u64, leaders: u64) -> f64 {
    let n = 3 * f + 1;
    assert!(leaders >= 1 && leaders <= n, "leaders out of range");
    if leaders > f {
        return 1.0;
    }
    1.0 - binomial(f, leaders) / binomial(n, leaders)
}

/// Lemma 16: probability that a round directly commits at least one slot in
/// the `w = 4` configuration under the asynchronous model.
///
/// # Panics
///
/// Panics if `leaders` is zero or exceeds `3f + 1`.
pub fn direct_commit_probability_w4_async(f: u64, leaders: u64) -> f64 {
    let n = 3 * f + 1;
    assert!(leaders >= 1 && leaders <= n, "leaders out of range");
    leaders as f64 / n as f64
}

/// Lemma 17: upper bound on the probability that *some* round-`r` block is
/// unreachable from *some* round-`r+2` block in the random network model —
/// the failure probability of the `w = 4` every-slot-commits argument.
pub fn w4_random_unreachable_bound(f: u64) -> f64 {
    let n = (3 * f + 1) as f64;
    let p = (2 * f + 1) as f64 / n;
    n * n * (1.0 - p).powi((2 * f + 1) as i32)
}

/// Expected number of rounds between direct commits given a per-round
/// success probability `p` (geometric distribution mean `1/p`).
///
/// # Panics
///
/// Panics unless `0 < p ≤ 1`.
pub fn expected_rounds_between_direct_commits(p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "probability out of range");
    1.0 / p
}

/// Expected end-to-end commit latency in *message delays* for a transaction
/// under each protocol, in the common case (no faults):
///
/// - a transaction waits on average half a round for inclusion;
/// - Mahi-Mahi commits the including block after `w` delays when the block
///   lands in (or is covered by) a committed slot of its round — with
///   multiple leaders and slot coverage the common case is direct;
/// - Cordial Miners commits once per 5-round wave, adding an average
///   `(wave − 1) / 2` rounds of wait for the wave boundary;
/// - Tusk commits once per 3-certified-round wave at 3 delays per round,
///   adding the same boundary wait in certified rounds.
pub fn expected_commit_delays(protocol: ProtocolModel) -> f64 {
    match protocol {
        ProtocolModel::MahiMahi { wave_length } => 0.5 + wave_length as f64,
        ProtocolModel::CordialMiners { wave_length } => {
            let boundary_wait = (wave_length - 1) as f64 / 2.0;
            0.5 + boundary_wait + wave_length as f64
        }
        ProtocolModel::Tusk => {
            let boundary_wait = 1.0; // (3 − 1) / 2 certified rounds
            3.0 * (0.5 + boundary_wait + 3.0)
        }
    }
}

/// Protocol shapes for [`expected_commit_delays`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolModel {
    /// Mahi-Mahi with the given wave length (4 or 5).
    MahiMahi {
        /// Rounds per wave.
        wave_length: u64,
    },
    /// Cordial Miners with the given wave length (5 in the paper).
    CordialMiners {
        /// Rounds per wave.
        wave_length: u64,
    },
    /// Tusk (3 certified rounds per wave, 3 delays each).
    Tusk,
}

/// Converts expected message delays to seconds given a mean one-way WAN
/// delay.
pub fn delays_to_seconds(delays: f64, mean_one_way_delay_s: f64) -> f64 {
    delays * mean_one_way_delay_s
}

/// The asymptotic bound from Lemma 17 decays exponentially; this helper
/// reports the committee size at which the bound drops below `target`.
pub fn committee_size_for_bound(target: f64) -> u64 {
    for f in 1..200 {
        if w4_random_unreachable_bound(f) < target {
            return 3 * f + 1;
        }
    }
    601
}

/// Natural-log helper kept for documentation completeness (the bound decays
/// as `e^{−cf}` with `c = (2f+1)·ln(3)/f → 2·ln 3` ≈ 2.2).
pub fn asymptotic_decay_rate() -> f64 {
    2.0 * E.ln() * 3.0f64.ln() / E.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(4, 2), 6.0);
        assert_eq!(binomial(10, 0), 1.0);
        assert_eq!(binomial(10, 10), 1.0);
        assert_eq!(binomial(5, 7), 0.0);
        assert_eq!(binomial(31, 3), 4495.0);
    }

    #[test]
    fn lemma_13_small_committee() {
        // f = 1 (n = 4): ℓ = 1 → 1 − C(1,1)/C(4,1) = 3/4; ℓ ≥ 2 → 1.
        assert!((direct_commit_probability_w5(1, 1) - 0.75).abs() < 1e-12);
        assert_eq!(direct_commit_probability_w5(1, 2), 1.0);
        assert_eq!(direct_commit_probability_w5(1, 4), 1.0);
    }

    #[test]
    fn lemma_13_ten_nodes() {
        // f = 3 (n = 10): ℓ = 1 → 1 − 3/10 = 0.7;
        // ℓ = 2 → 1 − C(3,2)/C(10,2) = 1 − 3/45; ℓ = 3 → 1 − 1/120.
        assert!((direct_commit_probability_w5(3, 1) - 0.7).abs() < 1e-12);
        assert!((direct_commit_probability_w5(3, 2) - (1.0 - 3.0 / 45.0)).abs() < 1e-12);
        assert!((direct_commit_probability_w5(3, 3) - (1.0 - 1.0 / 120.0)).abs() < 1e-12);
        assert_eq!(direct_commit_probability_w5(3, 4), 1.0);
    }

    #[test]
    fn lemma_16_matches_closed_form() {
        assert!((direct_commit_probability_w4_async(3, 2) - 0.2).abs() < 1e-12);
        assert_eq!(direct_commit_probability_w4_async(1, 4), 1.0);
        assert!((direct_commit_probability_w4_async(16, 1) - 1.0 / 49.0).abs() < 1e-12);
    }

    #[test]
    fn lemma_17_bound_decays_with_committee_size() {
        let small = w4_random_unreachable_bound(1);
        let medium = w4_random_unreachable_bound(3);
        let large = w4_random_unreachable_bound(16);
        assert!(small > medium && medium > large);
        assert!(large < 1e-6, "f=16 bound {large}");
    }

    #[test]
    fn geometric_expectation() {
        assert_eq!(expected_rounds_between_direct_commits(1.0), 1.0);
        assert_eq!(expected_rounds_between_direct_commits(0.25), 4.0);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn geometric_rejects_zero() {
        let _ = expected_rounds_between_direct_commits(0.0);
    }

    #[test]
    fn delay_model_ordering_matches_the_paper() {
        let mm4 = expected_commit_delays(ProtocolModel::MahiMahi { wave_length: 4 });
        let mm5 = expected_commit_delays(ProtocolModel::MahiMahi { wave_length: 5 });
        let cm = expected_commit_delays(ProtocolModel::CordialMiners { wave_length: 5 });
        let tusk = expected_commit_delays(ProtocolModel::Tusk);
        assert!(mm4 < mm5 && mm5 < cm && cm < tusk);
        // Roughly the paper's ratios: Tusk ≈ 3× Mahi-Mahi-5, CM between.
        assert!(tusk / mm5 > 2.0);
        assert!(cm / mm5 > 1.3 && cm / mm5 < 2.5);
    }

    #[test]
    fn committee_size_for_tight_bound_is_reasonable() {
        let size = committee_size_for_bound(0.01);
        assert!(size <= 31, "bound met by n = {size}");
    }
}
