//! Committee-scale microbenchmarks: the per-block admission and quorum-tally
//! hot paths at n ∈ {4, 10, 50}.
//!
//! These quantify the dense-indexing refactor (`AuthoritySet`,
//! `CommitteeMap`, dense round slots, digest-keyed hashing): the per-block
//! cost of both paths must stay near-flat as the committee grows, because
//! every per-message data structure is either O(1) or a fixed-width bitset.
//! With `MAHIMAHI_SCALE_GATE=1` the bench additionally enforces the CI gate
//! — per-block admission at n = 50 within 3× of n = 4 — and exits non-zero
//! on violation (the `committee_scale` binary always enforces it and writes
//! the `bench-results/` baseline).

use bench::scale::{self, ADMISSION_RATIO_BUDGET, SCALE_COMMITTEES};
use criterion::{black_box, BatchSize, Criterion};
use mahimahi_dag::BlockStore;
use mahimahi_types::{AuthorityIndex, AuthoritySet};
use std::sync::Arc;

fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission_round");
    for n in SCALE_COMMITTEES {
        let blocks = scale::proposal_round(n);
        group.bench_function(format!("n{n}"), |b| {
            b.iter_batched(
                || BlockStore::new(n, scale::quorum(n)),
                |mut store| {
                    for block in &blocks {
                        black_box(store.insert(Arc::clone(block)).unwrap());
                    }
                    store
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_quorum_tally(c: &mut Criterion) {
    let mut group = c.benchmark_group("quorum_tally");
    for n in SCALE_COMMITTEES {
        let threshold = scale::quorum(n);
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| {
                let mut votes = AuthoritySet::new();
                let mut reached = 0usize;
                for voter in 0..n {
                    votes.insert(AuthorityIndex(voter as u32));
                    if votes.len() >= threshold {
                        reached += 1;
                    }
                }
                (votes, reached)
            })
        });
    }
    group.finish();
}

/// Machine-readable per-block costs plus the (opt-in) ≤ 3× CI gate.
fn scale_gate(_c: &mut Criterion) {
    let points = scale::measure_all();
    for point in &points {
        println!(
            "scale-gate: admission_per_block_ns n={} {:.1}",
            point.committee_size, point.admission_per_block_ns
        );
        println!(
            "scale-gate: tally_per_vote_ns n={} {:.1}",
            point.committee_size, point.tally_per_vote_ns
        );
    }
    let ratio = scale::admission_ratio(&points);
    println!("scale-gate: admission_n50_over_n4 {ratio:.2}");
    if std::env::var_os("MAHIMAHI_SCALE_GATE").is_some() {
        assert!(
            ratio <= ADMISSION_RATIO_BUDGET,
            "per-block admission cost grew {ratio:.2}× from n=4 to n=50 \
             (budget: {ADMISSION_RATIO_BUDGET:.1}×)"
        );
        println!("scale-gate: PASS (admission {ratio:.2}x <= {ADMISSION_RATIO_BUDGET:.1}x)");
    }
}

criterion::criterion_group!(benches, bench_admission, bench_quorum_tally, scale_gate);
criterion::criterion_main!(benches);
