//! Microbenchmarks for the cryptographic substrate.
//!
//! The paper argues that forgoing explicit certification saves the CPU cost
//! of certificate verification; these benches quantify the primitive costs
//! the simulator's CPU model is calibrated against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mahimahi_crypto::blake2b::blake2b_256;
use mahimahi_crypto::coin::CoinDealer;
use mahimahi_crypto::schnorr::{batch_verify, Keypair, PublicKey, Signature};

fn bench_blake2b(c: &mut Criterion) {
    let mut group = c.benchmark_group("blake2b_256");
    for size in [64usize, 512, 4096, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| blake2b_256(data));
        });
    }
    group.finish();
}

fn bench_schnorr(c: &mut Criterion) {
    let keypair = Keypair::from_seed(1);
    let message = vec![7u8; 64];
    let signature = keypair.sign(&message);

    c.bench_function("schnorr_sign", |b| b.iter(|| keypair.sign(&message)));
    c.bench_function("schnorr_verify", |b| {
        b.iter(|| keypair.public().verify(&message, &signature).unwrap())
    });

    // Serial vs batched verification at the admission pipeline's working
    // set sizes. In this toy 61-bit group exponentiation is nearly as
    // cheap as hashing, so the per-item weight derivation keeps the
    // combined equation at rough parity with the serial loop (on a real
    // curve the multi-scalar collapse is the win); what the comparison
    // guards is that the batch path stays linear in the batch size.
    let mut group = c.benchmark_group("schnorr_batch_verify");
    for count in [8usize, 32, 128] {
        let keypairs: Vec<Keypair> = (0..count as u64).map(Keypair::from_seed).collect();
        let items: Vec<(&[u8], PublicKey, Signature)> = keypairs
            .iter()
            .map(|kp| (message.as_slice(), *kp.public(), kp.sign(&message)))
            .collect();
        group.throughput(Throughput::Elements(count as u64));
        group.bench_with_input(BenchmarkId::new("serial", count), &items, |b, items| {
            b.iter(|| {
                for (message, public, signature) in items {
                    public.verify(message, signature).unwrap();
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("batch", count), &items, |b, items| {
            b.iter(|| batch_verify(items).unwrap());
        });
    }
    group.finish();
}

fn bench_coin(c: &mut Criterion) {
    // The paper's committee sizes: 10 (f = 3, threshold 7) and
    // 50 (f = 16, threshold 33).
    let mut group = c.benchmark_group("coin");
    for (n, threshold) in [(10usize, 7usize), (50, 33)] {
        let (secrets, public) = CoinDealer::deal_seeded(n, threshold, 3);
        group.bench_function(BenchmarkId::new("share", n), |b| {
            b.iter(|| secrets[0].share_for_round(9))
        });
        let shares: Vec<_> = secrets.iter().map(|s| s.share_for_round(9)).collect();
        group.bench_function(BenchmarkId::new("verify_share", n), |b| {
            b.iter(|| public.verify_share(9, &shares[0]).unwrap())
        });
        group.bench_function(BenchmarkId::new("combine", n), |b| {
            b.iter(|| public.combine(9, &shares).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_blake2b, bench_schnorr, bench_coin);
criterion_main!(benches);
