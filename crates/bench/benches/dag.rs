//! Microbenchmarks for the DAG substrate.
//!
//! `voted_block`/`is_cert` dominate the committer's cost; the memoization
//! ablation (cold store vs warm store) quantifies the design decision
//! recorded in DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mahimahi_dag::{BlockStore, DagBuilder};
use mahimahi_types::TestCommittee;
use std::collections::HashSet;

fn ten_node_dag(rounds: usize) -> DagBuilder {
    let setup = TestCommittee::new(10, 5);
    let mut dag = DagBuilder::new(setup);
    dag.add_full_rounds(rounds);
    dag
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("store_insert_round_of_10", |b| {
        let dag = ten_node_dag(1);
        let blocks: Vec<_> = dag
            .store()
            .blocks_at_round(1)
            .into_iter()
            .cloned()
            .collect();
        b.iter_batched(
            || BlockStore::new(10, 7),
            |mut store| {
                for block in &blocks {
                    store.insert(block.clone()).unwrap();
                }
                store
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_votes(c: &mut Criterion) {
    let dag = ten_node_dag(10);
    let store = dag.store();
    let leader = store.blocks_at_round(1)[0].clone();
    let votes: Vec<_> = store
        .blocks_at_round(4)
        .iter()
        .map(|b| b.reference())
        .collect();

    // Warm: the store's memo already holds every result.
    for vote in &votes {
        let _ = store.is_vote(vote, &leader);
    }
    c.bench_function("is_vote_warm", |b| {
        b.iter(|| {
            votes
                .iter()
                .filter(|vote| store.is_vote(vote, &leader))
                .count()
        })
    });

    // Cold: rebuild the store each batch (ablation: memoization off).
    c.bench_function("is_vote_cold", |b| {
        b.iter_batched(
            || {
                let mut fresh = BlockStore::new(10, 7);
                for block in store.iter() {
                    if block.round() > 0 {
                        fresh.insert(block.clone()).unwrap();
                    }
                }
                fresh
            },
            |fresh| {
                votes
                    .iter()
                    .filter(|vote| fresh.is_vote(vote, &leader))
                    .count()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_certificates(c: &mut Criterion) {
    let dag = ten_node_dag(10);
    let store = dag.store();
    let leader = store.blocks_at_round(1)[0].clone();
    let certs: Vec<_> = store.blocks_at_round(5).into_iter().cloned().collect();
    c.bench_function("is_cert_warm_round_of_10", |b| {
        b.iter(|| {
            certs
                .iter()
                .filter(|cert| store.is_cert(cert, &leader))
                .count()
        })
    });
}

fn bench_linearize(c: &mut Criterion) {
    let mut group = c.benchmark_group("linearize_sub_dag");
    for rounds in [5usize, 20] {
        let dag = ten_node_dag(rounds);
        let store = dag.store();
        let leader = store.blocks_at_round(rounds as u64)[0].reference();
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &rounds, |b, _| {
            b.iter_batched(
                HashSet::new,
                |mut emitted| store.linearize_sub_dag(&leader, &mut emitted),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_votes,
    bench_certificates,
    bench_linearize
);
criterion_main!(benches);
