//! Microbenchmarks for the committers: one decision pass over a prepared
//! DAG, for each of the paper's four systems.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mahimahi_baselines::{CordialMinersCommitter, CordialMinersOptions, TuskCommitter};
use mahimahi_core::{CommitSequencer, Committer, CommitterOptions, ProtocolCommitter};
use mahimahi_dag::DagBuilder;
use mahimahi_types::TestCommittee;

fn prepared_dag(rounds: usize) -> (TestCommittee, DagBuilder) {
    let setup = TestCommittee::new(10, 5);
    let mut dag = DagBuilder::new(setup.clone());
    dag.add_full_rounds(rounds);
    (setup, dag)
}

fn committers(setup: &TestCommittee) -> Vec<(&'static str, Box<dyn ProtocolCommitter>)> {
    let committee = setup.committee().clone();
    vec![
        (
            "mahi-mahi-5",
            Box::new(Committer::new(
                committee.clone(),
                CommitterOptions::mahi_mahi_5(2),
            )),
        ),
        (
            "mahi-mahi-4",
            Box::new(Committer::new(
                committee.clone(),
                CommitterOptions::mahi_mahi_4(2),
            )),
        ),
        (
            "cordial-miners",
            Box::new(CordialMinersCommitter::new(
                committee.clone(),
                CordialMinersOptions::default(),
            )),
        ),
        ("tusk", Box::new(TuskCommitter::new(committee))),
    ]
}

/// One full decision pass over a 30-round DAG, fresh committer each time
/// (no decided-slot memo: the worst case a validator pays after recovery).
fn bench_try_decide_cold(c: &mut Criterion) {
    let (setup, dag) = prepared_dag(30);
    let mut group = c.benchmark_group("try_decide_cold_30_rounds");
    for (name, _) in committers(&setup) {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_batched(
                || {
                    committers(&setup)
                        .into_iter()
                        .find(|(n, _)| *n == name)
                        .map(|(_, committer)| committer)
                        .expect("committer exists")
                },
                |committer| committer.try_decide(dag.store(), 1),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// The steady-state cost: re-deciding after every round with the memo warm
/// (what a validator pays per received block).
fn bench_try_decide_warm(c: &mut Criterion) {
    let (setup, dag) = prepared_dag(30);
    let mut group = c.benchmark_group("try_decide_warm_30_rounds");
    for (name, committer) in committers(&setup) {
        let _ = committer.try_decide(dag.store(), 1); // warm the memo
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| committer.try_decide(dag.store(), 25))
        });
    }
    group.finish();
}

fn bench_sequencer_end_to_end(c: &mut Criterion) {
    let (setup, dag) = prepared_dag(30);
    c.bench_function("sequencer_30_rounds_mahi_mahi_5", |b| {
        b.iter_batched(
            || {
                CommitSequencer::new(Committer::new(
                    setup.committee().clone(),
                    CommitterOptions::mahi_mahi_5(2),
                ))
            },
            |mut sequencer| sequencer.try_commit(dag.store()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_try_decide_cold,
    bench_try_decide_warm,
    bench_sequencer_end_to_end
);
criterion_main!(benches);
