//! Shared harness code for the figure-reproduction binaries.
//!
//! Every figure of the paper has a binary in `src/bin/` (see DESIGN.md §4):
//!
//! | Paper figure | Binary | What it sweeps |
//! |--------------|--------|----------------|
//! | Figure 3 | `fig3` | load × {Tusk, CM, MM-5, MM-4} × {10, 50} validators |
//! | Figure 4 | `fig4` | load × the four systems, 10 validators, 3 crashed |
//! | Figure 5 | `fig5` | load × MM-4 × {1,2,3} leaders × {0,3} crashed |
//! | Figure 7 | `fig7` | load × MM-5 × {1,2,3} leaders × {0,3} crashed |
//! | Lemmas 13/16/17 | `commit_probability` | analytic vs Monte-Carlo |
//!
//! Each binary prints the table rows to stdout and writes a CSV next to the
//! workspace root (`bench-results/`). Pass `--quick` for a fast smoke sweep
//! (shorter simulated durations, fewer load points).

pub mod scale;

use mahimahi_net::time::{self, Time};
use mahimahi_sim::{ProtocolChoice, SimConfig, SimReport, Simulation};
use std::io::Write;
use std::path::PathBuf;

/// The four systems of Figure 3, in the paper's plotting order.
pub fn paper_systems() -> Vec<ProtocolChoice> {
    vec![
        ProtocolChoice::Tusk,
        ProtocolChoice::CordialMiners,
        ProtocolChoice::MahiMahi5 { leaders: 2 },
        ProtocolChoice::MahiMahi4 { leaders: 2 },
    ]
}

/// Sweep parameters shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Committee size.
    pub committee_size: usize,
    /// Crashed validators (from the tail of the committee).
    pub crashed: usize,
    /// Total offered loads to test (tx/s across all honest validators).
    pub total_loads_tps: Vec<u64>,
    /// Simulated duration per point.
    pub duration: Time,
    /// Base seed (each point perturbs it deterministically).
    pub seed: u64,
}

impl Sweep {
    /// The paper's load axis scaled for a laptop-sized run.
    pub fn standard(committee_size: usize, crashed: usize, quick: bool) -> Self {
        let total_loads_tps = if quick {
            vec![1_000, 10_000]
        } else {
            vec![1_000, 5_000, 10_000, 20_000, 50_000, 100_000]
        };
        Sweep {
            committee_size,
            crashed,
            total_loads_tps,
            duration: if quick {
                time::from_secs(5)
            } else {
                time::from_secs(10)
            },
            seed: 2024,
        }
    }
}

/// Runs one simulation point.
pub fn run_point(protocol: ProtocolChoice, sweep: &Sweep, total_load: u64) -> SimReport {
    let honest = sweep.committee_size - sweep.crashed;
    let config = SimConfig {
        protocol,
        committee_size: sweep.committee_size,
        duration: sweep.duration,
        txs_per_second_per_validator: total_load / honest as u64,
        seed: sweep.seed ^ total_load,
        ..SimConfig::default()
    }
    .with_crashed(sweep.crashed);
    Simulation::new(config).run()
}

/// Runs a full sweep for one protocol, printing rows as they complete.
pub fn run_sweep(protocol: ProtocolChoice, sweep: &Sweep) -> Vec<SimReport> {
    let mut reports = Vec::new();
    for &load in &sweep.total_loads_tps {
        let report = run_point(protocol, sweep, load);
        println!("{}", report.table_row());
        reports.push(report);
    }
    reports
}

/// The `bench-results/` output directory at the workspace root, created on
/// first use.
///
/// # Panics
///
/// Panics if the directory cannot be created (harness context: fail
/// loudly).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("bench-results");
    std::fs::create_dir_all(&dir).expect("create bench-results directory");
    dir
}

/// Writes reports as CSV under `bench-results/<name>.csv`.
///
/// # Panics
///
/// Panics on I/O errors (harness context: fail loudly).
pub fn write_csv(name: &str, reports: &[SimReport]) -> PathBuf {
    let dir = results_dir();
    let path = dir.join(format!("{name}.csv"));
    let mut file = std::fs::File::create(&path).expect("create csv");
    writeln!(file, "{}", SimReport::csv_header()).expect("write header");
    for report in reports {
        writeln!(file, "{}", report.csv_row()).expect("write row");
    }
    println!("→ wrote {}", path.display());
    path
}

/// Parses the common `--quick` flag.
pub fn quick_flag() -> bool {
    std::env::args().any(|arg| arg == "--quick")
}

/// Prints a figure banner.
pub fn banner(title: &str, claims: &str) {
    println!("\n=== {title} ===");
    println!("Paper claims: {claims}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_point_runs() {
        let sweep = Sweep {
            committee_size: 4,
            crashed: 0,
            total_loads_tps: vec![400],
            duration: time::from_secs(3),
            seed: 1,
        };
        let report = run_point(ProtocolChoice::MahiMahi4 { leaders: 2 }, &sweep, 400);
        assert!(report.committed_transactions > 0);
    }

    #[test]
    fn systems_cover_the_paper() {
        let names: Vec<String> = paper_systems().iter().map(|p| p.name()).collect();
        assert!(names.iter().any(|n| n.contains("Tusk")));
        assert!(names.iter().any(|n| n.contains("Cordial")));
        assert!(names.iter().any(|n| n.contains("Mahi-Mahi-5")));
        assert!(names.iter().any(|n| n.contains("Mahi-Mahi-4")));
    }
}
