//! Committee-scale hot-path measurements: per-block admission and per-vote
//! quorum tally at n ∈ {4, 10, 50}.
//!
//! Shared by the `committee_scale` criterion bench and the
//! `committee_scale` baseline binary (which writes
//! `bench-results/committee_scale.json` and enforces the CI gate). The
//! claim under test is the dense-indexing refactor: per-block cost must
//! stay near-flat as the committee grows because every per-message
//! structure is O(1) or a fixed-width bitset, and block references are
//! hashed with the digest-keyed mixer instead of SipHash.

use mahimahi_dag::{BlockStore, DagBuilder};
use mahimahi_types::{AuthorityIndex, AuthoritySet, Block, TestCommittee};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The committee sizes the scale row measures (the paper's smallest and
/// largest deployments plus the mid-size scale row).
pub const SCALE_COMMITTEES: [usize; 3] = [4, 10, 50];

/// The CI gate: per-block admission at n = 50 within this factor of n = 4.
pub const ADMISSION_RATIO_BUDGET: f64 = 3.0;

/// One committee size's measured per-block and per-vote costs.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Committee size.
    pub committee_size: usize,
    /// Mean nanoseconds to admit one block (full genesis parentage) into a
    /// fresh store, amortized over a complete proposal round.
    pub admission_per_block_ns: f64,
    /// Mean nanoseconds per vote of an `AuthoritySet` quorum tally.
    pub tally_per_vote_ns: f64,
}

/// `2f + 1` for `n = 3f + 1` committees (unit stake).
pub fn quorum(committee_size: usize) -> usize {
    2 * (committee_size - 1) / 3 + 1
}

/// One full proposal round (round 1, complete genesis parentage).
pub fn proposal_round(committee_size: usize) -> Vec<Arc<Block>> {
    let mut dag = DagBuilder::new(TestCommittee::new(committee_size, 5));
    dag.add_full_rounds(1);
    dag.store()
        .blocks_at_round(1)
        .into_iter()
        .cloned()
        .collect()
}

/// Mean nanoseconds per routine call with a fresh input per call.
fn mean_nanos<I, S: FnMut() -> I, R: FnMut(I)>(mut setup: S, mut routine: R) -> f64 {
    routine(setup());
    let budget = Duration::from_millis(60);
    let mut total = Duration::ZERO;
    let mut iterations = 0u64;
    while total < budget && iterations < 100_000 {
        let input = setup();
        let started = Instant::now();
        routine(input);
        total += started.elapsed();
        iterations += 1;
    }
    total.as_nanos() as f64 / iterations.max(1) as f64
}

/// Measures both hot paths at one committee size.
pub fn measure(committee_size: usize) -> ScalePoint {
    let blocks = proposal_round(committee_size);
    let per_round = mean_nanos(
        || BlockStore::new(committee_size, quorum(committee_size)),
        |mut store| {
            for block in &blocks {
                black_box(store.insert(Arc::clone(block)).unwrap());
            }
        },
    );
    let threshold = quorum(committee_size);
    let per_tally = mean_nanos(
        || (),
        |()| {
            let mut votes = AuthoritySet::new();
            let mut reached = 0usize;
            for voter in 0..committee_size {
                votes.insert(AuthorityIndex(voter as u32));
                if votes.len() >= threshold {
                    reached += 1;
                }
            }
            black_box((votes, reached));
        },
    );
    ScalePoint {
        committee_size,
        admission_per_block_ns: per_round / committee_size as f64,
        tally_per_vote_ns: per_tally / committee_size as f64,
    }
}

/// Measures every committee size in [`SCALE_COMMITTEES`].
pub fn measure_all() -> Vec<ScalePoint> {
    SCALE_COMMITTEES.iter().map(|&n| measure(n)).collect()
}

/// The n = 50 / n = 4 per-block admission growth factor.
pub fn admission_ratio(points: &[ScalePoint]) -> f64 {
    let at = |n: usize| {
        points
            .iter()
            .find(|p| p.committee_size == n)
            .expect("measured committee size")
            .admission_per_block_ns
    };
    at(50) / at(4)
}

/// The scale points as one JSON document (offline workspace: no serializer).
pub fn scale_json(points: &[ScalePoint]) -> String {
    let rows = points
        .iter()
        .map(|p| {
            format!(
                "{{\"committee_size\":{},\"admission_per_block_ns\":{:.1},\
                 \"tally_per_vote_ns\":{:.1}}}",
                p.committee_size, p.admission_per_block_ns, p.tally_per_vote_ns
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    format!(
        "{{\n  \"suite\": \"committee-scale\",\n  \"admission_n50_over_n4\": {:.2},\n  \
         \"budget\": {:.1},\n  \"points\": [\n    {}\n  ]\n}}\n",
        admission_ratio(points),
        ADMISSION_RATIO_BUDGET,
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_matches_3f_plus_1_committees() {
        assert_eq!(quorum(4), 3);
        assert_eq!(quorum(10), 7);
        assert_eq!(quorum(50), 33);
    }

    #[test]
    fn scale_json_carries_every_point_and_the_ratio() {
        let points = vec![
            ScalePoint {
                committee_size: 4,
                admission_per_block_ns: 100.0,
                tally_per_vote_ns: 10.0,
            },
            ScalePoint {
                committee_size: 10,
                admission_per_block_ns: 120.0,
                tally_per_vote_ns: 9.0,
            },
            ScalePoint {
                committee_size: 50,
                admission_per_block_ns: 190.0,
                tally_per_vote_ns: 8.0,
            },
        ];
        assert!((admission_ratio(&points) - 1.9).abs() < 1e-9);
        let json = scale_json(&points);
        assert!(json.contains("\"admission_n50_over_n4\": 1.90"));
        assert!(json.contains("\"committee_size\":50"));
    }
}
