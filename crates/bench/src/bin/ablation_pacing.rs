//! Ablation: the post-quorum inclusion wait (round pacing).
//!
//! Advancing rounds the instant a quorum arrives starves the slowest
//! regions: their blocks miss the (short) vote window and their leader
//! slots get skipped, inverting the Mahi-Mahi-4 advantage. This ablation
//! quantifies the effect (DESIGN.md §5, decision 5).

use bench::{banner, quick_flag, write_csv};
use mahimahi_net::time;
use mahimahi_sim::{ProtocolChoice, SimConfig, Simulation};

fn main() {
    let quick = quick_flag();
    banner(
        "Ablation — post-quorum inclusion wait",
        "0 ms starves far regions (skips, MM-4 > MM-5); ≥50 ms restores C5",
    );
    let mut all = Vec::new();
    for wait_ms in [0u64, 25, 50, 100] {
        for protocol in [
            ProtocolChoice::MahiMahi4 { leaders: 2 },
            ProtocolChoice::MahiMahi5 { leaders: 2 },
        ] {
            let config = SimConfig {
                protocol,
                committee_size: 10,
                duration: time::from_secs(if quick { 5 } else { 10 }),
                txs_per_second_per_validator: 1_000,
                inclusion_wait: time::from_millis(wait_ms),
                seed: 7,
                ..SimConfig::default()
            };
            let report = Simulation::new(config).run();
            println!("wait={wait_ms:>3}ms {}", report.table_row());
            all.push(report);
        }
    }
    write_csv("ablation_pacing", &all);
}
